"""Serving-first front door for trained KGLink systems.

``repro.serve`` turns a fitted :class:`~repro.core.annotator.KGLinkAnnotator`
into something a production process can load and hit with traffic:

* :class:`~repro.serve.bundle.ServiceBundle` — a self-contained, versioned
  on-disk bundle: config, tokenizer, label vocabulary, model weights, the
  *compiled* retrieval index arrays and a knowledge-graph snapshot.  Loading
  a bundle needs no :class:`~repro.kg.graph.KnowledgeGraph` object and no
  index rebuild.
* :class:`~repro.serve.service.AnnotationService` — the request-serving API:
  ``annotate`` / ``annotate_batch`` / ``annotate_stream`` micro-batch tables
  through the length-bucketed prediction path under ``no_grad`` and report
  per-request telemetry (:class:`~repro.serve.service.ServiceStats`).
  Scaling is configuration: the bundle's shard plan re-shards the retrieval
  index through a :class:`~repro.kg.backends.ShardedBackend`
  (bitwise-identical results) and ``processes=N`` moves Part-1 preparation
  onto a process pool via the :mod:`repro.runtime` executors.  Partial
  failures degrade instead of erroring: a
  :class:`~repro.runtime.RuntimePolicy` governs deadlines, retries and
  circuit breakers on both fan-out paths, failed work falls back to serial
  in-process execution (annotations stay bitwise-identical), and
  :meth:`~repro.serve.service.AnnotationService.health` reports
  ``healthy`` / ``degraded`` / ``failed`` with reasons
  (:class:`~repro.serve.service.ServiceHealth`).
* :class:`~repro.serve.replica.ReplicaServer` /
  :func:`~repro.serve.replica.run_replica` — the fleet worker: one process,
  one loaded bundle, serving ``annotate_batch`` over the loopback wire
  protocol for the :mod:`repro.fleet` supervisor and router.

Typical flow::

    service = annotator.into_service()          # train -> serve, in process
    service.save("bundle/")                     # persist for the fleet
    service = AnnotationService.load("bundle/") # in each serving process
    predictions = service.annotate_batch(tables)
"""

from repro.serve.bundle import BUNDLE_FORMAT_VERSION, ServiceBundle
from repro.serve.replica import ReplicaServer, run_replica
from repro.serve.service import AnnotationService, ServiceHealth, ServiceStats

__all__ = [
    "AnnotationService",
    "ServiceBundle",
    "ServiceStats",
    "ServiceHealth",
    "ReplicaServer",
    "run_replica",
    "BUNDLE_FORMAT_VERSION",
]
