"""Serving-first front door for trained KGLink systems.

``repro.serve`` turns a fitted :class:`~repro.core.annotator.KGLinkAnnotator`
into something a production process can load and hit with traffic:

* :class:`~repro.serve.bundle.ServiceBundle` — a self-contained, versioned
  on-disk bundle: config, tokenizer, label vocabulary, model weights, the
  *compiled* retrieval index arrays and a knowledge-graph snapshot.  Loading
  a bundle needs no :class:`~repro.kg.graph.KnowledgeGraph` object and no
  index rebuild.
* :class:`~repro.serve.service.AnnotationService` — the request-serving API:
  ``annotate`` / ``annotate_batch`` / ``annotate_stream`` micro-batch tables
  through the length-bucketed prediction path under ``no_grad`` and report
  per-request telemetry (:class:`~repro.serve.service.ServiceStats`).
  Scaling is configuration: the bundle's shard plan re-shards the retrieval
  index through a :class:`~repro.kg.backends.ShardedBackend`
  (bitwise-identical results) and ``processes=N`` moves Part-1 preparation
  onto a process pool via the :mod:`repro.runtime` executors.

Typical flow::

    service = annotator.into_service()          # train -> serve, in process
    service.save("bundle/")                     # persist for the fleet
    service = AnnotationService.load("bundle/") # in each serving process
    predictions = service.annotate_batch(tables)
"""

from repro.serve.bundle import BUNDLE_FORMAT_VERSION, ServiceBundle
from repro.serve.service import AnnotationService, ServiceStats

__all__ = [
    "AnnotationService",
    "ServiceBundle",
    "ServiceStats",
    "BUNDLE_FORMAT_VERSION",
]
