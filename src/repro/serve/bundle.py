"""Self-contained on-disk bundles for serving trained KGLink systems.

A :class:`ServiceBundle` packages everything a serving process needs into one
directory with a versioned manifest::

    bundle/
      manifest.json   format version, pipeline config, label vocabulary,
                      tokenizer tokens, retrieval-backend name, shard plan
      model.npz       encoder + head weights (dtype-policy-stamped)
      index.npz       the *compiled* retrieval index arrays (for BM25: CSR
                      postings offsets, doc ids and precomputed impacts)
      graph.json      the KG snapshot Part 1 queries (labels, schemas,
                      one-hop neighbourhoods with predicates)

The index is always stored *unsharded* (one canonical copy of the compiled
arrays); the shard plan — how many :class:`~repro.kg.backends.ShardedBackend`
shards to slice it into and which :class:`~repro.runtime.SearchExecutor` to
fan out with — travels in the linker config, so a fleet re-shards at load
time without rewriting bundles.

Unlike the legacy ``save_annotator``/``load_annotator`` pair (now thin shims
over this module), a bundle is independent of the knowledge graph: loading
restores the retrieval backend from its exported arrays instead of
re-indexing the graph, and ships a :class:`~repro.kg.snapshot.KGSnapshot`
for the candidate-extraction queries — so
:meth:`~repro.serve.service.AnnotationService.load` works on a machine that
has nothing but the bundle directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.annotator import KGLinkConfig
from repro.core.errors import BundleCorrupted
from repro.core.model import KGLinkModel
from repro.kg.backends import (
    BM25Parameters,
    RetrievalBackend,
    ShardedBackend,
    restore_backend,
)
from repro.kg.linker import LinkerConfig
from repro.kg.snapshot import KGSnapshot
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.plm.model import create_encoder
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotator -> serve)
    from repro.core.annotator import KGLinkAnnotator

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "SUPPORTED_BUNDLE_FORMATS",
    "ServiceBundle",
    "tokenizer_from_tokens",
]

#: Format 3 added the shard plan (``shard_plan`` in the manifest plus the
#: ``num_shards``/``executor`` fields of the serialized linker config).
#: Format-2 bundles predate it and load unchanged with a 1-shard plan.
BUNDLE_FORMAT_VERSION = 3
SUPPORTED_BUNDLE_FORMATS = (2, 3)

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "model.npz"
INDEX_NAME = "index.npz"
GRAPH_NAME = "graph.json"

#: Every artifact the manifest's integrity record covers.
ARTIFACT_NAMES = (WEIGHTS_NAME, INDEX_NAME, GRAPH_NAME)

#: Manifest keys every supported format must carry (schema floor).
REQUIRED_MANIFEST_KEYS = (
    "format_version", "config", "label_vocabulary", "tokenizer_tokens",
    "backend", "linker_config",
)


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _read_manifest(directory: Path) -> dict:
    """Read + schema-check the manifest, typing every corruption it can hit."""
    path = directory / MANIFEST_NAME
    try:
        text = path.read_text()
    except OSError as error:
        raise BundleCorrupted(
            f"bundle at {directory} is missing or cannot read {MANIFEST_NAME}"
        ) from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise BundleCorrupted(
            f"{MANIFEST_NAME} in {directory} is not valid JSON "
            f"(line {error.lineno}: {error.msg})"
        ) from error
    if not isinstance(manifest, dict):
        raise BundleCorrupted(
            f"{MANIFEST_NAME} in {directory} must hold a JSON object, "
            f"found {type(manifest).__name__}"
        )
    missing = [key for key in REQUIRED_MANIFEST_KEYS if key not in manifest]
    if missing:
        raise BundleCorrupted(
            f"{MANIFEST_NAME} in {directory} is missing required "
            f"key(s): {', '.join(missing)}"
        )
    return manifest


def _verify_artifacts(directory: Path, manifest: dict) -> None:
    """Check artifact presence (always) and SHA-256 (when recorded at save).

    Runs *before* any array is parsed, so a truncated ``model.npz`` surfaces
    as :class:`BundleCorrupted` naming the file — not as whatever numpy
    raises mid-parse.  Format-2 bundles predate the integrity record and only
    get the existence check.
    """
    recorded = manifest.get("artifacts", {})
    for name in ARTIFACT_NAMES:
        path = directory / name
        if not path.is_file():
            raise BundleCorrupted(f"bundle at {directory} is missing {name}")
        entry = recorded.get(name)
        if not entry:
            continue
        size = path.stat().st_size
        if "bytes" in entry and size != entry["bytes"]:
            raise BundleCorrupted(
                f"{name} in {directory} is {size} bytes, manifest recorded "
                f"{entry['bytes']} (truncated or overwritten)"
            )
        if "sha256" in entry and _sha256(path) != entry["sha256"]:
            raise BundleCorrupted(
                f"{name} in {directory} does not match its recorded SHA-256"
            )


def tokenizer_from_tokens(tokens: list[str]) -> WordPieceTokenizer:
    """Rebuild a tokenizer from a stored token list.

    The first tokens are the special tokens, which the Vocabulary
    constructor re-adds itself, so they are filtered before reconstruction.
    """
    specials = Vocabulary().specials
    plain_tokens = [token for token in tokens if token not in set(specials.as_tuple())]
    return WordPieceTokenizer(Vocabulary(plain_tokens, specials=specials))


@dataclass
class ServiceBundle:
    """Everything a serving process needs, in memory or on disk."""

    config: KGLinkConfig
    label_vocabulary: list[str]
    tokenizer: WordPieceTokenizer
    model: KGLinkModel
    backend: RetrievalBackend
    backend_name: str
    graph_view: KGSnapshot
    linker_config: LinkerConfig = field(default_factory=LinkerConfig)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_annotator(cls, annotator: KGLinkAnnotator) -> ServiceBundle:
        """Capture a fitted annotator's serving state (no copies of weights)."""
        if annotator.model is None or annotator.tokenizer is None:
            raise RuntimeError("only fitted annotators can be bundled")
        backend = annotator.linker.index
        backend.finalize()
        if isinstance(backend, ShardedBackend):
            # Bundles persist the canonical unsharded arrays plus the plan
            # (already recorded in the linker config); the wrapper's
            # export_state() returns exactly those arrays.
            backend_name = backend.inner_backend_name
        else:
            backend_name = getattr(type(backend), "backend_name", None)
        if not backend_name:
            raise ValueError(
                f"retrieval backend {type(backend).__name__} has no backend_name; "
                "register it with repro.kg.backends.register_backend"
            )
        return cls(
            config=annotator.config,
            label_vocabulary=list(annotator.label_vocabulary),
            tokenizer=annotator.tokenizer,
            model=annotator.model,
            backend=backend,
            backend_name=backend_name,
            graph_view=KGSnapshot.from_graph(annotator.graph),
            # The linker's own config, not a reconstruction from KGLinkConfig:
            # a custom linker (deeper retrieval, number/date linking on) must
            # serve exactly as it trained.
            linker_config=annotator.linker.config,
            metadata={"graph_entities": len(annotator.graph)},
        )

    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> Path:
        """Write the bundle to ``directory``; returns the directory path.

        Artifacts are written first so the manifest — written last — can
        record each one's byte size and SHA-256; :meth:`load` verifies that
        integrity record before parsing any array.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_state_dict(self.model.state_dict(), directory / WEIGHTS_NAME)
        np.savez_compressed(directory / INDEX_NAME, **self.backend.export_state())
        (directory / GRAPH_NAME).write_text(json.dumps(self.graph_view.to_payload()))
        manifest = {
            "format_version": BUNDLE_FORMAT_VERSION,
            "config": dataclasses.asdict(self.config),
            "label_vocabulary": self.label_vocabulary,
            "tokenizer_tokens": list(self.tokenizer.vocabulary),
            "backend": {"name": self.backend_name, "documents": len(self.backend)},
            "linker_config": dataclasses.asdict(self.linker_config),
            # The shard plan, surfaced for humans and fleet tooling; the
            # authoritative copy is the linker config above.
            "shard_plan": {
                "num_shards": self.linker_config.num_shards,
                "executor": self.linker_config.executor,
            },
            "artifacts": {
                name: {
                    "bytes": (directory / name).stat().st_size,
                    "sha256": _sha256(directory / name),
                }
                for name in ARTIFACT_NAMES
            },
            **self.metadata,
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> ServiceBundle:
        """Load a bundle; needs no graph and performs no index rebuild.

        Validation runs first: manifest schema, artifact presence, and the
        SHA-256 integrity record written by :meth:`save` are all checked
        before any array is parsed, and every corruption surfaces as
        :class:`~repro.core.errors.BundleCorrupted` naming the offending
        file.  An unsupported-but-well-formed format still raises
        ``ValueError`` (a compatibility problem, not a corrupt bundle).
        """
        directory = Path(directory)
        manifest = _read_manifest(directory)
        version = manifest.get("format_version")
        if version not in SUPPORTED_BUNDLE_FORMATS:
            raise ValueError(
                f"unsupported bundle format {version!r} "
                f"(this build reads formats {SUPPORTED_BUNDLE_FORMATS})"
            )
        _verify_artifacts(directory, manifest)
        config = KGLinkConfig(**manifest["config"])
        tokenizer = tokenizer_from_tokens(manifest["tokenizer_tokens"])
        label_vocabulary = list(manifest["label_vocabulary"])

        encoder = create_encoder(config.plm_config(vocab_size=tokenizer.vocab_size))
        model = KGLinkModel(
            encoder,
            num_labels=len(label_vocabulary),
            use_feature_vector=config.use_feature_vector,
            seed=config.seed,
        )
        try:
            model.load_state_dict(load_state_dict(directory / WEIGHTS_NAME))
        except BundleCorrupted:
            raise
        except Exception as error:  # noqa: BLE001 - name the file for operators
            raise BundleCorrupted(
                f"{WEIGHTS_NAME} in {directory} failed to parse: {error}"
            ) from error
        model.eval()

        try:
            with np.load(directory / INDEX_NAME) as archive:
                state = {key: archive[key] for key in archive.files}
        except Exception as error:  # noqa: BLE001 - name the file for operators
            raise BundleCorrupted(
                f"{INDEX_NAME} in {directory} failed to parse: {error}"
            ) from error
        backend_name = manifest["backend"]["name"]
        backend = restore_backend(backend_name, state)

        try:
            graph_view = KGSnapshot.from_payload(
                json.loads((directory / GRAPH_NAME).read_text())
            )
        except Exception as error:  # noqa: BLE001 - name the file for operators
            raise BundleCorrupted(
                f"{GRAPH_NAME} in {directory} failed to parse: {error}"
            ) from error
        linker_payload = dict(manifest["linker_config"])
        linker_payload["bm25"] = BM25Parameters(**linker_payload["bm25"])
        # Format-2 manifests predate the shard plan; LinkerConfig defaults
        # (1 shard, serial executor) reproduce their behaviour exactly.
        linker_config = LinkerConfig(**linker_payload)
        metadata = {
            key: value
            for key, value in manifest.items()
            if key not in ("format_version", "config", "label_vocabulary",
                           "tokenizer_tokens", "backend", "linker_config",
                           "shard_plan", "artifacts")
        }
        return cls(
            config=config,
            label_vocabulary=label_vocabulary,
            tokenizer=tokenizer,
            model=model,
            backend=backend,
            backend_name=backend_name,
            graph_view=graph_view,
            linker_config=linker_config,
            metadata=metadata,
        )
