"""Self-contained on-disk bundles for serving trained KGLink systems.

A :class:`ServiceBundle` packages everything a serving process needs into one
directory with a versioned manifest::

    bundle/
      manifest.json   format version, pipeline config, label vocabulary,
                      tokenizer tokens, retrieval-backend name, shard plan
      model.npz       encoder + head weights (dtype-policy-stamped)
      index.npz       the *compiled* retrieval index arrays (for BM25: CSR
                      postings offsets, doc ids and precomputed impacts)
      graph.json      the KG snapshot Part 1 queries (labels, schemas,
                      one-hop neighbourhoods with predicates)

The index is always stored *unsharded* (one canonical copy of the compiled
arrays); the shard plan — how many :class:`~repro.kg.backends.ShardedBackend`
shards to slice it into and which :class:`~repro.runtime.SearchExecutor` to
fan out with — travels in the linker config, so a fleet re-shards at load
time without rewriting bundles.

Unlike the legacy ``save_annotator``/``load_annotator`` pair (now thin shims
over this module), a bundle is independent of the knowledge graph: loading
restores the retrieval backend from its exported arrays instead of
re-indexing the graph, and ships a :class:`~repro.kg.snapshot.KGSnapshot`
for the candidate-extraction queries — so
:meth:`~repro.serve.service.AnnotationService.load` works on a machine that
has nothing but the bundle directory.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.annotator import KGLinkConfig
from repro.core.model import KGLinkModel
from repro.kg.backends import (
    BM25Parameters,
    RetrievalBackend,
    ShardedBackend,
    restore_backend,
)
from repro.kg.linker import LinkerConfig
from repro.kg.snapshot import KGSnapshot
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.plm.model import create_encoder
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotator -> serve)
    from repro.core.annotator import KGLinkAnnotator

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "SUPPORTED_BUNDLE_FORMATS",
    "ServiceBundle",
    "tokenizer_from_tokens",
]

#: Format 3 added the shard plan (``shard_plan`` in the manifest plus the
#: ``num_shards``/``executor`` fields of the serialized linker config).
#: Format-2 bundles predate it and load unchanged with a 1-shard plan.
BUNDLE_FORMAT_VERSION = 3
SUPPORTED_BUNDLE_FORMATS = (2, 3)

MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "model.npz"
INDEX_NAME = "index.npz"
GRAPH_NAME = "graph.json"


def tokenizer_from_tokens(tokens: list[str]) -> WordPieceTokenizer:
    """Rebuild a tokenizer from a stored token list.

    The first tokens are the special tokens, which the Vocabulary
    constructor re-adds itself, so they are filtered before reconstruction.
    """
    specials = Vocabulary().specials
    plain_tokens = [token for token in tokens if token not in set(specials.as_tuple())]
    return WordPieceTokenizer(Vocabulary(plain_tokens, specials=specials))


@dataclass
class ServiceBundle:
    """Everything a serving process needs, in memory or on disk."""

    config: KGLinkConfig
    label_vocabulary: list[str]
    tokenizer: WordPieceTokenizer
    model: KGLinkModel
    backend: RetrievalBackend
    backend_name: str
    graph_view: KGSnapshot
    linker_config: LinkerConfig = field(default_factory=LinkerConfig)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_annotator(cls, annotator: "KGLinkAnnotator") -> "ServiceBundle":
        """Capture a fitted annotator's serving state (no copies of weights)."""
        if annotator.model is None or annotator.tokenizer is None:
            raise RuntimeError("only fitted annotators can be bundled")
        backend = annotator.linker.index
        backend.finalize()
        if isinstance(backend, ShardedBackend):
            # Bundles persist the canonical unsharded arrays plus the plan
            # (already recorded in the linker config); the wrapper's
            # export_state() returns exactly those arrays.
            backend_name = backend.inner_backend_name
        else:
            backend_name = getattr(type(backend), "backend_name", None)
        if not backend_name:
            raise ValueError(
                f"retrieval backend {type(backend).__name__} has no backend_name; "
                "register it with repro.kg.backends.register_backend"
            )
        return cls(
            config=annotator.config,
            label_vocabulary=list(annotator.label_vocabulary),
            tokenizer=annotator.tokenizer,
            model=annotator.model,
            backend=backend,
            backend_name=backend_name,
            graph_view=KGSnapshot.from_graph(annotator.graph),
            # The linker's own config, not a reconstruction from KGLinkConfig:
            # a custom linker (deeper retrieval, number/date linking on) must
            # serve exactly as it trained.
            linker_config=annotator.linker.config,
            metadata={"graph_entities": len(annotator.graph)},
        )

    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> Path:
        """Write the bundle to ``directory``; returns the directory path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": BUNDLE_FORMAT_VERSION,
            "config": dataclasses.asdict(self.config),
            "label_vocabulary": self.label_vocabulary,
            "tokenizer_tokens": list(self.tokenizer.vocabulary),
            "backend": {"name": self.backend_name, "documents": len(self.backend)},
            "linker_config": dataclasses.asdict(self.linker_config),
            # The shard plan, surfaced for humans and fleet tooling; the
            # authoritative copy is the linker config above.
            "shard_plan": {
                "num_shards": self.linker_config.num_shards,
                "executor": self.linker_config.executor,
            },
            **self.metadata,
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        save_state_dict(self.model.state_dict(), directory / WEIGHTS_NAME)
        np.savez_compressed(directory / INDEX_NAME, **self.backend.export_state())
        (directory / GRAPH_NAME).write_text(json.dumps(self.graph_view.to_payload()))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "ServiceBundle":
        """Load a bundle; needs no graph and performs no index rebuild."""
        directory = Path(directory)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        version = manifest.get("format_version")
        if version not in SUPPORTED_BUNDLE_FORMATS:
            raise ValueError(
                f"unsupported bundle format {version!r} "
                f"(this build reads formats {SUPPORTED_BUNDLE_FORMATS})"
            )
        config = KGLinkConfig(**manifest["config"])
        tokenizer = tokenizer_from_tokens(manifest["tokenizer_tokens"])
        label_vocabulary = list(manifest["label_vocabulary"])

        encoder = create_encoder(config.plm_config(vocab_size=tokenizer.vocab_size))
        model = KGLinkModel(
            encoder,
            num_labels=len(label_vocabulary),
            use_feature_vector=config.use_feature_vector,
            seed=config.seed,
        )
        model.load_state_dict(load_state_dict(directory / WEIGHTS_NAME))
        model.eval()

        with np.load(directory / INDEX_NAME) as archive:
            state = {key: archive[key] for key in archive.files}
        backend_name = manifest["backend"]["name"]
        backend = restore_backend(backend_name, state)

        graph_view = KGSnapshot.from_payload(
            json.loads((directory / GRAPH_NAME).read_text())
        )
        linker_payload = dict(manifest["linker_config"])
        linker_payload["bm25"] = BM25Parameters(**linker_payload["bm25"])
        # Format-2 manifests predate the shard plan; LinkerConfig defaults
        # (1 shard, serial executor) reproduce their behaviour exactly.
        linker_config = LinkerConfig(**linker_payload)
        metadata = {
            key: value
            for key, value in manifest.items()
            if key not in ("format_version", "config", "label_vocabulary",
                           "tokenizer_tokens", "backend", "linker_config",
                           "shard_plan")
        }
        return cls(
            config=config,
            label_vocabulary=label_vocabulary,
            tokenizer=tokenizer,
            model=model,
            backend=backend,
            backend_name=backend_name,
            graph_view=graph_view,
            linker_config=linker_config,
            metadata=metadata,
        )
