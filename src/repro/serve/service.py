"""The request-serving front door: load a bundle once, annotate at volume.

:class:`AnnotationService` wires a :class:`~repro.serve.bundle.ServiceBundle`
into the existing inference machinery:

* Part-1 candidate extraction runs against the bundled
  :class:`~repro.kg.snapshot.KGSnapshot` and the restored retrieval backend —
  no :class:`~repro.kg.graph.KnowledgeGraph` object exists in a serving
  process.  When the bundle's shard plan says so, the backend is wrapped in a
  :class:`~repro.kg.backends.ShardedBackend` and searches fan out across
  index shards;
* Part-2 inference micro-batches tables through the length-bucketed
  :meth:`~repro.core.trainer.KGLinkTrainer.predict` path under ``no_grad``;
* the Part-1 prepare stage (candidate extraction + serialisation) can be
  delegated to a :class:`~repro.runtime.SearchExecutor` — pass
  ``processes=N`` for a process pool whose workers each hold their own copy
  of the Part-1 machinery (built once from a picklable spec shipped through
  the pool initializer), or inject any executor.  ``processes=0`` (the
  default) prepares serially in-process, exactly as before;
* :meth:`AnnotationService.annotate_stream` pipelines the stages: Part-1 of
  micro-batch *i+1* is submitted to the executor while the main thread runs
  PLM inference for micro-batch *i* — with a process executor the two stages
  genuinely overlap (numpy only releases the GIL inside BLAS, so the old
  single-worker-thread overlap was partial at best);
* prepared tables (Part-1 output serialised into model-ready arrays) are
  memoised in a bounded :class:`~repro.core.cache.LRUCache` keyed by table
  id — a warm request skips candidate extraction *and* serialisation — and
  :meth:`AnnotationService.stats` reports per-request telemetry
  (:class:`ServiceStats`: Part-1/encode latency, bucket fill, cache hits,
  plus fault counters: retries, timeouts, worker crashes, fallbacks);
* partial failures degrade instead of killing the request: the prepare
  executor runs behind a :class:`~repro.runtime.ResilientExecutor`
  (deadlines, bounded retries, a circuit breaker) configured by a
  :class:`~repro.runtime.RuntimePolicy`, a chunk whose dispatch still fails
  is prepared serially in-process (identical code path, so annotations stay
  bitwise-identical), and :meth:`AnnotationService.health` reports
  ``healthy`` / ``degraded`` / ``failed`` with reasons.  The policy travels
  with saved bundles as optional manifest metadata.

``annotate`` / ``annotate_batch`` may be called from several threads: the
Part-1 stage, Part-2 inference (shared model state) and every telemetry
counter are serialized by internal locks.  A single ``annotate_stream``
generator should still be consumed from one thread, but its consumer may
freely interleave ``annotate`` calls.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from itertools import islice
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.core.cache import LRUCache
from repro.core.errors import DeadlineExceeded, ServiceClosed
from repro.core.pipeline import KGCandidateExtractor
from repro.core.serialization import TableSerializer
from repro.core.trainer import KGLinkTrainer, PreparedExample
from repro.data.table import Table
from repro.kg.backends import ShardedBackend, restore_backend, shard_boundaries
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.kg.snapshot import KGSnapshot
from repro.runtime import ProcessExecutor, SearchExecutor
from repro.runtime.resilience import ResilienceStats, ResilientExecutor, RuntimePolicy
from repro.serve.bundle import ServiceBundle

__all__ = ["ServiceStats", "ServiceHealth", "AnnotationService"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotator -> serve)
    from repro.core.annotator import KGLinkConfig


@dataclass(frozen=True)
class ServiceStats:
    """A snapshot of the service's cumulative telemetry counters."""

    requests: int
    tables: int
    part1_seconds: float
    encode_seconds: float
    batches: int
    useful_tokens: int
    padded_tokens: int
    cache_hits: int
    cache_misses: int
    cache_size: int
    # Fault counters (since start or the last reset_stats), aggregated across
    # the prepare path and the sharded retrieval path.
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    fallbacks: int = 0
    breaker_trips: int = 0

    @property
    def bucket_fill(self) -> float:
        """Useful fraction of the token slots the encoder actually paid for."""
        if self.padded_tokens <= 0:
            return 1.0
        return self.useful_tokens / self.padded_tokens

    @property
    def cache_hit_rate(self) -> float:
        """Part-1 cache hit rate over the service lifetime."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """Counters plus derived rates as JSON-safe plain types.

        Every value is a built-in ``int`` or ``float``, so the payload can go
        straight through ``json.dumps`` — the gateway's ``/stats`` endpoint
        (and any external scraper) uses this instead of reaching into the
        dataclass.
        """
        return {
            "requests": int(self.requests),
            "tables": int(self.tables),
            "part1_seconds": float(self.part1_seconds),
            "encode_seconds": float(self.encode_seconds),
            "batches": int(self.batches),
            "useful_tokens": int(self.useful_tokens),
            "padded_tokens": int(self.padded_tokens),
            "bucket_fill": float(self.bucket_fill),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "cache_hit_rate": float(self.cache_hit_rate),
            "cache_size": int(self.cache_size),
            "retries": int(self.retries),
            "timeouts": int(self.timeouts),
            "worker_crashes": int(self.worker_crashes),
            "fallbacks": int(self.fallbacks),
            "breaker_trips": int(self.breaker_trips),
        }

    # Backwards-compatible alias (the pre-gateway name).
    as_dict = to_dict


@dataclass(frozen=True)
class ServiceHealth:
    """One :meth:`AnnotationService.health` snapshot.

    ``status`` is ``"healthy"`` (no faults observed), ``"degraded"`` (the
    service is answering, but breakers are open and/or fallbacks, retries or
    timeouts have been counted since the last stats reset — annotations stay
    bitwise-identical, only latency suffers) or ``"failed"`` (the service
    cannot answer: it was closed, or even the serial in-process fallback
    died).  ``reasons`` says why, ``breakers`` maps each breaker target to
    its current state.
    """

    status: str
    reasons: tuple[str, ...] = ()
    breakers: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-safe snapshot (plain strings throughout).

        Breaker targets are hashables, not necessarily strings — they are
        stringified here so the payload survives ``json.dumps`` for the
        gateway's ``/healthz`` endpoint.
        """
        return {
            "status": str(self.status),
            "reasons": [str(reason) for reason in self.reasons],
            "breakers": {str(target): str(state)
                         for target, state in self.breakers.items()},
        }

    # Backwards-compatible alias (the pre-gateway name).
    as_dict = to_dict


# --------------------------------------------------------------------------- #
# the distributable Part-1 prepare stage
# --------------------------------------------------------------------------- #
@dataclass
class _PreparerSpec:
    """Everything a worker needs to rebuild the Part-1 prepare stage.

    Shipped to executor workers exactly once (through the pool initializer),
    so it must be picklable: plain configs, token lists, the compiled
    retrieval arrays and the graph snapshot — never the model, which Part 1
    does not touch.  Each worker (or worker thread) lazily builds one
    :class:`_Part1Preparer` from it and keeps it for the life of the pool.
    """

    config: KGLinkConfig
    label_vocabulary: list[str]
    tokenizer_tokens: list[str]
    linker_config: LinkerConfig
    backend_name: str
    backend_state: dict[str, np.ndarray]
    graph_view: KGSnapshot

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_thread_local", None)
        return state

    def preparer(self) -> _Part1Preparer:
        """The calling thread's preparer (built on first use).

        Per-*thread* rather than per-spec because the Part-1 machinery
        (retrieval score buffer, extractor caches) is not safe to share
        between concurrently running tasks; in a process-pool worker there
        is one task thread, so this is one preparer per process.
        """
        local = self.__dict__.get("_thread_local")
        if local is None:
            local = self.__dict__["_thread_local"] = threading.local()
        preparer = getattr(local, "value", None)
        if preparer is None:
            preparer = local.value = _Part1Preparer.from_spec(self)
        return preparer


class _Part1Preparer:
    """Stateless-by-contract Part-1 stage: tables in, prepared examples out."""

    def __init__(self, extractor: KGCandidateExtractor, trainer: KGLinkTrainer):
        self.extractor = extractor
        self.trainer = trainer

    @classmethod
    def from_spec(cls, spec: _PreparerSpec) -> _Part1Preparer:
        from repro.serve.bundle import tokenizer_from_tokens

        tokenizer = tokenizer_from_tokens(spec.tokenizer_tokens)
        backend = restore_backend(spec.backend_name, spec.backend_state)
        # Workers never nest worker pools: each worker searches its full
        # index copy serially, whatever the parent's shard plan says.
        linker = EntityLinker(
            config=replace(spec.linker_config, num_shards=1), index=backend
        )
        extractor = KGCandidateExtractor(
            spec.graph_view, spec.config.part1_config(), linker=linker
        )
        serializer = TableSerializer(tokenizer, spec.config.serializer_config())
        # Part-1 preparation needs the trainer's serialisation logic but not
        # the model, which stays in the parent process.
        trainer = KGLinkTrainer(
            None, serializer, spec.label_vocabulary, spec.config.training_config()
        )
        return cls(extractor, trainer)

    def prepare(self, tables: list[Table]) -> list[PreparedExample]:
        return [
            self.trainer.prepare_example(
                self.extractor.process_table(table), with_ground_truth=False
            )
            for table in tables
        ]


def _prepare_chunk_task(spec: _PreparerSpec, tables: list[Table]
                        ) -> list[PreparedExample]:
    """Executor task: Part-1 + serialisation for one chunk of tables."""
    return spec.preparer().prepare(tables)


def _prepare_target(task) -> str:
    """Breaker key of a prepare chunk: the whole pool is one target."""
    return "prepare"


class AnnotationService:
    """Serve column-type annotations from a loaded :class:`ServiceBundle`.

    Parameters
    ----------
    bundle:
        The serving state (usually from :meth:`load` or
        :meth:`~repro.core.annotator.KGLinkAnnotator.into_service`).
    max_batch:
        Micro-batch size for Part-2 inference (and the default chunk size of
        :meth:`annotate_stream`).
    cache_size:
        Bound of the processed-table LRU cache (``<= 0`` disables caching).
    processes:
        Size of the Part-1 process pool.  ``0`` (default) prepares serially
        in-process; ``N > 0`` creates a
        :class:`~repro.runtime.ProcessExecutor` with ``N`` workers, each
        holding its own copy of the Part-1 machinery.
    executor:
        Inject a ready :class:`~repro.runtime.SearchExecutor` for the
        prepare stage instead of ``processes`` (the service configures it
        with its prepare spec and owns it from then on).
    policy:
        The :class:`~repro.runtime.RuntimePolicy` governing deadlines,
        retries and circuit breakers on the prepare and shard-search paths.
        Defaults to the policy saved in the bundle's metadata
        (``runtime_policy``), or the stock policy when the bundle carries
        none.
    """

    def __init__(self, bundle: ServiceBundle, max_batch: int = 16,
                 cache_size: int = 1024, processes: int = 0,
                 executor: SearchExecutor | None = None,
                 policy: RuntimePolicy | None = None):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if processes < 0:
            raise ValueError("processes must be non-negative")
        self.bundle = bundle
        self.max_batch = max_batch
        if policy is None:
            saved = bundle.metadata.get("runtime_policy")
            policy = RuntimePolicy.from_dict(saved) if saved else RuntimePolicy()
        self.policy = policy
        config = bundle.config
        # The bundle's shard plan lives in linker_config: num_shards > 1 makes
        # EntityLinker wrap the restored backend in a ShardedBackend.
        self.linker = EntityLinker(config=bundle.linker_config, index=bundle.backend,
                                   runtime_policy=policy)
        self.extractor = KGCandidateExtractor(
            bundle.graph_view, config.part1_config(), linker=self.linker
        )
        self.serializer = TableSerializer(bundle.tokenizer, config.serializer_config())
        self.trainer = KGLinkTrainer(
            bundle.model, self.serializer, bundle.label_vocabulary,
            config.training_config(),
        )
        self._local_preparer = _Part1Preparer(self.extractor, self.trainer)
        bundle.model.eval()
        self._cache: LRUCache[str, PreparedExample] = LRUCache(maxsize=cache_size)
        if executor is None and processes > 0:
            executor = ProcessExecutor(max_workers=processes)
        self._prepare_executor = executor
        self._resilience = ResilienceStats()
        if executor is not None:
            executor.configure(self._preparer_spec())
            # All prepare chunks share one breaker target: the pool either
            # works or it doesn't, unlike shards which fail independently.
            self._prepare_dispatch = ResilientExecutor(
                executor, policy, target_of=_prepare_target,
                stats=self._resilience,
            )
        else:
            self._prepare_dispatch = None
        # close() drains: annotate calls register here while running, and
        # close() waits for the count to hit zero before tearing pools down.
        # (Condition's default lock is an RLock, so _ensure_open may
        # re-acquire it under _track.)
        self._lifecycle = threading.Condition()
        self._closed = False  # guarded-by: _lifecycle
        self._inflight = 0  # guarded-by: _lifecycle
        # Part-1 state (the retrieval backend's shared score buffer, the
        # extractor's caches) is not thread-safe; Part-2 shares model state.
        # The two locks serialize the respective stages so annotate()/
        # annotate_batch() are safe from any number of caller threads.
        self._prepare_lock = threading.Lock()
        self._predict_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._fatal: str | None = None  # guarded-by: _stats_lock
        self._requests = 0  # guarded-by: _stats_lock
        self._tables = 0  # guarded-by: _stats_lock
        self._part1_seconds = 0.0  # guarded-by: _stats_lock
        self._encode_seconds = 0.0  # guarded-by: _stats_lock
        self._batches = 0  # guarded-by: _stats_lock
        self._useful_tokens = 0  # guarded-by: _stats_lock
        self._padded_tokens = 0  # guarded-by: _stats_lock

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, directory: str | Path, max_batch: int = 16,
             cache_size: int = 1024, processes: int = 0,
             executor: SearchExecutor | None = None,
             policy: RuntimePolicy | None = None) -> AnnotationService:
        """Start a service from a saved bundle directory.

        No knowledge graph is constructed and no index is rebuilt: the
        retrieval backend is restored from its compiled arrays (sharded per
        the bundle's shard plan) and Part 1 queries the bundled graph
        snapshot.
        """
        return cls(ServiceBundle.load(directory), max_batch=max_batch,
                   cache_size=cache_size, processes=processes,
                   executor=executor, policy=policy)

    def save(self, directory: str | Path) -> Path:
        """Persist the underlying bundle (see :meth:`ServiceBundle.save`).

        The service's :class:`~repro.runtime.RuntimePolicy` rides along as
        optional manifest metadata (``runtime_policy``) — the bundle format
        is unchanged, and a reloading service starts under the same policy.
        """
        self.bundle.metadata["runtime_policy"] = self.policy.as_dict()
        return self.bundle.save(directory)

    def close(self) -> None:
        """Drain in-flight requests, then shut down owned worker pools.

        Closing is a two-phase drain rather than a race: the service first
        stops admitting (``annotate*`` calls arriving from here on raise
        :class:`~repro.core.errors.ServiceClosed`), then waits for every
        in-flight ``annotate``/``annotate_batch``/stream chunk to finish
        before tearing down the prepare executor and the shard pool — a
        concurrent request never sees its pool die under it.  Idempotent:
        the second and later calls return immediately (without waiting for
        the first call's drain).  Only pools this service brought into
        existence are touched: a sharded index that arrived pre-wrapped in
        the bundle (e.g. shared with a still-training annotator) keeps its
        executor running.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            while self._inflight:
                self._lifecycle.wait()
        if self._prepare_executor is not None:
            self._prepare_executor.close()
        self.linker.close()

    def __enter__(self) -> AnnotationService:
        return self

    def __exit__(self, *exc_info) -> None:
        # Close and nothing else: any in-flight exception propagates.
        self.close()

    def _ensure_open(self) -> None:
        # The lifecycle lock is re-entrant (Condition wraps an RLock), so
        # this is safe both from bare call sites and from under _track().
        with self._lifecycle:
            if self._closed:
                raise ServiceClosed(
                    "this AnnotationService is closed; load the bundle into a "
                    "new service to keep annotating"
                )

    @contextmanager
    def _track(self):
        """Hold one in-flight slot for the duration of an annotate call.

        Entering raises :class:`~repro.core.errors.ServiceClosed` once
        :meth:`close` has begun; leaving wakes a draining ``close()`` when
        the last in-flight call finishes.
        """
        with self._lifecycle:
            self._ensure_open()
            self._inflight += 1
        try:
            yield
        finally:
            with self._lifecycle:
                self._inflight -= 1
                if not self._inflight:
                    self._lifecycle.notify_all()

    @staticmethod
    def _check_deadline(deadline_s: float | None, stage: str) -> None:
        if deadline_s is not None and time.monotonic() > deadline_s:
            raise DeadlineExceeded(f"request budget exhausted {stage}")

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _preparer_spec(self) -> _PreparerSpec:
        bundle = self.bundle
        return _PreparerSpec(
            config=bundle.config,
            label_vocabulary=list(bundle.label_vocabulary),
            tokenizer_tokens=list(bundle.tokenizer.vocabulary),
            linker_config=bundle.linker_config,
            backend_name=bundle.backend_name,
            backend_state=bundle.backend.export_state(),
            graph_view=KGSnapshot.from_graph(bundle.graph_view),
        )

    def _spawn_missing(self, missing: list[Table],
                       deadline_s: float | None = None):
        """Start Part-1 for uncached tables; returns a join() closure.

        With an executor the tables are split into one chunk per worker and
        submitted through the resilient dispatch (deadline, retries,
        breaker); ``join()`` collects the results in order, and a chunk whose
        dispatch still fails — or whose breaker is open — is prepared
        serially in this process instead, so one sick pool degrades latency
        without failing the request.  Without an executor (``processes=0``)
        the work happens inline and ``join()`` is immediate — same contract,
        zero indirection cost.
        """
        if not missing:
            return lambda: []
        dispatch = self._prepare_dispatch
        if dispatch is None:
            # Serial path: the same prepare stage the workers run, but
            # against this process's own extractor/serializer.
            prepared = self._local_preparer.prepare(missing)
            return lambda: prepared
        n_chunks = max(1, min(dispatch.workers, len(missing)))
        chunks = [
            missing[lo:hi]
            for lo, hi in shard_boundaries(len(missing), n_chunks)
            if hi > lo
        ]
        futures = [
            dispatch.submit(_prepare_chunk_task, chunk, deadline_s=deadline_s)
            for chunk in chunks
        ]

        def join() -> list[PreparedExample]:
            examples: list[PreparedExample] = []
            for chunk, future in zip(chunks, futures, strict=True):
                try:
                    examples.extend(future.result())
                # repro: allow[REP104] -- degraded path: the error is consumed
                # by the serial in-process fallback, which re-raises on double
                # failure (see _prepare_locally)
                except Exception as error:
                    examples.extend(self._prepare_locally(chunk, error))
            return examples

        return join

    def _prepare_locally(self, chunk: list[Table],
                         error: BaseException) -> list[PreparedExample]:
        """Serial in-process fallback for one failed prepare chunk.

        Runs the exact prepare stage the workers run (bitwise-identical
        output) under the prepare lock.  If even this fails the service has
        no way to produce the annotation: the failure is recorded so
        :meth:`health` reports ``failed``, and the error propagates.
        """
        self._resilience.increment("fallbacks")
        try:
            with self._prepare_lock:
                return self._local_preparer.prepare(chunk)
        except Exception as fallback_error:  # noqa: BLE001 - now truly down
            with self._stats_lock:
                self._fatal = (
                    f"in-process prepare fallback failed "
                    f"({type(fallback_error).__name__}: {fallback_error}) after "
                    f"executor failure ({type(error).__name__}: {error})"
                )
            raise

    def _prepare_pending(self, tables: list[Table],
                         deadline_s: float | None = None):
        """Begin preparing ``tables``; returns a closure yielding the results.

        The cache partition and the fan-out happen now (under the prepare
        lock); the returned ``resolve()`` blocks until the missing tables are
        ready, installs them in the cache and returns examples aligned with
        ``tables``.  ``annotate_stream`` calls ``resolve()`` only after
        launching PLM inference for the previous micro-batch, which is what
        overlaps the two stages.
        """
        start = time.perf_counter()
        slots: list[PreparedExample | None] = [None] * len(tables)
        missing_tables: list[Table] = []
        missing_keys: list[object] = []
        positions_by_key: dict[object, list[int]] = {}
        # Deduplicating repeated table ids within a request assumes an id
        # identifies a table's contents — exactly the assumption the cache
        # makes.  With caching disabled the service promises independent
        # processing per table, so each position becomes its own key.
        dedup = self._cache.maxsize > 0
        with self._prepare_lock:
            for position, table in enumerate(tables):
                key: object = table.table_id if dedup else position
                if key in positions_by_key:  # duplicate within request
                    positions_by_key[key].append(position)
                    continue
                cached = self._cache.get(table.table_id)
                if cached is None:
                    positions_by_key[key] = [position]
                    missing_tables.append(table)
                    missing_keys.append(key)
                else:
                    slots[position] = cached
            join = self._spawn_missing(missing_tables, deadline_s=deadline_s)
        # Only time actually spent in Part 1 counts: the partition/spawn work
        # above plus the blocking part of resolve() below.  Timing the whole
        # spawn-to-resolve span would charge Part 1 for whatever the caller
        # did in between — in annotate_stream, the previous batch's PLM run.
        spawn_seconds = time.perf_counter() - start

        def resolve() -> list[PreparedExample]:
            resolve_start = time.perf_counter()
            fresh = join()
            if fresh:
                with self._prepare_lock:
                    for table, key, example in zip(missing_tables, missing_keys,
                                                   fresh, strict=True):
                        self._cache.put(table.table_id, example)
                        for position in positions_by_key[key]:
                            slots[position] = example
            with self._stats_lock:
                self._part1_seconds += spawn_seconds + (
                    time.perf_counter() - resolve_start
                )
            return slots

        return resolve

    def _prepare(self, tables: list[Table],
                 deadline_s: float | None = None) -> list[PreparedExample]:
        """Part 1 + serialisation for ``tables``, through the bounded LRU cache.

        The cache holds the fully *prepared* example (model-ready arrays),
        so a warm table costs one dict lookup before inference.
        """
        return self._prepare_pending(tables, deadline_s=deadline_s)()

    def _predict(self, examples: list[PreparedExample]) -> list[list[str]]:
        """Part 2 for prepared examples (micro-batched, length-bucketed)."""
        if not examples:
            return []
        start = time.perf_counter()
        with self._predict_lock:
            predictions = self.trainer.predict(examples, batch_size=self.max_batch)
            stats = self.trainer.last_bucket_stats or {}
        with self._stats_lock:
            self._encode_seconds += time.perf_counter() - start
            self._batches += int(stats.get("n_batches", 0))
            self._useful_tokens += int(stats.get("useful_tokens", 0))
            self._padded_tokens += int(stats.get("padded_tokens", 0))
        return predictions

    # ------------------------------------------------------------------ #
    # the serving API
    # ------------------------------------------------------------------ #
    def annotate(self, table: Table, budget_s: float | None = None) -> list[str]:
        """Predict a semantic type for every column of one table."""
        return self.annotate_batch([table], budget_s=budget_s)[0]

    def annotate_batch(self, tables: Iterable[Table],
                       budget_s: float | None = None) -> list[list[str]]:
        """Annotate many tables in one request; results align with input.

        ``budget_s`` is an optional per-request deadline (seconds of wall
        clock from now).  It is checked at every stage boundary — admission,
        after Part-1 prepare, after PLM inference — and threaded into the
        prepare dispatch so the resilience layer's per-task waits and retry
        backoff never outlive the request (see
        :meth:`~repro.runtime.ResilientExecutor.submit`).  A blown budget
        raises :class:`~repro.core.errors.DeadlineExceeded`; the worst-case
        overshoot between two checks is one PLM micro-batch or one
        policy-bounded prepare task, never an unbounded hang.
        """
        deadline_s = None if budget_s is None else time.monotonic() + budget_s
        with self._track():
            self._check_deadline(deadline_s, "at admission")
            tables = list(tables)
            with self._stats_lock:
                self._requests += 1
                self._tables += len(tables)
            if not tables:
                return []
            prepared = self._prepare(tables, deadline_s=deadline_s)
            self._check_deadline(deadline_s, "after Part-1 prepare")
            predictions = self._predict(prepared)
            self._check_deadline(deadline_s, "after PLM inference")
            return predictions

    def annotate_stream(self, tables: Iterable[Table],
                        max_batch: int | None = None) -> Iterator[list[str]]:
        """Annotate a (possibly unbounded) stream of tables lazily, in order.

        Tables are consumed in micro-batches of ``max_batch``.  Part-1
        candidate extraction for the *next* micro-batch is handed to the
        prepare executor before the PLM runs the current one, so with
        ``processes > 0`` (or an injected ``thread`` executor) the two
        stages overlap; with the default serial setup the stages simply
        alternate.  Results are yielded per table, in input order,
        regardless of the micro-batch boundaries.
        """
        # Validate eagerly (this is not itself a generator function) so a
        # closed service or bad batch size raises at call time, not on the
        # first next().
        self._ensure_open()
        size = max_batch or self.max_batch
        if size <= 0:
            raise ValueError("max_batch must be positive")
        return self._annotate_stream(iter(tables), size)

    def _annotate_stream(self, iterator: Iterator[Table],
                         size: int) -> Iterator[list[str]]:
        with self._stats_lock:
            self._requests += 1
        chunk = list(islice(iterator, size))
        pending = self._prepare_pending(chunk) if chunk else None
        while pending is not None:
            # Each chunk holds an in-flight slot only while it computes:
            # close() waits for the current chunk, and the next loop
            # iteration raises ServiceClosed instead of racing teardown.
            with self._track():
                prepared = pending()
                # Start Part 1 of the next chunk before predicting this one.
                next_chunk = list(islice(iterator, size))
                pending = self._prepare_pending(next_chunk) if next_chunk else None
                with self._stats_lock:
                    self._tables += len(prepared)
                predictions = self._predict(prepared)
            yield from predictions

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def _resilience_snapshot(self) -> tuple[dict[str, int], dict[str, str], int]:
        """Aggregate fault counters, breaker states and trips over both paths.

        The prepare path contributes the service's own
        :class:`~repro.runtime.ResilienceStats` and dispatch breakers; the
        retrieval path contributes the sharded index's (when the linker's
        index is a :class:`~repro.kg.backends.ShardedBackend`).  Breaker keys
        are namespaced (``prepare:…`` / ``shard:…``) so one snapshot reads
        unambiguously.
        """
        counters = self._resilience.snapshot()
        breakers: dict[str, str] = {}
        trips = 0
        if self._prepare_dispatch is not None:
            breakers.update({
                f"prepare:{target}": state
                for target, state in self._prepare_dispatch.breaker_states().items()
            })
            trips += self._prepare_dispatch.breaker_trips()
        index = self.linker.index
        if isinstance(index, ShardedBackend):
            shard = index.resilience_stats()
            for name, value in shard["counters"].items():
                counters[name] = counters.get(name, 0) + value
            breakers.update({
                f"shard:{target}": state
                for target, state in shard["breakers"].items()
            })
            trips += shard["breaker_trips"]
        return counters, breakers, trips

    def stats(self) -> ServiceStats:
        """Cumulative telemetry since start (or the last :meth:`reset_stats`)."""
        info = self._cache.cache_info()
        counters, _, trips = self._resilience_snapshot()
        with self._stats_lock:
            return ServiceStats(
                requests=self._requests,
                tables=self._tables,
                part1_seconds=self._part1_seconds,
                encode_seconds=self._encode_seconds,
                batches=self._batches,
                useful_tokens=self._useful_tokens,
                padded_tokens=self._padded_tokens,
                cache_hits=info.hits,
                cache_misses=info.misses,
                cache_size=info.currsize,
                retries=counters["retries"],
                timeouts=counters["timeouts"],
                worker_crashes=counters["worker_crashes"],
                fallbacks=counters["fallbacks"],
                breaker_trips=trips,
            )

    def health(self) -> ServiceHealth:
        """One operational snapshot: ``healthy`` / ``degraded`` / ``failed``.

        ``failed`` means the service cannot answer (closed, or even the
        serial in-process fallback died).  ``degraded`` means requests are
        being answered — with bitwise-identical annotations — but the fault
        machinery has been doing work since the last :meth:`reset_stats`:
        open/half-open breakers, fallback activations, retries or timeouts.
        """
        counters, breakers, _ = self._resilience_snapshot()
        with self._lifecycle:
            closed = self._closed
        if closed:
            return ServiceHealth("failed", ("service closed",), breakers)
        with self._stats_lock:
            fatal = self._fatal
        if fatal is not None:
            return ServiceHealth("failed", (fatal,), breakers)
        reasons: list[str] = []
        not_closed = {
            target: state for target, state in breakers.items()
            if state != "closed"
        }
        for target, state in sorted(not_closed.items()):
            reasons.append(f"breaker {target} is {state}")
        for name in ("fallbacks", "worker_crashes", "timeouts", "retries"):
            if counters.get(name, 0):
                reasons.append(f"{counters[name]} {name.replace('_', ' ')}")
        status = "degraded" if reasons else "healthy"
        return ServiceHealth(status, tuple(reasons), breakers)

    def reset_stats(self) -> None:
        """Zero all telemetry counters (the cache contents stay warm).

        Also clears the fault counters on both resilience paths, so a
        service whose breakers have closed again reports ``healthy`` once
        the incident is acknowledged.  Breaker *states* and lifetime trip
        totals are live values and persist.
        """
        with self._stats_lock:
            self._requests = 0
            self._tables = 0
            self._part1_seconds = 0.0
            self._encode_seconds = 0.0
            self._batches = 0
            self._useful_tokens = 0
            self._padded_tokens = 0
        self._cache.reset_counters()
        self._resilience.reset()
        index = self.linker.index
        if isinstance(index, ShardedBackend):
            index.reset_resilience_stats()
