"""The request-serving front door: load a bundle once, annotate at volume.

:class:`AnnotationService` wires a :class:`~repro.serve.bundle.ServiceBundle`
into the existing inference machinery:

* Part-1 candidate extraction runs against the bundled
  :class:`~repro.kg.snapshot.KGSnapshot` and the restored retrieval backend —
  no :class:`~repro.kg.graph.KnowledgeGraph` object exists in a serving
  process;
* Part-2 inference micro-batches tables through the length-bucketed
  :meth:`~repro.core.trainer.KGLinkTrainer.predict` path under ``no_grad``;
* :meth:`AnnotationService.annotate_stream` pipelines the two parts: a
  single worker thread extracts candidates for micro-batch *i+1* while the
  main thread runs PLM inference for micro-batch *i*;
* prepared tables (Part-1 output serialised into model-ready arrays) are
  memoised in a bounded :class:`~repro.core.cache.LRUCache` keyed by table
  id — a warm request skips candidate extraction *and* serialisation — and
  :meth:`AnnotationService.stats` reports per-request telemetry
  (:class:`ServiceStats`: Part-1/encode latency, bucket fill, cache hits).

The service is designed for one request loop per process.  Part-1
preparation is serialized by an internal lock, so calling ``annotate`` /
``annotate_batch`` from the consumer loop of an in-progress
``annotate_stream`` is safe; calling service methods from *additional
user-created threads* is not supported (Part-2 inference shares model
state).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.cache import LRUCache
from repro.core.pipeline import KGCandidateExtractor
from repro.core.serialization import TableSerializer
from repro.core.trainer import KGLinkTrainer, PreparedExample
from repro.data.table import Table
from repro.kg.linker import EntityLinker
from repro.serve.bundle import ServiceBundle

__all__ = ["ServiceStats", "AnnotationService"]


@dataclass(frozen=True)
class ServiceStats:
    """A snapshot of the service's cumulative telemetry counters."""

    requests: int
    tables: int
    part1_seconds: float
    encode_seconds: float
    batches: int
    useful_tokens: int
    padded_tokens: int
    cache_hits: int
    cache_misses: int
    cache_size: int

    @property
    def bucket_fill(self) -> float:
        """Useful fraction of the token slots the encoder actually paid for."""
        if self.padded_tokens <= 0:
            return 1.0
        return self.useful_tokens / self.padded_tokens

    @property
    def cache_hit_rate(self) -> float:
        """Part-1 cache hit rate over the service lifetime."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Counters plus derived rates, ready for a metrics endpoint."""
        return {
            "requests": self.requests,
            "tables": self.tables,
            "part1_seconds": self.part1_seconds,
            "encode_seconds": self.encode_seconds,
            "batches": self.batches,
            "useful_tokens": self.useful_tokens,
            "padded_tokens": self.padded_tokens,
            "bucket_fill": self.bucket_fill,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_size": self.cache_size,
        }


class AnnotationService:
    """Serve column-type annotations from a loaded :class:`ServiceBundle`.

    Parameters
    ----------
    bundle:
        The serving state (usually from :meth:`load` or
        :meth:`~repro.core.annotator.KGLinkAnnotator.into_service`).
    max_batch:
        Micro-batch size for Part-2 inference (and the default chunk size of
        :meth:`annotate_stream`).
    cache_size:
        Bound of the processed-table LRU cache (``<= 0`` disables caching).
    """

    def __init__(self, bundle: ServiceBundle, max_batch: int = 16,
                 cache_size: int = 1024):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.bundle = bundle
        self.max_batch = max_batch
        config = bundle.config
        self.linker = EntityLinker(config=bundle.linker_config, index=bundle.backend)
        self.extractor = KGCandidateExtractor(
            bundle.graph_view, config.part1_config(), linker=self.linker
        )
        self.serializer = TableSerializer(bundle.tokenizer, config.serializer_config())
        self.trainer = KGLinkTrainer(
            bundle.model, self.serializer, bundle.label_vocabulary,
            config.training_config(),
        )
        bundle.model.eval()
        self._cache: LRUCache[str, PreparedExample] = LRUCache(maxsize=cache_size)
        # Part-1 state (the retrieval backend's shared score buffer, the
        # extractor's caches, the LRU) is not thread-safe; this lock lets a
        # consumer call annotate()/annotate_batch() while an annotate_stream
        # generator's background worker is mid-_prepare.
        self._prepare_lock = threading.Lock()
        self._requests = 0
        self._tables = 0
        self._part1_seconds = 0.0
        self._encode_seconds = 0.0
        self._batches = 0
        self._useful_tokens = 0
        self._padded_tokens = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, directory: str | Path, max_batch: int = 16,
             cache_size: int = 1024) -> "AnnotationService":
        """Start a service from a saved bundle directory.

        No knowledge graph is constructed and no index is rebuilt: the
        retrieval backend is restored from its compiled arrays and Part 1
        queries the bundled graph snapshot.
        """
        return cls(ServiceBundle.load(directory), max_batch=max_batch,
                   cache_size=cache_size)

    def save(self, directory: str | Path) -> Path:
        """Persist the underlying bundle (see :meth:`ServiceBundle.save`)."""
        return self.bundle.save(directory)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _prepare(self, tables: list[Table]) -> list[PreparedExample]:
        """Part 1 + serialisation for ``tables``, through the bounded LRU cache.

        The cache holds the fully *prepared* example (model-ready arrays),
        so a warm table costs one dict lookup before inference.
        """
        start = time.perf_counter()
        prepared: list[PreparedExample] = []
        with self._prepare_lock:
            for table in tables:
                cached = self._cache.get(table.table_id)
                if cached is None:
                    processed = self.extractor.process_table(table)
                    cached = self.trainer.prepare_example(processed, with_ground_truth=False)
                    self._cache.put(table.table_id, cached)
                prepared.append(cached)
        self._part1_seconds += time.perf_counter() - start
        return prepared

    def _predict(self, examples: list[PreparedExample]) -> list[list[str]]:
        """Part 2 for prepared examples (micro-batched, length-bucketed)."""
        if not examples:
            return []
        start = time.perf_counter()
        predictions = self.trainer.predict(examples, batch_size=self.max_batch)
        self._encode_seconds += time.perf_counter() - start
        stats = self.trainer.last_bucket_stats or {}
        self._batches += int(stats.get("n_batches", 0))
        self._useful_tokens += int(stats.get("useful_tokens", 0))
        self._padded_tokens += int(stats.get("padded_tokens", 0))
        return predictions

    # ------------------------------------------------------------------ #
    # the serving API
    # ------------------------------------------------------------------ #
    def annotate(self, table: Table) -> list[str]:
        """Predict a semantic type for every column of one table."""
        return self.annotate_batch([table])[0]

    def annotate_batch(self, tables: Iterable[Table]) -> list[list[str]]:
        """Annotate many tables in one request; results align with input."""
        tables = list(tables)
        self._requests += 1
        self._tables += len(tables)
        if not tables:
            return []
        return self._predict(self._prepare(tables))

    def annotate_stream(self, tables: Iterable[Table],
                        max_batch: int | None = None) -> Iterator[list[str]]:
        """Annotate a (possibly unbounded) stream of tables lazily, in order.

        Tables are consumed in micro-batches of ``max_batch``.  A single
        background worker runs Part-1 candidate extraction for the *next*
        micro-batch while the main thread runs Part-2 PLM inference for the
        current one, so the two stages overlap instead of alternating.
        Results are yielded per table, in input order, regardless of the
        micro-batch boundaries.
        """
        size = max_batch or self.max_batch
        if size <= 0:
            raise ValueError("max_batch must be positive")
        iterator = iter(tables)
        self._requests += 1
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-part1"
        )
        try:
            chunk = list(islice(iterator, size))
            future = executor.submit(self._prepare, chunk) if chunk else None
            while future is not None:
                prepared = future.result()
                # Start Part 1 of the next chunk before predicting this one.
                next_chunk = list(islice(iterator, size))
                future = executor.submit(self._prepare, next_chunk) if next_chunk else None
                self._tables += len(prepared)
                yield from self._predict(prepared)
        finally:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Cumulative telemetry since start (or the last :meth:`reset_stats`)."""
        info = self._cache.cache_info()
        return ServiceStats(
            requests=self._requests,
            tables=self._tables,
            part1_seconds=self._part1_seconds,
            encode_seconds=self._encode_seconds,
            batches=self._batches,
            useful_tokens=self._useful_tokens,
            padded_tokens=self._padded_tokens,
            cache_hits=info.hits,
            cache_misses=info.misses,
            cache_size=info.currsize,
        )

    def reset_stats(self) -> None:
        """Zero all telemetry counters (the cache contents stay warm)."""
        self._requests = 0
        self._tables = 0
        self._part1_seconds = 0.0
        self._encode_seconds = 0.0
        self._batches = 0
        self._useful_tokens = 0
        self._padded_tokens = 0
        self._cache.hits = 0
        self._cache.misses = 0
        self._cache.evictions = 0
