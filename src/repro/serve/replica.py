"""The fleet replica entry point: one process, one service, one socket.

A replica is the unit the :class:`~repro.fleet.supervisor.ReplicaSupervisor`
spawns N of: it loads a :class:`~repro.serve.bundle.ServiceBundle` into an
:class:`~repro.serve.service.AnnotationService` and serves the fleet wire
protocol (:mod:`repro.fleet.wire`) on a loopback socket.

* :class:`ReplicaServer` — a threaded socket server over any service-shaped
  object.  The accept loop and every connection handler poll with explicit
  timeouts (REP106), so a stop flag is noticed within one poll interval and
  no read can hang forever.  One handler thread per connection; the
  underlying ``annotate_batch`` is thread-safe, so concurrent micro-batches
  from the router genuinely overlap.
* :func:`run_replica` — the ``multiprocessing`` target: load the bundle,
  bind, report ``("ready", port)`` back through a pipe, serve until SIGTERM,
  then drain and close the service.  This is what a
  :class:`~repro.fleet.supervisor.ProcessLauncher` runs in each worker
  process; SIGTERM is the graceful-drain signal the supervisor's ``stop()``
  propagates.

Ops served: ``annotate_batch`` (tables + remaining budget), ``ping``
(liveness + a health snapshot for the supervisor to cache), ``stats`` /
``health`` (the service's own telemetry), ``shutdown`` (acknowledge, then
stop accepting).  Handler failures cross the wire as typed error payloads
(:func:`repro.fleet.wire.encode_error`) — never a dropped connection.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.fleet.wire import (
    WireClosed,
    encode_error,
    recv_message,
    send_message,
    wait_readable,
)

__all__ = ["ReplicaServer", "run_replica"]

#: How long an idle connection waits between poll peeks for the next
#: request (also bounds how long stop() waits on an idle handler).
POLL_INTERVAL_S = 0.2

#: Per-frame I/O budget once a request has started arriving.  Generous —
#: frames are local and small — but finite, so a stalled peer cannot pin a
#: handler thread forever.
IO_TIMEOUT_S = 30.0


class ReplicaServer:
    """Serve the fleet wire protocol over one ``service`` on a local socket.

    ``service`` needs the gateway-facing serving surface:
    ``annotate_batch(tables, budget_s=...)``, ``stats()`` / ``health()``
    (objects with ``to_dict()``) — i.e.
    :class:`~repro.serve.service.AnnotationService`, or a scripted fake in
    tests.  The server does **not** own the service: closing it is the
    caller's job (see :func:`run_replica` for the process lifecycle).
    """

    def __init__(self, service, *, host: str = "127.0.0.1", port: int = 0,
                 name: str = "replica",
                 poll_interval_s: float = POLL_INTERVAL_S,
                 io_timeout_s: float = IO_TIMEOUT_S,
                 clock: Callable[[], float] = time.monotonic):
        self.service = service
        self.name = name
        self._host = host
        self._requested_port = port
        self._poll_interval_s = poll_interval_s
        self._io_timeout_s = io_timeout_s
        self._clock = clock
        self._listener: socket.socket | None = None
        self._port: int | None = None  # cached at bind; survives close
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._connections: set[socket.socket] = set()  # guarded-by: _lock
        self._handlers: list[threading.Thread] = []  # guarded-by: _lock
        self._requests = 0  # guarded-by: _lock
        self._serve_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("replica server is not started")
        return self._port

    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    def start(self) -> None:
        """Bind the loopback listener (does not accept yet)."""
        if self._listener is not None:
            raise RuntimeError("replica server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen()
        self._listener = listener
        self._port = listener.getsockname()[1]
        # The accept loop wakes every poll interval to check the stop flag;
        # accept() itself therefore never blocks unboundedly (REP106).
        self._listener.settimeout(self._poll_interval_s)

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or :meth:`abort`)."""
        if self._listener is None:
            self.start()
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _peer = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break  # listener closed under us (stop/abort)
            conn.settimeout(self._poll_interval_s)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"{self.name}-handler", daemon=True,
            )
            with self._lock:
                self._connections.add(conn)
                self._handlers.append(handler)
            handler.start()
        self._close_listener()

    def serve_in_thread(self) -> None:
        """Run :meth:`serve_forever` on a daemon thread (in-process fleets)."""
        if self._listener is None:
            self.start()
        thread = threading.Thread(target=self.serve_forever,
                                  name=f"{self.name}-accept", daemon=True)
        self._serve_thread = thread
        thread.start()

    def stop(self, *, drain_timeout_s: float = 10.0) -> None:
        """Graceful stop: no new connections, in-flight requests finish.

        Idle handlers notice the flag within one poll interval; a handler
        mid-request finishes and answers it first.  After ``drain_timeout_s``
        any straggler connections are closed abruptly.
        """
        self._stopping.set()
        self._close_listener()
        deadline_s = self._clock() + drain_timeout_s
        while True:
            with self._lock:
                handlers = [h for h in self._handlers if h.is_alive()]
            if not handlers:
                break
            remaining = deadline_s - self._clock()
            if remaining <= 0:
                self._close_connections()
                break
            handlers[0].join(timeout=min(self._poll_interval_s, remaining))
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=drain_timeout_s)

    def request_stop(self) -> None:
        """Signal-handler-safe graceful-stop trigger.

        Sets the stop flag and closes the listener so :meth:`serve_forever`
        returns; in-flight handlers drain on their own (the caller then runs
        :meth:`stop` to wait for them).
        """
        self._stopping.set()
        self._close_listener()

    def abort(self) -> None:
        """Crash simulation: slam the listener and every live connection shut.

        In-flight peers see a reset mid-exchange and heartbeats start
        failing — exactly what a SIGKILLed replica process looks like from
        outside, without killing a process.  Test-only by intent.
        """
        self._stopping.set()
        self._close_listener()
        self._close_connections()

    def _close_listener(self) -> None:
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best effort
                pass

    def _close_connections(self) -> None:
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best effort
                pass

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                if not wait_readable(conn, self._poll_interval_s):
                    continue  # idle: re-check the stop flag
                try:
                    request = recv_message(
                        conn, deadline_s=self._clock() + self._io_timeout_s,
                        clock=self._clock,
                    )
                except (WireClosed, ConnectionError, OSError, EOFError):
                    return  # peer hung up (or stop/abort closed us)
                with self._lock:
                    self._requests += 1
                response = self._handle(request)
                try:
                    send_message(
                        conn, response,
                        deadline_s=self._clock() + self._io_timeout_s,
                        clock=self._clock,
                    )
                except (ConnectionError, OSError):
                    return  # peer went away; nothing left to answer
                if request.get("op") == "shutdown":
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best effort
                pass

    def _handle(self, request: Any) -> dict[str, Any]:
        try:
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("malformed request frame (no op)")
            op = request["op"]
            if op == "annotate_batch":
                budget_s = request.get("budget_s")
                if budget_s is None:
                    value: Any = self.service.annotate_batch(request["tables"])
                else:
                    value = self.service.annotate_batch(
                        request["tables"], budget_s=budget_s
                    )
            elif op == "ping":
                value = {
                    "name": self.name,
                    "pid": os.getpid(),
                    "requests": self.requests,
                    "health": self.service.health().to_dict(),
                }
            elif op == "stats":
                value = self.service.stats().to_dict()
            elif op == "health":
                value = self.service.health().to_dict()
            elif op == "shutdown":
                self._stopping.set()
                self._close_listener()
                value = {"stopping": True}
            else:
                raise ValueError(f"unknown op {op!r}")
        # repro: allow[REP104] -- wire boundary: the failure is encoded by
        # name and re-raised as its typed self on the router side
        except Exception as error:
            return {"ok": False, "error": encode_error(error)}
        return {"ok": True, "value": value}


def run_replica(bundle_dir: str, ready, *, name: str = "replica",
                host: str = "127.0.0.1", port: int = 0,
                service_kwargs: dict[str, Any] | None = None) -> None:
    """Process target: load the bundle, serve the wire protocol, drain.

    ``ready`` is a :func:`multiprocessing.Pipe` connection: once the listener
    is bound this sends ``("ready", port)``, or ``("error", message)`` when
    the bundle fails to load — the launcher side turns the latter (or
    silence) into a typed launch failure.  SIGTERM triggers a graceful
    stop: the accept loop ends, in-flight requests are answered, and the
    service closes (draining its own pools).
    """
    from repro.serve.service import AnnotationService

    try:
        service = AnnotationService.load(bundle_dir, **(service_kwargs or {}))
        server = ReplicaServer(service, host=host, port=port, name=name)
        server.start()
    # repro: allow[REP104] -- process boundary: the failure is reported by
    # name through the ready pipe; the launcher re-raises it as WorkerCrashed
    except Exception as error:
        try:
            ready.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            ready.close()
        raise SystemExit(1) from error

    signal.signal(signal.SIGTERM, lambda signum, frame: server.request_stop())
    ready.send(("ready", server.port))
    ready.close()
    try:
        server.serve_forever()
        server.stop()
    finally:
        service.close()
