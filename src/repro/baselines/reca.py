"""RECA baseline: related-table enhanced single-column annotation.

RECA (Sun et al., VLDB 2023) augments each target column with aligned columns
found in *related tables* of the corpus before feeding it to BERT.  It
captures inter-table information but ignores intra-table context, and its
related-table search is expensive (the KGLink paper calls its complexity
exponential in the number of tables, and Figure 7 shows it as by far the
slowest method).

The reimplementation keeps both properties: for every target column it scans
every column of every other table, computes a Jaccard similarity over cell
token sets, and appends the most similar columns' cells to the input sequence.
The scan is deliberately exhaustive (no index) so the runtime comparison of
Figure 7 retains its shape.
"""

from __future__ import annotations

from repro.baselines.base import PLMBaselineAnnotator, PLMBaselineConfig
from repro.core.serialization import SerializedTable
from repro.data.corpus import TableCorpus
from repro.data.table import Table
from repro.text.tokenizer import WordPieceTokenizer, basic_tokenize

__all__ = ["RECAAnnotator"]


class RECAAnnotator(PLMBaselineAnnotator):
    """Single-column PLM annotator augmented with related-table columns."""

    name = "RECA"

    def __init__(self, config: PLMBaselineConfig | None = None,
                 tokenizer: WordPieceTokenizer | None = None,
                 num_related_columns: int = 2):
        super().__init__(config, tokenizer)
        self.num_related_columns = num_related_columns
        self._corpus_columns: list[tuple[str, frozenset[str], str]] = []

    # ------------------------------------------------------------------ #
    def prepare_corpus_context(self, corpus: TableCorpus) -> None:
        """Index every column of the corpus for the related-column search."""
        self._corpus_columns = []
        for table in corpus.tables:
            for column in table.columns:
                tokens = frozenset(
                    token for cell in column.cells for token in basic_tokenize(cell)
                )
                text = " ".join(cell for cell in column.cells[:10] if cell.strip())
                self._corpus_columns.append((table.table_id, tokens, text))

    def _related_texts(self, table_id: str, tokens: frozenset[str]) -> list[str]:
        """Exhaustively score every other column by Jaccard similarity."""
        scored: list[tuple[float, str]] = []
        for other_table_id, other_tokens, other_text in self._corpus_columns:
            if other_table_id == table_id:
                continue
            if not tokens or not other_tokens:
                continue
            intersection = len(tokens & other_tokens)
            if intersection == 0:
                continue
            union = len(tokens | other_tokens)
            scored.append((intersection / union, other_text))
        scored.sort(key=lambda item: -item[0])
        return [text for _, text in scored[: self.num_related_columns]]

    # ------------------------------------------------------------------ #
    def serialize_units(self, table: Table) -> list[SerializedTable]:
        table = table.truncated(self.config.max_rows)
        budget = self.config.max_tokens_per_column - 1
        units: list[SerializedTable] = []
        for column in table.columns[: self.config.max_columns]:
            tokens = frozenset(
                token for cell in column.cells for token in basic_tokenize(cell)
            )
            related = self._related_texts(table.table_id, tokens)
            text = " ".join(cell for cell in column.cells if cell.strip())
            if related:
                text = text + " " + " ".join(related)
            ids = self.tokenizer.encode(text, max_length=budget + len(related) * 8)
            units.append(self.make_unit([ids], [column.label]))
        return units
