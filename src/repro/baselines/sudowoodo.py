"""Sudowoodo baseline: single-column PLM classifier with self-supervised warm-up.

Sudowoodo (Wang et al.) is a contrastive self-supervised data-integration
model; used as a fully-supervised column-type annotator (as the paper does:
"we utilize the same amount of training data with other baselines, making it a
full-supervised model") it reduces to a single-column RoBERTa-style classifier
warmed up with a self-supervised objective.  The reimplementation performs a
short extra MLM warm-up over column texts (standing in for the contrastive
stage) and fine-tunes a per-column classifier.  Its distinguishing property —
no intra-table context — is preserved, which is why it trails the multi-column
models on context-dependent columns (paper Table IV).
"""

from __future__ import annotations

from repro.baselines.base import PLMBaselineAnnotator, PLMBaselineConfig
from repro.core.serialization import SerializedTable
from repro.data.corpus import TableCorpus
from repro.data.table import Table
from repro.text.tokenizer import WordPieceTokenizer

__all__ = ["SudowoodoAnnotator"]


class SudowoodoAnnotator(PLMBaselineAnnotator):
    """Single-column PLM annotator with extended self-supervised pre-training."""

    name = "Sudowoodo"

    def __init__(self, config: PLMBaselineConfig | None = None,
                 tokenizer: WordPieceTokenizer | None = None,
                 warmup_multiplier: float = 1.5):
        super().__init__(config, tokenizer)
        self.warmup_multiplier = warmup_multiplier

    def pretraining_texts(self, corpus: TableCorpus) -> list[str]:
        # Column-level views, duplicated with a shuffled-cell augmentation to
        # imitate the positive pairs of the contrastive stage.
        texts = super().pretraining_texts(corpus)
        augmented = []
        for text in texts:
            words = text.split()
            augmented.append(" ".join(reversed(words)))
        return texts + augmented

    def serialize_units(self, table: Table) -> list[SerializedTable]:
        table = table.truncated(self.config.max_rows)
        budget = self.config.max_tokens_per_column - 1
        units: list[SerializedTable] = []
        for column in table.columns[: self.config.max_columns]:
            text = " ".join(cell for cell in column.cells if cell.strip())
            ids = self.tokenizer.encode(text, max_length=budget)
            units.append(self.make_unit([ids], [column.label]))
        return units
