"""Shared infrastructure for the baseline annotators.

Two kinds of baselines exist:

* **PLM-based** (TaBERT, Doduo, Sudowoodo, RECA): they differ only in how a
  table is serialised into token sequences.  :class:`PLMBaselineAnnotator`
  factors out tokenizer training, MLM pre-training, fine-tuning (through the
  same :class:`~repro.core.trainer.KGLinkTrainer` machinery, with the KG-side
  switches disabled) and prediction; concrete baselines implement a single
  ``serialize_units`` hook.
* **Non-PLM** (MTab, HNN, Sherlock): they implement
  :class:`BaseAnnotator` directly.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.core.serialization import SerializedTable
from repro.core.trainer import IGNORE_INDEX, KGLinkTrainer, PreparedExample, TrainingConfig
from repro.core.model import KGLinkModel
from repro.data.corpus import TableCorpus
from repro.data.metrics import EvaluationResult, evaluate_predictions
from repro.data.table import Table
from repro.plm.config import PLMConfig
from repro.plm.pretrain import MLMPretrainer, PretrainConfig
from repro.text.tokenizer import WordPieceTokenizer

__all__ = ["BaseAnnotator", "PLMBaselineConfig", "PLMBaselineAnnotator"]


class BaseAnnotator(abc.ABC):
    """Common interface of every column-type annotation method."""

    name: str = "baseline"

    def __init__(self) -> None:
        self.fit_seconds: float = 0.0
        self.inference_seconds: float = 0.0

    @abc.abstractmethod
    def fit(self, train_corpus: TableCorpus, validation_corpus: TableCorpus | None = None) -> None:
        """Train (or otherwise prepare) the annotator."""

    @abc.abstractmethod
    def predict_corpus(self, corpus: TableCorpus) -> tuple[list[str], list[str]]:
        """Return aligned ``(y_true, y_pred)`` over all labelled columns."""

    def evaluate(self, corpus: TableCorpus, include_report: bool = False) -> EvaluationResult:
        """Evaluate accuracy and weighted F1 on a labelled corpus."""
        start = time.perf_counter()
        y_true, y_pred = self.predict_corpus(corpus)
        self.inference_seconds = time.perf_counter() - start
        return evaluate_predictions(y_true, y_pred, include_report=include_report)


@dataclass(frozen=True)
class PLMBaselineConfig:
    """Shared hyper-parameters of the PLM-based baselines.

    Defaults mirror :class:`repro.core.annotator.KGLinkConfig` so the paper's
    statement "The experimental settings for TaBERT and Doduo were the same as
    KGLink" holds here too.
    """

    hidden_size: int = 64
    num_layers: int = 2
    num_heads: int = 4
    intermediate_size: int = 128
    dropout: float = 0.1
    vocab_size: int = 3000
    max_position_embeddings: int = 320
    pretrain_steps: int = 40
    max_tokens_per_column: int = 28
    max_columns: int = 8
    max_rows: int = 25
    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 3e-4
    weight_decay: float = 0.01
    early_stopping_patience: int = 3
    seed: int = 0

    def plm_config(self, vocab_size: int | None = None) -> PLMConfig:
        return PLMConfig(
            vocab_size=vocab_size or self.vocab_size,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            intermediate_size=self.intermediate_size,
            max_position_embeddings=self.max_position_embeddings,
            dropout=self.dropout,
            seed=self.seed,
        )

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
            use_mask_task=False,
            use_feature_vector=False,
            use_candidate_types=False,
            early_stopping_patience=self.early_stopping_patience,
            seed=self.seed,
        )


class PLMBaselineAnnotator(BaseAnnotator):
    """Base class for the PLM-based baselines.

    Sub-classes implement :meth:`serialize_units`, turning a table into one or
    more :class:`SerializedTable` units (one unit per table for multi-column
    models, one unit per column for single-column models).
    """

    def __init__(self, config: PLMBaselineConfig | None = None,
                 tokenizer: WordPieceTokenizer | None = None):
        super().__init__()
        self.config = config or PLMBaselineConfig()
        self.tokenizer = tokenizer
        self.model: KGLinkModel | None = None
        self.trainer: KGLinkTrainer | None = None
        self.label_vocabulary: list[str] = []

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def prepare_corpus_context(self, corpus: TableCorpus) -> None:
        """Hook called before serialising a corpus (used by RECA)."""

    @abc.abstractmethod
    def serialize_units(self, table: Table) -> list[SerializedTable]:
        """Serialise one table into model-input units."""

    def pretraining_texts(self, corpus: TableCorpus) -> list[str]:
        """Raw texts used for tokenizer training and MLM pre-training."""
        texts: list[str] = []
        for table in corpus.tables:
            for column in table.columns:
                cells = " ".join(cell for cell in column.cells[:10] if cell)
                if column.name:
                    cells = f"{column.name} {cells}"
                if cells.strip():
                    texts.append(cells)
        return texts

    # ------------------------------------------------------------------ #
    # helpers shared by the serialisation hooks
    # ------------------------------------------------------------------ #
    def _empty_features(self, n_columns: int) -> tuple[np.ndarray, np.ndarray]:
        """Minimal feature blocks (unused by baselines but required by the trainer)."""
        vocab = self.tokenizer.vocabulary
        ids = np.full((n_columns, 2), vocab.pad_id, dtype=np.int64)
        ids[:, 0] = vocab.cls_id
        attention = np.zeros((n_columns, 2), dtype=bool)
        attention[:, 0] = True
        return ids, attention

    def make_unit(self, column_token_ids: list[list[int]],
                  column_labels: list[str | None]) -> SerializedTable:
        """Assemble a multi-column unit from per-column token-id lists."""
        vocab = self.tokenizer.vocabulary
        token_ids: list[int] = []
        cls_positions: list[int] = []
        for ids in column_token_ids:
            cls_positions.append(len(token_ids))
            token_ids.extend([vocab.cls_id] + ids)
        token_ids.append(vocab.sep_id)
        token_ids = token_ids[: self.config.max_position_embeddings]
        cls_positions = [p for p in cls_positions if p < len(token_ids)]
        column_labels = column_labels[: len(cls_positions)]
        features, feature_attention = self._empty_features(len(cls_positions))
        array = np.asarray(token_ids, dtype=np.int64)
        return SerializedTable(
            token_ids=array,
            attention_mask=np.ones_like(array, dtype=bool),
            cls_positions=cls_positions,
            mask_positions=[-1] * len(cls_positions),
            label_positions=[-1] * len(cls_positions),
            column_labels=column_labels,
            feature_token_ids=features,
            feature_attention_mask=feature_attention,
            has_feature=[False] * len(cls_positions),
        )

    def _units_to_examples(self, units: list[SerializedTable]) -> list[PreparedExample]:
        examples = []
        for index, unit in enumerate(units):
            labels = np.asarray(
                [
                    self._label_to_index.get(label, IGNORE_INDEX)
                    if label is not None
                    else IGNORE_INDEX
                    for label in unit.column_labels
                ],
                dtype=np.int64,
            )
            examples.append(
                PreparedExample(
                    table_id=f"unit-{index}",
                    masked=unit,
                    ground_truth=None,
                    label_indices=labels,
                    true_labels=list(unit.column_labels),
                )
            )
        return examples

    def _corpus_units(self, corpus: TableCorpus) -> list[SerializedTable]:
        self.prepare_corpus_context(corpus)
        units: list[SerializedTable] = []
        for table in corpus.tables:
            units.extend(self.serialize_units(table))
        return units

    # ------------------------------------------------------------------ #
    # BaseAnnotator interface
    # ------------------------------------------------------------------ #
    def fit(self, train_corpus: TableCorpus, validation_corpus: TableCorpus | None = None) -> None:
        start = time.perf_counter()
        self.label_vocabulary = list(train_corpus.label_vocabulary)
        self._label_to_index = {label: i for i, label in enumerate(self.label_vocabulary)}

        pretrainer = MLMPretrainer(
            self.config.plm_config(),
            PretrainConfig(steps=self.config.pretrain_steps, seed=self.config.seed + 23),
        )
        texts = self.pretraining_texts(train_corpus)
        self.tokenizer, encoder, _ = pretrainer.pretrain(texts, tokenizer=self.tokenizer)

        self.model = KGLinkModel(
            encoder, num_labels=len(self.label_vocabulary), use_feature_vector=False,
            seed=self.config.seed,
        )
        # The serializer argument is unused by the baselines (units are built
        # by serialize_units), but the trainer requires one for its interface.
        from repro.core.serialization import SerializerConfig, TableSerializer

        serializer = TableSerializer(self.tokenizer, SerializerConfig(
            max_tokens_per_column=self.config.max_tokens_per_column,
            max_columns=self.config.max_columns,
            max_sequence_length=self.config.max_position_embeddings,
        ))
        self.trainer = KGLinkTrainer(
            self.model, serializer, self.label_vocabulary, self.config.training_config()
        )

        train_examples = self._units_to_examples(self._corpus_units(train_corpus))
        valid_examples = (
            self._units_to_examples(self._corpus_units(validation_corpus))
            if validation_corpus is not None and len(validation_corpus.tables) > 0
            else None
        )
        self.history = self.trainer.train(train_examples, valid_examples)
        self.fit_seconds = time.perf_counter() - start

    def predict_corpus(self, corpus: TableCorpus) -> tuple[list[str], list[str]]:
        if self.trainer is None:
            raise RuntimeError(f"{self.name} must be fitted before prediction")
        examples = self._units_to_examples(self._corpus_units(corpus))
        predictions = self.trainer.predict(examples)
        y_true: list[str] = []
        y_pred: list[str] = []
        for example, predicted in zip(examples, predictions, strict=True):
            for truth, pred in zip(example.true_labels, predicted, strict=True):
                if truth is None:
                    continue
                y_true.append(truth)
                y_pred.append(pred)
        return y_true, y_pred
