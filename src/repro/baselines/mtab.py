"""MTab baseline: purely knowledge-graph-based column-type voting.

MTab (Nguyen et al., SemTab 2021 winner) annotates columns by linking cells to
the knowledge graph and aggregating the retrieved entities' types with
rule/statistics-based scoring — no learned model is involved.  The
reimplementation reuses Part 1 of KGLink (linking, overlap filtering and
candidate-type scoring) and predicts, for each column, the dataset label whose
surface form matches the best candidate type.

Two properties of the paper's Table I follow directly from this design and are
preserved here:

* on the SemTab-style corpus the dataset labels *are* KG type labels, so MTab
  is extremely strong;
* on the VizNet-style corpus the labels are coarse web-table types, so MTab
  must go through a learned label translation (the paper translates VizNet
  labels to WikiData entities) and fails entirely on numeric columns, giving
  the lowest accuracy of all methods.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict

from repro.baselines.base import BaseAnnotator
from repro.core.pipeline import KGCandidateExtractor, Part1Config, ProcessedTable
from repro.data.corpus import TableCorpus
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker

__all__ = ["MTabAnnotator"]


class MTabAnnotator(BaseAnnotator):
    """Knowledge-graph voting annotator (no deep learning component)."""

    name = "MTab"

    def __init__(self, graph: KnowledgeGraph, part1_config: Part1Config | None = None,
                 linker: EntityLinker | None = None):
        super().__init__()
        self.graph = graph
        self.extractor = KGCandidateExtractor(
            graph, part1_config or Part1Config(), linker=linker
        )
        self.fallback_label: str | None = None
        self.label_vocabulary: list[str] = []
        self._lowercase_labels: dict[str, str] = {}
        self._translation: dict[str, str] = {}
        self._processed_cache: dict[str, ProcessedTable] = {}

    # ------------------------------------------------------------------ #
    def _process_corpus(self, corpus: TableCorpus) -> list[ProcessedTable]:
        processed = []
        for table in corpus.tables:
            cached = self._processed_cache.get(table.table_id)
            if cached is None:
                cached = self.extractor.process_table(table)
                self._processed_cache[table.table_id] = cached
            processed.append(cached)
        return processed

    def _best_candidate_type(self, info) -> str | None:
        if not info.candidate_types:
            return None
        return info.candidate_types[0]

    # ------------------------------------------------------------------ #
    def fit(self, train_corpus: TableCorpus, validation_corpus: TableCorpus | None = None) -> None:
        """Record the label vocabulary and learn the KG-type → label translation."""
        start = time.perf_counter()
        self.label_vocabulary = list(train_corpus.label_vocabulary)
        self._lowercase_labels = {label.lower(): label for label in self.label_vocabulary}
        counts = train_corpus.label_counts()
        self.fallback_label = counts.most_common(1)[0][0] if counts else None

        # Maximum-likelihood translation from candidate-type surface forms to
        # dataset labels, estimated on the training corpus (the paper
        # translates VizNet labels to WikiData entities to make MTab work).
        cooccurrence: dict[str, Counter] = defaultdict(Counter)
        for processed in self._process_corpus(train_corpus):
            for info in processed.columns:
                candidate = self._best_candidate_type(info)
                if candidate is None or info.label is None:
                    continue
                cooccurrence[candidate.lower()][info.label] += 1
        self._translation = {
            candidate: label_counts.most_common(1)[0][0]
            for candidate, label_counts in cooccurrence.items()
        }
        self.fit_seconds = time.perf_counter() - start

    def _predict_column(self, info) -> str:
        candidate = self._best_candidate_type(info)
        if candidate is not None:
            exact = self._lowercase_labels.get(candidate.lower())
            if exact is not None:
                return exact
        # Try the remaining candidate types for an exact label match.
        for other in info.candidate_types[1:]:
            exact = self._lowercase_labels.get(other.lower())
            if exact is not None:
                return exact
        # Otherwise fall back to the statistically learned translation of the
        # strongest candidate type, then to the majority training label.
        if candidate is not None:
            translated = self._translation.get(candidate.lower())
            if translated is not None:
                return translated
        return self.fallback_label or (self.label_vocabulary[0] if self.label_vocabulary else "")

    def predict_corpus(self, corpus: TableCorpus) -> tuple[list[str], list[str]]:
        if not self.label_vocabulary:
            raise RuntimeError("MTabAnnotator must be fitted before prediction")
        y_true: list[str] = []
        y_pred: list[str] = []
        for processed in self._process_corpus(corpus):
            for info in processed.columns:
                if info.label is None:
                    continue
                y_true.append(info.label)
                y_pred.append(self._predict_column(info))
        return y_true, y_pred
