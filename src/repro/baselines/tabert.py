"""TaBERT baseline: row-oriented linearisation of the table content.

TaBERT (Yin et al., ACL 2020) encodes a table by linearising *content
snapshots*: a few representative rows are serialised cell by cell together
with the column headers.  The reimplementation keeps that property — each
column's block contains its header and the cells of the first few rows
interleaved with the other columns' context — while predicting each column
from its ``[CLS]`` token, so the comparison with Doduo/KGLink isolates the
serialisation strategy.
"""

from __future__ import annotations

from repro.baselines.base import PLMBaselineAnnotator
from repro.core.serialization import SerializedTable
from repro.data.table import Table

__all__ = ["TaBERTAnnotator"]


class TaBERTAnnotator(PLMBaselineAnnotator):
    """Row-snapshot PLM column-type annotator (one unit per table)."""

    name = "TaBERT"
    snapshot_rows: int = 3

    def serialize_units(self, table: Table) -> list[SerializedTable]:
        table = table.truncated(self.config.max_rows)
        budget = self.config.max_tokens_per_column - 1
        n_columns = min(table.n_columns, self.config.max_columns)
        snapshot = list(range(min(self.snapshot_rows, table.n_rows)))

        column_ids: list[list[int]] = []
        labels: list[str | None] = []
        for col_index in range(n_columns):
            column = table.columns[col_index]
            # The column block: header, the column's snapshot cells, then the
            # same rows' cells from the other columns as row context.
            parts: list[str] = []
            if column.name:
                parts.append(column.name)
            parts.extend(column.cells[row] for row in snapshot if column.cells[row].strip())
            for row in snapshot:
                for other_index in range(n_columns):
                    if other_index == col_index:
                        continue
                    cell = table.columns[other_index].cells[row]
                    if cell.strip():
                        parts.append(cell)
            text = " ".join(parts)
            column_ids.append(self.tokenizer.encode(text, max_length=budget))
            labels.append(column.label)
        return [self.make_unit(column_ids, labels)]
