"""HNN baseline: hybrid neural network using the first cell's KG type attribute.

HNN (Chen et al., IJCAI 2019) extends ColNet with inter-column semantics, but
— as the KGLink paper emphasises — it only links the **first cell** of each
target column to the KG and only uses the **type attribute** (``instance_of``)
of that single entity, which makes it fragile: a wrong first-cell link injects
noise, the fine-grained types reachable one hop away are never seen, and
numeric columns get no KG signal at all.

The reimplementation keeps exactly those restrictions.  Each column becomes a
feature vector of (a) a bag of ``instance_of`` types of the best entity linked
from the first cell and (b) simple character-level statistics of the cells,
classified with a two-layer perceptron trained on the ``repro.nn`` framework.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.baselines.base import BaseAnnotator
from repro.data.corpus import TableCorpus
from repro.data.table import Column
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.nn import functional as F
from repro.nn.tensor import no_grad

__all__ = ["HNNConfig", "HNNAnnotator"]


@dataclass(frozen=True)
class HNNConfig:
    """Hyper-parameters of the HNN baseline."""

    hidden_size: int = 64
    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    seed: int = 0


def _character_statistics(column: Column) -> np.ndarray:
    """Simple per-column statistics over the cell strings."""
    cells = [cell for cell in column.cells if cell]
    if not cells:
        return np.zeros(8)
    lengths = np.asarray([len(cell) for cell in cells], dtype=np.float64)
    digit_fraction = np.mean([
        sum(ch.isdigit() for ch in cell) / max(len(cell), 1) for cell in cells
    ])
    alpha_fraction = np.mean([
        sum(ch.isalpha() for ch in cell) / max(len(cell), 1) for cell in cells
    ])
    upper_fraction = np.mean([
        sum(ch.isupper() for ch in cell) / max(len(cell), 1) for cell in cells
    ])
    space_fraction = np.mean([cell.count(" ") / max(len(cell), 1) for cell in cells])
    distinct_ratio = len(set(cells)) / len(cells)
    return np.asarray([
        lengths.mean() / 32.0,
        lengths.std() / 32.0,
        digit_fraction,
        alpha_fraction,
        upper_fraction,
        space_fraction,
        distinct_ratio,
        len(cells) / 64.0,
    ])


class _MLP(nn.Module):
    """Two-layer perceptron classifier."""

    def __init__(self, input_size: int, hidden_size: int, num_labels: int, seed: int):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.hidden = nn.Linear(input_size, hidden_size, rng=rng)
        self.output = nn.Linear(hidden_size, num_labels, rng=rng)

    def forward(self, features):
        return self.output(F.relu(self.hidden(features)))


class HNNAnnotator(BaseAnnotator):
    """First-cell KG-type + cell-statistics neural baseline."""

    name = "HNN"

    def __init__(self, graph: KnowledgeGraph, config: HNNConfig | None = None,
                 linker: EntityLinker | None = None):
        super().__init__()
        self.graph = graph
        self.config = config or HNNConfig()
        self.linker = linker or EntityLinker(graph, LinkerConfig(max_candidates=5))
        self.label_vocabulary: list[str] = []
        self._type_index: dict[str, int] = {}
        self.model: _MLP | None = None

    # ------------------------------------------------------------------ #
    def _column_features(self, column: Column) -> np.ndarray:
        type_features = np.zeros(len(self._type_index))
        first_cell = next((cell for cell in column.cells if cell.strip()), "")
        best = self.linker.best_link(first_cell) if first_cell else None
        if best is not None:
            for type_id in self.graph.types_of(best.entity_id):
                index = self._type_index.get(type_id)
                if index is not None:
                    type_features[index] = 1.0
        return np.concatenate([type_features, _character_statistics(column)])

    def _corpus_features(self, corpus: TableCorpus) -> tuple[np.ndarray, list[str | None]]:
        features = []
        labels: list[str | None] = []
        for table in corpus.tables:
            for column in table.columns:
                features.append(self._column_features(column))
                labels.append(column.label)
        return np.asarray(features), labels

    # ------------------------------------------------------------------ #
    def fit(self, train_corpus: TableCorpus, validation_corpus: TableCorpus | None = None) -> None:
        start = time.perf_counter()
        self.label_vocabulary = list(train_corpus.label_vocabulary)
        label_to_index = {label: i for i, label in enumerate(self.label_vocabulary)}
        self._type_index = {
            entity.entity_id: index
            for index, entity in enumerate(self.graph.type_entities())
        }

        features, labels = self._corpus_features(train_corpus)
        targets = np.asarray(
            [label_to_index.get(label, -100) if label else -100 for label in labels],
            dtype=np.int64,
        )
        keep = targets != -100
        features, targets = features[keep], targets[keep]

        self.model = _MLP(features.shape[1], self.config.hidden_size,
                          len(self.label_vocabulary), seed=self.config.seed)
        optimizer = nn.AdamW(self.model.parameters(), lr=self.config.learning_rate, eps=1e-6)
        rng = np.random.default_rng(self.config.seed)
        self.model.train()
        for _ in range(self.config.epochs):
            order = rng.permutation(len(features))
            for batch_start in range(0, len(features), self.config.batch_size):
                batch = order[batch_start : batch_start + self.config.batch_size]
                logits = self.model(nn.Tensor(features[batch]))
                loss = F.cross_entropy(logits, targets[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self.model.eval()
        self.fit_seconds = time.perf_counter() - start

    def predict_corpus(self, corpus: TableCorpus) -> tuple[list[str], list[str]]:
        if self.model is None:
            raise RuntimeError("HNNAnnotator must be fitted before prediction")
        features, labels = self._corpus_features(corpus)
        if len(labels) == 0:
            return [], []
        with no_grad():
            logits = self.model(nn.Tensor(features))
        predictions = np.argmax(logits.data, axis=-1)
        y_true: list[str] = []
        y_pred: list[str] = []
        for label, prediction in zip(labels, predictions, strict=True):
            if label is None:
                continue
            y_true.append(label)
            y_pred.append(self.label_vocabulary[int(prediction)])
        return y_true, y_pred
