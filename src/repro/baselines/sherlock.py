"""Sherlock baseline: feature-engineered single-column classification.

Sherlock (Hulsebos et al., KDD 2019) predicts a column's semantic type from
hand-crafted features of its cells (character statistics, word embeddings and
global statistics) with a feed-forward network and no table context.  It is
part of the lineage the paper's related-work section discusses (Sherlock →
Sato → PLM-based models); it is included here as an additional reference point
and used by the extended analysis benchmarks.

The reimplementation uses character-level statistics plus a bag of the most
frequent training-corpus tokens, classified by a two-layer perceptron.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.baselines.base import BaseAnnotator
from repro.baselines.hnn import _MLP, _character_statistics
from repro.data.corpus import TableCorpus
from repro.data.table import Column
from repro.nn import functional as F
from repro.nn.tensor import no_grad
from repro.text.tokenizer import basic_tokenize

__all__ = ["SherlockConfig", "SherlockAnnotator"]


@dataclass(frozen=True)
class SherlockConfig:
    """Hyper-parameters of the Sherlock baseline."""

    vocabulary_size: int = 300
    hidden_size: int = 96
    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    seed: int = 0


class SherlockAnnotator(BaseAnnotator):
    """Single-column feature-based neural annotator."""

    name = "Sherlock"

    def __init__(self, config: SherlockConfig | None = None):
        super().__init__()
        self.config = config or SherlockConfig()
        self.label_vocabulary: list[str] = []
        self._token_index: dict[str, int] = {}
        self.model: _MLP | None = None

    # ------------------------------------------------------------------ #
    def _column_features(self, column: Column) -> np.ndarray:
        bag = np.zeros(len(self._token_index))
        for cell in column.cells:
            for token in basic_tokenize(cell):
                index = self._token_index.get(token)
                if index is not None:
                    bag[index] += 1.0
        if bag.max() > 0:
            bag /= bag.max()
        return np.concatenate([bag, _character_statistics(column)])

    def _corpus_features(self, corpus: TableCorpus) -> tuple[np.ndarray, list[str | None]]:
        features = []
        labels: list[str | None] = []
        for table in corpus.tables:
            for column in table.columns:
                features.append(self._column_features(column))
                labels.append(column.label)
        return np.asarray(features), labels

    # ------------------------------------------------------------------ #
    def fit(self, train_corpus: TableCorpus, validation_corpus: TableCorpus | None = None) -> None:
        start = time.perf_counter()
        self.label_vocabulary = list(train_corpus.label_vocabulary)
        label_to_index = {label: i for i, label in enumerate(self.label_vocabulary)}

        counter: Counter[str] = Counter()
        for table in train_corpus.tables:
            for column in table.columns:
                for cell in column.cells:
                    counter.update(basic_tokenize(cell))
        most_common = [token for token, _ in counter.most_common(self.config.vocabulary_size)]
        self._token_index = {token: index for index, token in enumerate(most_common)}

        features, labels = self._corpus_features(train_corpus)
        targets = np.asarray(
            [label_to_index.get(label, -100) if label else -100 for label in labels],
            dtype=np.int64,
        )
        keep = targets != -100
        features, targets = features[keep], targets[keep]

        self.model = _MLP(features.shape[1], self.config.hidden_size,
                          len(self.label_vocabulary), seed=self.config.seed)
        optimizer = nn.AdamW(self.model.parameters(), lr=self.config.learning_rate, eps=1e-6)
        rng = np.random.default_rng(self.config.seed)
        self.model.train()
        for _ in range(self.config.epochs):
            order = rng.permutation(len(features))
            for batch_start in range(0, len(features), self.config.batch_size):
                batch = order[batch_start : batch_start + self.config.batch_size]
                logits = self.model(nn.Tensor(features[batch]))
                loss = F.cross_entropy(logits, targets[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self.model.eval()
        self.fit_seconds = time.perf_counter() - start

    def predict_corpus(self, corpus: TableCorpus) -> tuple[list[str], list[str]]:
        if self.model is None:
            raise RuntimeError("SherlockAnnotator must be fitted before prediction")
        features, labels = self._corpus_features(corpus)
        if len(labels) == 0:
            return [], []
        with no_grad():
            logits = self.model(nn.Tensor(features))
        predictions = np.argmax(logits.data, axis=-1)
        y_true: list[str] = []
        y_pred: list[str] = []
        for label, prediction in zip(labels, predictions, strict=True):
            if label is None:
                continue
            y_true.append(label)
            y_pred.append(self.label_vocabulary[int(prediction)])
        return y_true, y_pred
