"""Baseline column-type annotation methods the paper compares against.

Every baseline is re-implemented on top of the same substrates (knowledge
graph, MiniBERT encoder, tokenizer, datasets) so that comparisons isolate the
modelling differences the paper discusses:

* :class:`~repro.baselines.mtab.MTabAnnotator` — purely KG-based voting
  (rule/statistics based, no learning);
* :class:`~repro.baselines.tabert.TaBERTAnnotator` — PLM over a row-oriented
  linearisation of the table;
* :class:`~repro.baselines.doduo.DoduoAnnotator` — multi-column PLM
  serialisation (the serialisation KGLink builds on) without KG information;
* :class:`~repro.baselines.hnn.HNNAnnotator` — hybrid neural network using the
  KG type attribute of the *first* cell of each column, no PLM;
* :class:`~repro.baselines.sudowoodo.SudowoodoAnnotator` — single-column PLM
  classifier with contrastive-style self-supervised warm-up;
* :class:`~repro.baselines.reca.RECAAnnotator` — single-column PLM classifier
  augmented with aligned columns from related tables;
* :class:`~repro.baselines.sherlock.SherlockAnnotator` — feature-based
  single-column classifier (extra baseline from the related-work lineage).
"""

from repro.baselines.base import BaseAnnotator, PLMBaselineConfig
from repro.baselines.mtab import MTabAnnotator
from repro.baselines.tabert import TaBERTAnnotator
from repro.baselines.doduo import DoduoAnnotator
from repro.baselines.hnn import HNNAnnotator
from repro.baselines.sudowoodo import SudowoodoAnnotator
from repro.baselines.reca import RECAAnnotator
from repro.baselines.sherlock import SherlockAnnotator

__all__ = [
    "BaseAnnotator",
    "PLMBaselineConfig",
    "MTabAnnotator",
    "TaBERTAnnotator",
    "DoduoAnnotator",
    "HNNAnnotator",
    "SudowoodoAnnotator",
    "RECAAnnotator",
    "SherlockAnnotator",
]
