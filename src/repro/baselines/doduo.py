"""Doduo baseline: multi-column PLM serialisation without KG information.

Doduo (Suhara et al., SIGMOD 2022) serialises the whole table into one
sequence with a ``[CLS]`` token per column (Eq. 11 of the KGLink paper, which
adopts exactly this scheme) and predicts every column's type from its
``[CLS]`` representation.  Compared with KGLink it has no knowledge-graph
candidate types, no feature vectors and no representation-generation sub-task,
which is what the paper's comparison isolates.
"""

from __future__ import annotations

from repro.baselines.base import PLMBaselineAnnotator
from repro.core.serialization import SerializedTable
from repro.data.table import Table

__all__ = ["DoduoAnnotator"]


class DoduoAnnotator(PLMBaselineAnnotator):
    """Multi-column PLM column-type annotator (one unit per table)."""

    name = "Doduo"

    def serialize_units(self, table: Table) -> list[SerializedTable]:
        table = table.truncated(self.config.max_rows)
        budget = self.config.max_tokens_per_column - 1
        column_ids: list[list[int]] = []
        labels: list[str | None] = []
        for column in table.columns[: self.config.max_columns]:
            text = " ".join(cell for cell in column.cells if cell.strip())
            column_ids.append(self.tokenizer.encode(text, max_length=budget))
            labels.append(column.label)
        return [self.make_unit(column_ids, labels)]
