"""Reproduction of KGLink (ICDE 2024).

KGLink annotates the semantic type of table columns by combining evidence
extracted from a knowledge graph (candidate types, feature sequences) with a
pre-trained language model fine-tuned with a multi-task objective.

The package is organised as a set of substrates plus the core method:

``repro.nn``
    A small numpy-based define-by-run autograd framework (tensors, layers,
    optimisers, losses) used to implement and fine-tune the language models.
``repro.text``
    Tokenisation, vocabulary management and a rule-based named-entity schema
    detector (substitute for the spaCy NER used in the paper).
``repro.kg``
    An in-memory WikiData-style knowledge graph, a BM25 index (substitute for
    Elasticsearch) and an entity linker.
``repro.data``
    Table data model, synthetic SemTab-style and VizNet-style corpus
    generators, splits and evaluation metrics.
``repro.plm``
    From-scratch transformer encoders (MiniBERT / MiniDeBERTa) with masked
    language-model pre-training.
``repro.core``
    The KGLink method itself: Part 1 (KG candidate-type extraction) and
    Part 2 (multi-task deep-learning model), plus the end-to-end annotator.
``repro.serve``
    The serving-first API: self-contained model bundles and the
    ``AnnotationService`` front door for annotating tables at volume.
``repro.baselines``
    Reimplementations of the baselines the paper compares against.
``repro.experiments``
    Runners that regenerate every table and figure of the evaluation section.
"""

from repro.version import __version__
from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.pipeline import KGCandidateExtractor, Part1Config
from repro.data.table import Column, Table
from repro.data.corpus import TableCorpus
from repro.kg.graph import KnowledgeGraph
from repro.serve import AnnotationService, ServiceBundle, ServiceStats

__all__ = [
    "__version__",
    "KGLinkAnnotator",
    "KGLinkConfig",
    "KGCandidateExtractor",
    "Part1Config",
    "Column",
    "Table",
    "TableCorpus",
    "KnowledgeGraph",
    "AnnotationService",
    "ServiceBundle",
    "ServiceStats",
]
