"""MiniBERT and MiniDeBERTa transformer encoders.

``MiniBERT`` follows the original BERT encoder: learned token and position
embeddings, a stack of post-norm transformer blocks, an MLM head that projects
hidden states back to vocabulary space (Eq. 14 of the paper uses exactly this
projection for the column-type representation generation task).

``MiniDeBERTa`` adds a learned relative-position attention bias shared across
layers — a compact stand-in for DeBERTa's disentangled attention, providing
the "more powerful PLM encoder" row of the paper's ablation (Table II).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.plm.config import PLMConfig

__all__ = ["MiniBERT", "MiniDeBERTa", "create_encoder"]


class _Embeddings(nn.Module):
    """Token + position embeddings with layer norm and dropout."""

    def __init__(self, config: PLMConfig, rng: np.random.Generator):
        super().__init__()
        self.token = nn.Embedding(config.vocab_size, config.hidden_size, rng=rng)
        self.position = nn.Embedding(config.max_position_embeddings, config.hidden_size, rng=rng)
        self.norm = nn.LayerNorm(config.hidden_size)
        self.dropout = nn.Dropout(config.dropout, seed=config.seed)
        self.max_positions = config.max_position_embeddings
        # Position ids are the same for every forward; compute them once and
        # slice per sequence length instead of re-materialising the arange.
        self._position_ids = np.arange(config.max_position_embeddings, dtype=np.int64)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        _, seq = token_ids.shape
        if seq > self.max_positions:
            raise ValueError(
                f"sequence length {seq} exceeds max_position_embeddings {self.max_positions}"
            )
        # One (seq, hidden) position lookup broadcast over the batch, instead
        # of gathering a duplicated (batch, seq, hidden) block.
        embeddings = self.token(token_ids) + self.position(self._position_ids[:seq])
        return self.dropout(self.norm(embeddings))


class MiniBERT(nn.Module):
    """A small BERT-style bidirectional transformer encoder with an MLM head."""

    def __init__(self, config: PLMConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.embeddings = _Embeddings(config, rng)
        self.layers = nn.ModuleList(
            [
                nn.TransformerEncoderLayer(
                    config.hidden_size, config.num_heads, config.intermediate_size,
                    dropout=config.dropout, rng=rng,
                )
                for _ in range(config.num_layers)
            ]
        )
        self.pooler = nn.Linear(config.hidden_size, config.hidden_size, rng=rng)
        self.mlm_head = nn.Linear(config.hidden_size, config.vocab_size, rng=rng)

    # ------------------------------------------------------------------ #
    def _attention_bias(self, seq_len: int) -> Tensor | None:
        """Additive attention bias; the plain BERT encoder has none."""
        return None

    def forward(self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        """Encode token ids into contextual hidden states ``(batch, seq, hidden)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hidden = self.embeddings(token_ids)
        bias = self._attention_bias(token_ids.shape[1])
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask, attention_bias=bias)
        return hidden

    def encode(self, token_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> Tensor:
        """Alias of :meth:`forward` (Eq. 12: ``Y = BERT(S)``)."""
        return self.forward(token_ids, attention_mask)

    def pooled_output(self, hidden: Tensor) -> Tensor:
        """Tanh-pooled representation of the first (``[CLS]``) token."""
        first = hidden[:, 0, :]
        return F.tanh(self.pooler(first))

    def vocabulary_logits(self, hidden: Tensor) -> Tensor:
        """Project hidden states to vocabulary space (Eq. 14: ``W_o H``)."""
        return self.mlm_head(hidden)

    @property
    def hidden_size(self) -> int:
        return self.config.hidden_size


class MiniDeBERTa(MiniBERT):
    """MiniBERT with a learned relative-position attention bias.

    The bias is a ``(num_heads, num_buckets)`` table indexed by the bucketed
    signed distance between query and key positions, shared across layers —
    the lightweight equivalent of DeBERTa's disentangled attention used by the
    ``KGLink DeBERTa`` ablation.
    """

    def __init__(self, config: PLMConfig):
        if not config.relative_attention:
            config = config.as_deberta()
        super().__init__(config)
        rng = np.random.default_rng(config.seed + 1)
        self.relative_bias = nn.Embedding(
            2 * config.relative_attention_buckets + 1, config.num_heads, rng=rng
        )
        # Per-sequence-length caches: the bucketed distance indices never
        # change, and under no-grad the realised bias table only changes when
        # the (tiny) relative_bias weights do — snapshot them to validate.
        self._bias_index_cache: dict[int, np.ndarray] = {}
        self._bias_value_cache: dict[int, np.ndarray] = {}
        self._bias_weight_snapshot: np.ndarray | None = None

    # Distinct sequence lengths retained per cache; length-bucketed predict
    # can produce one padded length per bucket, so bound the growth with a
    # cheap clear-at-cap policy.  Each value entry is O(heads * seq^2) in the
    # compute dtype (~1 MB at seq 256, 4 heads, float32), so the cap is small.
    _BIAS_CACHE_MAX = 16

    def _bias_indices(self, seq_len: int) -> np.ndarray:
        clipped = self._bias_index_cache.get(seq_len)
        if clipped is None:
            buckets = self.config.relative_attention_buckets
            positions = np.arange(seq_len)
            distance = positions[None, :] - positions[:, None]
            clipped = np.clip(distance, -buckets, buckets) + buckets
            if len(self._bias_index_cache) >= self._BIAS_CACHE_MAX:
                self._bias_index_cache.clear()
            self._bias_index_cache[seq_len] = clipped
        return clipped

    def _attention_bias(self, seq_len: int) -> Tensor | None:
        clipped = self._bias_indices(seq_len)
        if not (is_grad_enabled() and self.relative_bias.weight.requires_grad):
            # Inference: reuse the realised (1, heads, seq, seq) bias while
            # the bias table is unchanged (the snapshot comparison is over
            # (2*buckets+1, heads) scalars — negligible next to the gather).
            weight = self.relative_bias.weight.data
            if self._bias_weight_snapshot is None or not np.array_equal(
                self._bias_weight_snapshot, weight
            ):
                self._bias_value_cache.clear()
                self._bias_weight_snapshot = weight.copy()
            cached = self._bias_value_cache.get(seq_len)
            if cached is None or cached.dtype != weight.dtype:
                cached = (
                    weight[clipped]
                    .transpose(2, 0, 1)
                    .reshape(1, self.config.num_heads, seq_len, seq_len)
                )
                if len(self._bias_value_cache) >= self._BIAS_CACHE_MAX:
                    self._bias_value_cache.clear()
                self._bias_value_cache[seq_len] = cached
            return Tensor._result(cached)
        # Training: the lookup must stay in the autograd graph.
        bias = self.relative_bias(clipped)
        bias = bias.transpose(2, 0, 1).reshape(1, self.config.num_heads, seq_len, seq_len)
        return bias


def create_encoder(config: PLMConfig) -> MiniBERT:
    """Factory returning the encoder matching ``config.relative_attention``."""
    if config.relative_attention:
        return MiniDeBERTa(config)
    return MiniBERT(config)
