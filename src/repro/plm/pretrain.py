"""Masked-language-model pre-training for the MiniBERT encoders.

The role BERT's pre-training plays in the paper — giving the encoder prior
lexical/semantic knowledge that lets it annotate even columns with no KG
linkage — is reproduced by pre-training the MiniBERT encoder on a text corpus
derived from the synthetic knowledge graph (entity labels, descriptions and
predicate verbalisations), using the standard 15 % token-masking objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.builder import KGWorld
from repro.nn import AdamW, functional as F
from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT, create_encoder
from repro.text.tokenizer import WordPieceTokenizer

__all__ = ["PretrainConfig", "MLMPretrainer", "build_pretraining_texts"]


def build_pretraining_texts(world: KGWorld, max_entities: int | None = None) -> list[str]:
    """Verbalise the knowledge graph into sentences for MLM pre-training.

    Each entity contributes one sentence combining its label, description and
    its outgoing edges ("<label> <predicate> <neighbor label>"), which exposes
    the encoder to the same surface forms the serialised tables contain.
    """
    texts: list[str] = []
    graph = world.graph
    for index, entity in enumerate(graph.entities()):
        if max_entities is not None and index >= max_entities:
            break
        parts = [entity.label]
        if entity.description:
            parts.append(entity.description)
        for triple in graph.outgoing(entity.entity_id)[:6]:
            neighbor = graph.entity(triple.object)
            parts.append(f"{triple.predicate.replace('_', ' ')} {neighbor.label}")
        texts.append(" , ".join(parts))
    return texts


@dataclass
class PretrainConfig:
    """Hyper-parameters of the MLM pre-training stage."""

    steps: int = 60
    batch_size: int = 8
    sequence_length: int = 48
    mask_probability: float = 0.15
    learning_rate: float = 1e-3
    seed: int = 11

    def __post_init__(self) -> None:
        if not 0.0 < self.mask_probability < 1.0:
            raise ValueError("mask_probability must lie in (0, 1)")
        if self.steps < 0 or self.batch_size <= 0:
            raise ValueError("steps must be >= 0 and batch_size positive")


class MLMPretrainer:
    """Train a tokenizer and pre-train a MiniBERT encoder on raw texts."""

    def __init__(self, plm_config: PLMConfig, config: PretrainConfig | None = None):
        self.plm_config = plm_config
        self.config = config or PretrainConfig()
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    def train_tokenizer(self, texts: list[str]) -> WordPieceTokenizer:
        """Learn the WordPiece vocabulary from the pre-training texts."""
        return WordPieceTokenizer.train(texts, vocab_size=self.plm_config.vocab_size)

    def _encode_corpus(self, texts: list[str], tokenizer: WordPieceTokenizer) -> list[list[int]]:
        sequences = []
        for text in texts:
            ids = tokenizer.encode(text, max_length=self.config.sequence_length - 2)
            if len(ids) >= 4:
                sequences.append(
                    [tokenizer.vocabulary.cls_id] + ids + [tokenizer.vocabulary.sep_id]
                )
        return sequences

    def _sample_batch(self, sequences: list[list[int]], tokenizer: WordPieceTokenizer
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        vocab = tokenizer.vocabulary
        length = self.config.sequence_length
        batch = self.rng.choice(len(sequences), size=self.config.batch_size, replace=True)
        token_ids = np.full((self.config.batch_size, length), vocab.pad_id, dtype=np.int64)
        attention = np.zeros((self.config.batch_size, length), dtype=bool)
        for row, index in enumerate(batch):
            ids = sequences[index][:length]
            token_ids[row, : len(ids)] = ids
            attention[row, : len(ids)] = True

        labels = np.full_like(token_ids, -100)
        special = {vocab.pad_id, vocab.cls_id, vocab.sep_id}
        maskable = attention & ~np.isin(token_ids, list(special))
        mask_positions = maskable & (self.rng.random(token_ids.shape) < self.config.mask_probability)
        labels[mask_positions] = token_ids[mask_positions]
        token_ids = token_ids.copy()
        token_ids[mask_positions] = vocab.mask_id
        return token_ids, attention, labels

    # ------------------------------------------------------------------ #
    def pretrain(
        self, texts: list[str], tokenizer: WordPieceTokenizer | None = None
    ) -> tuple[WordPieceTokenizer, MiniBERT, list[float]]:
        """Train the tokenizer (unless provided) and pre-train the encoder.

        Returns ``(tokenizer, model, loss_curve)``.
        """
        if tokenizer is None:
            tokenizer = self.train_tokenizer(texts)
        config = self.plm_config.with_vocab_size(tokenizer.vocab_size)
        model = create_encoder(config)
        sequences = self._encode_corpus(texts, tokenizer)
        losses: list[float] = []
        if not sequences or self.config.steps == 0:
            return tokenizer, model, losses

        optimizer = AdamW(model.parameters(), lr=self.config.learning_rate, eps=1e-6)
        model.train()
        for _ in range(self.config.steps):
            token_ids, attention, labels = self._sample_batch(sequences, tokenizer)
            hidden = model(token_ids, attention_mask=attention)
            logits = model.vocabulary_logits(hidden)
            flat_logits = logits.reshape(-1, config.vocab_size)
            loss = F.cross_entropy(flat_logits, labels.reshape(-1))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        model.eval()
        return tokenizer, model, losses
