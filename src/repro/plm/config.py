"""Configuration of the transformer encoders."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PLMConfig"]


@dataclass(frozen=True)
class PLMConfig:
    """Hyper-parameters of the MiniBERT / MiniDeBERTa encoders.

    The defaults are deliberately tiny compared with BERT-base (hidden size 64
    instead of 768, 2 layers instead of 12) so that the full experiment suite
    runs on CPU in minutes.  The architecture — embeddings, stacked
    self-attention blocks, an MLM head, a ``[CLS]`` pooler — is the same, which
    is what KGLink's design depends on.
    """

    vocab_size: int = 4000
    hidden_size: int = 64
    num_layers: int = 2
    num_heads: int = 4
    intermediate_size: int = 128
    max_position_embeddings: int = 256
    dropout: float = 0.1
    relative_attention: bool = False
    relative_attention_buckets: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.vocab_size <= 0 or self.num_layers <= 0:
            raise ValueError("vocab_size and num_layers must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must lie in [0, 1)")

    def with_vocab_size(self, vocab_size: int) -> PLMConfig:
        """Return a copy with the vocabulary size replaced."""
        return replace(self, vocab_size=vocab_size)

    def as_deberta(self) -> PLMConfig:
        """Return a copy with relative (disentangled) attention enabled."""
        return replace(self, relative_attention=True)
