"""Pre-trained language model substrate.

The paper fine-tunes BERT (and, in one ablation, DeBERTa) as the encoder of
its deep-learning component.  Pre-trained checkpoints cannot be downloaded in
this environment, so this package provides:

* :class:`~repro.plm.config.PLMConfig` — encoder hyper-parameters;
* :class:`~repro.plm.model.MiniBERT` — a from-scratch transformer encoder with
  token/position embeddings, a masked-language-model head and a pooled
  ``[CLS]`` output;
* :class:`~repro.plm.model.MiniDeBERTa` — the same encoder with
  disentangled relative-position attention biases (the ``KGLink DeBERTa``
  ablation row of Table II);
* :mod:`~repro.plm.pretrain` — masked-language-model pre-training on a text
  corpus derived from the synthetic knowledge graph, which gives the encoder
  the "prior knowledge" role BERT plays in the paper.
"""

from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT, MiniDeBERTa, create_encoder
from repro.plm.pretrain import MLMPretrainer, PretrainConfig, build_pretraining_texts

__all__ = [
    "PLMConfig",
    "MiniBERT",
    "MiniDeBERTa",
    "create_encoder",
    "MLMPretrainer",
    "PretrainConfig",
    "build_pretraining_texts",
]
