"""Part 1 of KGLink: knowledge-graph candidate-type extraction.

Implements the three steps of Figure 4 of the paper:

* **Step 1 — table cell mention linking.**  Every cell mention is linked to a
  set of candidate KG entities with BM25 linking scores (Eq. 1–2).  Numbers
  and dates receive no links (linking score 0).
* **Step 2 — filters on rows and entities.**  Candidate entities of a cell are
  pruned to those appearing in the one-hop neighbourhood of entities retrieved
  for other columns of the same row (Eq. 3), each surviving entity receives an
  *overlapping score* counting how many of those neighbourhoods contain it
  (Eq. 6), cells receive linking scores (Eq. 4), rows receive the sum of their
  cells' scores (Eq. 5) and only the top-``k`` rows are kept.
* **Step 3 — candidate type generation.**  Candidate types are one-hop
  neighbours of the surviving entities, scored by the overlapping scores of
  the entities that point at them (Eq. 7–8), excluding PERSON and DATE
  entities.  The best-linked cell of each column also yields a *feature
  sequence* serialising its top entity and that entity's neighbourhood
  (Eq. 9); numeric columns instead contribute their mean, variance and average
  as pseudo candidate types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Column, Table
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLink, EntityLinker, LinkerConfig
from repro.kg.snapshot import KGSnapshot
from repro.text.ner import EntitySchema, detect_schema

__all__ = [
    "Part1Config",
    "CellLinkage",
    "ColumnKGInfo",
    "ProcessedTable",
    "KGCandidateExtractor",
]


@dataclass(frozen=True)
class Part1Config:
    """Configuration of the KG candidate-type extraction.

    ``top_k_rows`` is the row-filter size ``k`` (the paper uses 25 by default
    and studies 10/25/50/all in Figure 10); ``max_candidate_types`` is the
    number of candidate types kept per column (the paper keeps up to 3);
    ``max_entities_per_cell`` is the retrieval depth (the paper retrieves up
    to 10 entities per mention).
    """

    top_k_rows: int = 25
    max_candidate_types: int = 3
    max_entities_per_cell: int = 10
    max_feature_neighbors: int = 8
    row_filter: str = "linkage"  # "linkage" (ours) or "original" (Table V baseline)
    use_candidate_types: bool = True
    use_feature_sequence: bool = True

    def __post_init__(self) -> None:
        if self.top_k_rows <= 0:
            raise ValueError("top_k_rows must be positive")
        if self.max_candidate_types < 0:
            raise ValueError("max_candidate_types must be non-negative")
        if self.row_filter not in ("linkage", "original"):
            raise ValueError("row_filter must be 'linkage' or 'original'")


@dataclass
class CellLinkage:
    """Linking results for one table cell."""

    mention: str
    schema: EntitySchema
    raw_links: list[EntityLink] = field(default_factory=list)
    # entity id -> overlapping score (Eq. 6), populated in step 2
    candidate_entities: dict[str, float] = field(default_factory=dict)
    linking_score: float = 0.0

    @property
    def has_links(self) -> bool:
        return bool(self.raw_links)


@dataclass
class ColumnKGInfo:
    """Everything Part 1 extracted for one column."""

    column_index: int
    label: str | None
    is_numeric: bool
    candidate_types: list[str] = field(default_factory=list)
    candidate_type_scores: dict[str, float] = field(default_factory=dict)
    feature_sequence: str = ""
    numeric_summary: list[str] = field(default_factory=list)
    has_kg_links: bool = False

    @property
    def has_candidate_types(self) -> bool:
        return bool(self.candidate_types)

    @property
    def has_feature_sequence(self) -> bool:
        return bool(self.feature_sequence)


@dataclass
class ProcessedTable:
    """The output of Part 1 for one table: the filtered table plus KG context."""

    original: Table
    filtered: Table
    columns: list[ColumnKGInfo]
    row_scores: list[float]
    kept_row_indices: list[int]

    def column_info(self, index: int) -> ColumnKGInfo:
        return self.columns[index]

    def labels(self) -> list[str | None]:
        return [info.label for info in self.columns]


class KGCandidateExtractor:
    """Runs Part 1 of KGLink against a knowledge graph.

    ``graph`` may be a full :class:`~repro.kg.graph.KnowledgeGraph` or the
    serialisable :class:`~repro.kg.snapshot.KGSnapshot` a service bundle
    ships — the extractor only touches the entity/one-hop-neighbourhood
    surface both expose.  Retrieval goes through ``linker``, which talks to
    any :class:`~repro.kg.backends.RetrievalBackend`.
    """

    def __init__(
        self,
        graph: KnowledgeGraph | KGSnapshot,
        config: Part1Config | None = None,
        linker: EntityLinker | None = None,
    ):
        self.graph = graph
        self.config = config or Part1Config()
        self.linker = linker or EntityLinker(
            graph, LinkerConfig(max_candidates=self.config.max_entities_per_cell)
        )
        # One-hop neighbourhoods are queried repeatedly for the same entities;
        # memoise them per extractor instance.
        self._neighbor_cache: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _neighbors(self, entity_id: str) -> frozenset[str]:
        cached = self._neighbor_cache.get(entity_id)
        if cached is None:
            cached = frozenset(self.graph.one_hop_neighbors(entity_id))
            self._neighbor_cache[entity_id] = cached
        return cached

    # ------------------------------------------------------------------ #
    # step 1: linking
    # ------------------------------------------------------------------ #
    def link_table(self, table: Table) -> list[list[CellLinkage]]:
        """Link every cell of ``table``; result is indexed ``[row][column]``.

        All cell mentions are collected up front and resolved through one
        deduplicated :meth:`~repro.kg.linker.EntityLinker.link_batch` call
        (numbers and dates are filtered inside the batch), then fanned back
        out to the row-major cell grid.
        """
        mentions = [
            table.cell(row_index, col_index)
            for row_index in range(table.n_rows)
            for col_index in range(table.n_columns)
        ]
        schemas = [detect_schema(mention) for mention in mentions]
        all_links = self.linker.link_batch(mentions, schemas=schemas)
        n_cols = table.n_columns
        linked: list[list[CellLinkage]] = []
        for row_index in range(table.n_rows):
            base = row_index * n_cols
            linked.append([
                CellLinkage(
                    mention=mentions[base + col_index],
                    schema=schemas[base + col_index],
                    raw_links=all_links[base + col_index],
                )
                for col_index in range(n_cols)
            ])
        return linked

    # ------------------------------------------------------------------ #
    # step 2: overlap filtering and row scores
    # ------------------------------------------------------------------ #
    def apply_overlap_filter(self, linked: list[list[CellLinkage]]) -> None:
        """Populate candidate entities, overlapping scores and cell linking scores.

        For a cell in column ``c1`` of row ``r``, the candidate entity set is
        the subset of its retrieved entities that appear in the one-hop
        neighbourhood of entities retrieved for *some other column* of the same
        row (Eq. 3); the overlapping score of each surviving entity counts in
        how many of those other-column neighbourhoods it appears (Eq. 6).
        Cells whose candidate set would be empty keep their raw entities with
        an overlapping score of zero so a weak signal survives (this mirrors
        the paper's feature-vector fallback), but their linking score follows
        Eq. 4 over the pruned set when it is non-empty.
        """
        for row in linked:
            # Pre-compute the one-hop neighbourhood of each column's entity set.
            column_neighborhoods: list[set[str]] = []
            for cell in row:
                neighborhood: set[str] = set()
                for link in cell.raw_links:
                    neighborhood.update(self._neighbors(link.entity_id))
                column_neighborhoods.append(neighborhood)

            for col_index, cell in enumerate(row):
                if not cell.raw_links:
                    cell.candidate_entities = {}
                    cell.linking_score = 0.0
                    continue
                other_neighborhoods = [
                    column_neighborhoods[other]
                    for other in range(len(row))
                    if other != col_index
                ]
                scores_by_entity: dict[str, float] = {}
                best_pruned_score = 0.0
                for link in cell.raw_links:
                    overlap = sum(
                        1 for neighborhood in other_neighborhoods
                        if link.entity_id in neighborhood
                    )
                    if overlap > 0:
                        scores_by_entity[link.entity_id] = float(overlap)
                        best_pruned_score = max(best_pruned_score, link.score)
                if scores_by_entity:
                    cell.candidate_entities = scores_by_entity
                    cell.linking_score = best_pruned_score
                else:
                    # Nothing survived the intersection: keep the raw entities
                    # with zero overlapping score so step 3 can still build a
                    # feature sequence, but the cell contributes no linking
                    # score to the row filter.
                    cell.candidate_entities = {
                        link.entity_id: 0.0 for link in cell.raw_links
                    }
                    cell.linking_score = 0.0

    def row_linking_scores(self, linked: list[list[CellLinkage]]) -> list[float]:
        """Row linking score = sum of the row's cell linking scores (Eq. 5)."""
        return [sum(cell.linking_score for cell in row) for row in linked]

    def select_rows(self, table: Table, row_scores: list[float]) -> list[int]:
        """Choose the rows to keep according to the configured filter."""
        k = min(self.config.top_k_rows, table.n_rows)
        if self.config.row_filter == "original":
            return list(range(k))
        order = sorted(range(table.n_rows), key=lambda r: (-row_scores[r], r))
        return sorted(order[:k])

    # ------------------------------------------------------------------ #
    # step 3: candidate types and feature sequences
    # ------------------------------------------------------------------ #
    def _column_candidate_types(
        self, linked: list[list[CellLinkage]], kept_rows: list[int], col_index: int
    ) -> dict[str, float]:
        """Score candidate types for one column (Eq. 7–8).

        Candidate types are entities found in the one-hop neighbourhood of the
        column's candidate entities.  Each candidate entity ``e`` contributes
        its overlapping score ``os_e`` to every type entity in ``N(e)``; types
        supported by entities from several rows therefore accumulate higher
        scores, which is the effect Eq. 8's cross-row sum is designed to
        achieve.  PERSON and DATE entities are excluded, as are non-type
        helper entities only when they never occur as types in the graph.
        """
        scores: dict[str, float] = {}
        rows_supporting: dict[str, set[int]] = {}
        for row_index in kept_rows:
            cell = linked[row_index][col_index]
            for entity_id, overlap_score in cell.candidate_entities.items():
                if overlap_score <= 0.0:
                    continue
                for neighbor_id in self._neighbors(entity_id):
                    neighbor = self.graph.entity(neighbor_id)
                    if neighbor.schema in (EntitySchema.PERSON, EntitySchema.DATE):
                        continue
                    scores[neighbor_id] = scores.get(neighbor_id, 0.0) + overlap_score
                    rows_supporting.setdefault(neighbor_id, set()).add(row_index)
        # Eq. 8 only counts support coming from *other* rows (r2 != r1): a type
        # seen from a single row therefore has no cross-row evidence and is
        # dropped unless nothing better exists.
        multi_row = {
            entity_id: score
            for entity_id, score in scores.items()
            if len(rows_supporting[entity_id]) > 1
        }
        return multi_row or scores

    def _feature_sequence(
        self, linked: list[list[CellLinkage]], kept_rows: list[int], col_index: int
    ) -> str:
        """Serialise the best-linked entity of the column and its neighbourhood (Eq. 9)."""
        best_entity: str | None = None
        best_score = 0.0
        for row_index in kept_rows:
            cell = linked[row_index][col_index]
            for link in cell.raw_links:
                if link.entity_id in cell.candidate_entities and link.score > best_score:
                    best_score = link.score
                    best_entity = link.entity_id
        if best_entity is None:
            return ""
        entity = self.graph.entity(best_entity)
        parts = [entity.label]
        for predicate, neighbor_id in self.graph.neighborhood_with_predicates(best_entity)[
            : self.config.max_feature_neighbors
        ]:
            neighbor = self.graph.entity(neighbor_id)
            parts.append(f"{predicate.replace('_', ' ')} {neighbor.label}")
        return " , ".join(parts)

    @staticmethod
    def _numeric_summary(column: Column) -> list[str]:
        """Mean, variance and average of a numeric column (paper Section III-A).

        The paper lists "the column's mean, variance, and average value"; the
        redundancy is reproduced on purpose so the serialised input matches.
        """
        values = []
        for cell in column.cells:
            try:
                values.append(float(cell.replace(",", "")))
            except ValueError:
                continue
        if not values:
            return ["0", "0", "0"]
        array = np.asarray(values)
        return [f"{array.mean():.2f}", f"{array.var():.2f}", f"{array.mean():.2f}"]

    # ------------------------------------------------------------------ #
    # end-to-end
    # ------------------------------------------------------------------ #
    def process_table(self, table: Table) -> ProcessedTable:
        """Run all three steps on ``table`` and return the processed result."""
        linked = self.link_table(table)
        self.apply_overlap_filter(linked)
        row_scores = self.row_linking_scores(linked)
        kept_rows = self.select_rows(table, row_scores)
        filtered = table.with_rows(kept_rows)

        columns: list[ColumnKGInfo] = []
        for col_index, column in enumerate(table.columns):
            is_numeric = column.is_numeric()
            info = ColumnKGInfo(
                column_index=col_index,
                label=column.label,
                is_numeric=is_numeric,
            )
            info.has_kg_links = any(
                linked[row_index][col_index].has_links for row_index in range(table.n_rows)
            )
            if is_numeric:
                info.numeric_summary = self._numeric_summary(column)
            elif self.config.use_candidate_types:
                type_scores = self._column_candidate_types(linked, kept_rows, col_index)
                ranked = sorted(type_scores.items(), key=lambda item: (-item[1], item[0]))
                top = ranked[: self.config.max_candidate_types]
                info.candidate_types = [self.graph.entity(eid).label for eid, _ in top]
                info.candidate_type_scores = {
                    self.graph.entity(eid).label: score for eid, score in top
                }
            if self.config.use_feature_sequence and not is_numeric:
                info.feature_sequence = self._feature_sequence(linked, kept_rows, col_index)
            columns.append(info)

        return ProcessedTable(
            original=table,
            filtered=filtered,
            columns=columns,
            row_scores=row_scores,
            kept_row_indices=kept_rows,
        )

    def process_corpus(self, tables) -> list[ProcessedTable]:
        """Process every table of an iterable (convenience for the trainers)."""
        return [self.process_table(table) for table in tables]

    # ------------------------------------------------------------------ #
    # statistics (Table III)
    # ------------------------------------------------------------------ #
    def link_statistics(self, processed: list[ProcessedTable]) -> dict[str, int]:
        """Corpus-level link statistics in the format of the paper's Table III."""
        numeric = 0
        non_numeric_without_fv = 0
        non_numeric_without_ct = 0
        total = 0
        for item in processed:
            for info in item.columns:
                total += 1
                if info.is_numeric:
                    numeric += 1
                    continue
                if not info.has_feature_sequence and not info.has_kg_links:
                    non_numeric_without_fv += 1
                if not info.has_candidate_types:
                    non_numeric_without_ct += 1
        return {
            "numeric_columns": numeric,
            "non_numeric_without_feature_vector": non_numeric_without_fv,
            "non_numeric_without_candidate_type": non_numeric_without_ct,
            "total_columns": total,
        }
