"""The KGLink method.

Part 1 (:mod:`repro.core.pipeline`) extracts candidate types, feature
sequences and a filtered top-k-row table from the knowledge graph.  Part 2
(:mod:`repro.core.model`, :mod:`repro.core.trainer`) serialises the processed
table, encodes it with a MiniBERT encoder and trains the multi-task objective
(column-type classification + column-type representation generation) with the
uncertainty-weighted adaptive loss.  :class:`repro.core.annotator.KGLinkAnnotator`
is the end-to-end public API.
"""

from repro.core.cache import CacheInfo, LRUCache
from repro.core.errors import (
    BreakerOpen,
    BundleCorrupted,
    DeadlineExceeded,
    ServiceClosed,
    ServingError,
    ShardUnavailable,
    WorkerCrashed,
)
from repro.core.pipeline import (
    ColumnKGInfo,
    KGCandidateExtractor,
    Part1Config,
    ProcessedTable,
)
from repro.core.serialization import SerializedTable, TableSerializer, SerializerConfig
from repro.core.model import KGLinkModel
from repro.core.trainer import KGLinkTrainer, TrainingConfig, TrainingHistory
from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.persistence import load_annotator, save_annotator

__all__ = [
    "save_annotator",
    "load_annotator",
    "CacheInfo",
    "LRUCache",
    "ServingError",
    "DeadlineExceeded",
    "WorkerCrashed",
    "BreakerOpen",
    "ShardUnavailable",
    "BundleCorrupted",
    "ServiceClosed",
    "Part1Config",
    "KGCandidateExtractor",
    "ProcessedTable",
    "ColumnKGInfo",
    "TableSerializer",
    "SerializerConfig",
    "SerializedTable",
    "KGLinkModel",
    "KGLinkTrainer",
    "TrainingConfig",
    "TrainingHistory",
    "KGLinkAnnotator",
    "KGLinkConfig",
]
