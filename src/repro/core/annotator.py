"""End-to-end KGLink annotator: the library's primary public API.

Typical usage::

    from repro.kg import build_default_kg
    from repro.data import SemTabGenerator, stratified_split
    from repro.core import KGLinkAnnotator, KGLinkConfig

    world = build_default_kg()
    corpus = SemTabGenerator(world).generate()
    splits = stratified_split(corpus)

    annotator = KGLinkAnnotator(world.graph, KGLinkConfig(epochs=3))
    annotator.fit(splits.train, splits.validation)
    result = annotator.evaluate(splits.test)
    print(result.accuracy, result.weighted_f1)

The configuration exposes every switch the paper ablates (candidate types,
feature vector, the representation-generation sub-task, the DeBERTa encoder,
the row filter and its size ``k``), so the experiment runners simply build
differently-configured annotators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace


from repro.core.cache import CacheInfo, LRUCache
from repro.core.model import KGLinkModel
from repro.core.pipeline import KGCandidateExtractor, Part1Config, ProcessedTable
from repro.core.serialization import SerializerConfig, TableSerializer
from repro.core.trainer import KGLinkTrainer, TrainingConfig, TrainingHistory
from repro.data.corpus import TableCorpus
from repro.data.metrics import EvaluationResult, evaluate_predictions
from repro.data.table import Table
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.plm.config import PLMConfig
from repro.plm.pretrain import MLMPretrainer, PretrainConfig
from repro.text.tokenizer import WordPieceTokenizer

__all__ = ["KGLinkConfig", "KGLinkAnnotator"]


@dataclass(frozen=True)
class KGLinkConfig:
    """All knobs of the KGLink pipeline in one place."""

    # Part 1 — knowledge-graph candidate extraction
    top_k_rows: int = 25
    max_candidate_types: int = 3
    max_entities_per_cell: int = 10
    row_filter: str = "linkage"
    # Component switches (Table II ablations)
    use_candidate_types: bool = True
    use_feature_vector: bool = True
    use_mask_task: bool = True
    use_deberta: bool = False
    # Encoder
    hidden_size: int = 64
    num_layers: int = 2
    num_heads: int = 4
    intermediate_size: int = 128
    dropout: float = 0.1
    vocab_size: int = 3000
    max_position_embeddings: int = 320
    pretrain_steps: int = 40
    # Serialisation budgets
    max_tokens_per_column: int = 28
    max_columns: int = 8
    max_feature_tokens: int = 20
    # Part-1 processed-table cache (LRU; <= 0 disables caching)
    processed_cache_size: int = 4096
    # Training
    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 3e-4
    weight_decay: float = 0.01
    temperature: float = 2.0
    # Shuffle within length buckets per epoch so training batches pad to
    # similar lengths; off by default to keep seeded runs bitwise-stable.
    length_bucketed_training: bool = False
    early_stopping_patience: int = 3
    fixed_log_sigma0_sq: float | None = None
    fixed_log_sigma1_sq: float | None = None
    seed: int = 0

    # ------------------------------------------------------------------ #
    def part1_config(self) -> Part1Config:
        return Part1Config(
            top_k_rows=self.top_k_rows,
            max_candidate_types=self.max_candidate_types,
            max_entities_per_cell=self.max_entities_per_cell,
            row_filter=self.row_filter,
            use_candidate_types=self.use_candidate_types,
            use_feature_sequence=self.use_feature_vector,
        )

    def plm_config(self, vocab_size: int | None = None) -> PLMConfig:
        return PLMConfig(
            vocab_size=vocab_size or self.vocab_size,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            intermediate_size=self.intermediate_size,
            max_position_embeddings=self.max_position_embeddings,
            dropout=self.dropout,
            relative_attention=self.use_deberta,
            seed=self.seed,
        )

    def serializer_config(self) -> SerializerConfig:
        return SerializerConfig(
            max_tokens_per_column=self.max_tokens_per_column,
            max_columns=self.max_columns,
            max_feature_tokens=self.max_feature_tokens,
            max_sequence_length=self.max_position_embeddings,
        )

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
            temperature=self.temperature,
            length_bucketing=self.length_bucketed_training,
            use_mask_task=self.use_mask_task,
            use_feature_vector=self.use_feature_vector,
            use_candidate_types=self.use_candidate_types,
            early_stopping_patience=self.early_stopping_patience,
            fixed_log_sigma0_sq=self.fixed_log_sigma0_sq,
            fixed_log_sigma1_sq=self.fixed_log_sigma1_sq,
            seed=self.seed,
        )

    def without_kg(self) -> KGLinkConfig:
        """The ``KGLink w/o ct`` ablation: no KG information at all."""
        return replace(self, use_candidate_types=False, use_feature_vector=False)


class KGLinkAnnotator:
    """Train and apply KGLink on a table corpus.

    Parameters
    ----------
    graph:
        The knowledge graph to link against.
    config:
        Pipeline configuration; see :class:`KGLinkConfig`.
    linker:
        Optional pre-built entity linker (lets several annotators share one
        BM25 index).
    tokenizer:
        Optional pre-trained tokenizer (lets several annotators share one
        vocabulary); when omitted a tokenizer is trained during :meth:`fit`.
    """

    name = "KGLink"

    def __init__(
        self,
        graph: KnowledgeGraph,
        config: KGLinkConfig | None = None,
        linker: EntityLinker | None = None,
        tokenizer: WordPieceTokenizer | None = None,
    ):
        self.graph = graph
        self.config = config or KGLinkConfig()
        self.linker = linker or EntityLinker(
            graph, LinkerConfig(max_candidates=self.config.max_entities_per_cell)
        )
        self.extractor = KGCandidateExtractor(graph, self.config.part1_config(), linker=self.linker)
        self.tokenizer = tokenizer
        self.model: KGLinkModel | None = None
        self.trainer: KGLinkTrainer | None = None
        self.serializer: TableSerializer | None = None
        self.label_vocabulary: list[str] = []
        self.history: TrainingHistory | None = None
        self.fit_seconds: float = 0.0
        self.part1_seconds: float = 0.0
        self.inference_seconds: float = 0.0
        # Bounded Part-1 cache (the serving layer uses the same LRU class), so
        # a long-lived annotator no longer grows without limit.
        self._processed_cache: LRUCache[str, ProcessedTable] = LRUCache(
            maxsize=self.config.processed_cache_size
        )

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _process(self, tables: list[Table]) -> list[ProcessedTable]:
        processed = []
        for table in tables:
            cached = self._processed_cache.get(table.table_id)
            if cached is None:
                cached = self.extractor.process_table(table)
                self._processed_cache.put(table.table_id, cached)
            processed.append(cached)
        return processed

    def processed_cache_info(self) -> CacheInfo:
        """Hit/miss/eviction counters of the Part-1 processed-table cache."""
        return self._processed_cache.cache_info()

    def _corpus_texts(self, corpus: TableCorpus) -> list[str]:
        """Texts used to train the tokenizer and pre-train the encoder."""
        texts: list[str] = []
        for entity in self.graph.entities():
            texts.append(entity.document_text())
        for table in corpus.tables:
            for column in table.columns:
                cells = " ".join(cell for cell in column.cells[:10] if cell)
                if column.label:
                    cells = f"{column.label} {cells}"
                if cells.strip():
                    texts.append(cells)
        return texts

    def _build_tokenizer_and_encoder(self, corpus: TableCorpus):
        texts = self._corpus_texts(corpus)
        pretrainer = MLMPretrainer(
            self.config.plm_config(),
            PretrainConfig(steps=self.config.pretrain_steps, seed=self.config.seed + 17),
        )
        tokenizer, encoder, _ = pretrainer.pretrain(texts, tokenizer=self.tokenizer)
        self.tokenizer = tokenizer
        return encoder

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def fit(self, train_corpus: TableCorpus, validation_corpus: TableCorpus | None = None
            ) -> TrainingHistory:
        """Run Part 1 over the corpora, build the model and fine-tune it."""
        start = time.perf_counter()
        part1_start = time.perf_counter()
        processed_train = self._process(train_corpus.tables)
        processed_valid = (
            self._process(validation_corpus.tables) if validation_corpus is not None else []
        )
        self.part1_seconds = time.perf_counter() - part1_start

        self.label_vocabulary = list(train_corpus.label_vocabulary)
        encoder = self._build_tokenizer_and_encoder(train_corpus)
        self.serializer = TableSerializer(self.tokenizer, self.config.serializer_config())
        self.model = KGLinkModel(
            encoder,
            num_labels=len(self.label_vocabulary),
            use_feature_vector=self.config.use_feature_vector,
            seed=self.config.seed,
        )
        self.trainer = KGLinkTrainer(
            self.model, self.serializer, self.label_vocabulary, self.config.training_config()
        )
        train_examples = self.trainer.prepare_examples(processed_train)
        valid_examples = self.trainer.prepare_examples(processed_valid) if processed_valid else None
        self.history = self.trainer.train(train_examples, valid_examples)
        self.fit_seconds = time.perf_counter() - start
        return self.history

    def _require_fitted(self) -> KGLinkTrainer:
        if self.trainer is None or self.model is None or self.serializer is None:
            raise RuntimeError("KGLinkAnnotator must be fitted before prediction")
        return self.trainer

    def annotate(self, table: Table) -> list[str]:
        """Predict a semantic type for every column of one table."""
        trainer = self._require_fitted()
        processed = self._process([table])
        examples = trainer.prepare_examples(processed, with_ground_truth=False)
        return trainer.predict(examples)[0]

    def predict_corpus(self, corpus: TableCorpus) -> tuple[list[str], list[str]]:
        """Return aligned ``(y_true, y_pred)`` over all labelled columns."""
        trainer = self._require_fitted()
        processed = self._process(corpus.tables)
        examples = trainer.prepare_examples(processed, with_ground_truth=False)
        predictions = trainer.predict(examples)
        y_true: list[str] = []
        y_pred: list[str] = []
        for example, predicted in zip(examples, predictions, strict=True):
            for truth, pred in zip(example.true_labels, predicted, strict=True):
                if truth is None:
                    continue
                y_true.append(truth)
                y_pred.append(pred)
        return y_true, y_pred

    def evaluate(self, corpus: TableCorpus, include_report: bool = False) -> EvaluationResult:
        """Evaluate accuracy and weighted F1 on a labelled corpus."""
        start = time.perf_counter()
        y_true, y_pred = self.predict_corpus(corpus)
        self.inference_seconds = time.perf_counter() - start
        return evaluate_predictions(y_true, y_pred, include_report=include_report)

    def link_statistics(self, corpus: TableCorpus) -> dict[str, int]:
        """Part-1 link statistics for ``corpus`` (the paper's Table III)."""
        processed = self._process(corpus.tables)
        return self.extractor.link_statistics(processed)

    def close(self) -> None:
        """Shut down worker pools behind a sharded linker this annotator uses.

        Delegates to :meth:`EntityLinker.close`, which only tears down a
        shard executor the linker itself created (``LinkerConfig.num_shards
        > 1``) — injected indexes stay up.  Needed when loading format-3
        bundles with a process shard plan through the legacy
        ``load_annotator`` shim, which otherwise leaks the pool.
        """
        self.linker.close()

    def __enter__(self) -> KGLinkAnnotator:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def into_service(self, max_batch: int = 16, cache_size: int = 1024,
                     processes: int = 0, executor=None):
        """Export this fitted annotator as a serving-shaped front door.

        Returns a :class:`~repro.serve.service.AnnotationService` built on an
        in-memory :class:`~repro.serve.bundle.ServiceBundle`: the compiled
        retrieval index, a graph snapshot, the tokenizer, the label
        vocabulary and the model weights — everything ``bundle.save()``
        would persist.  ``processes``/``executor`` configure the service's
        Part-1 prepare stage (see :class:`AnnotationService`).  The annotator
        keeps working as the training facade.
        """
        from repro.serve.bundle import ServiceBundle
        from repro.serve.service import AnnotationService

        return AnnotationService(
            ServiceBundle.from_annotator(self), max_batch=max_batch,
            cache_size=cache_size, processes=processes, executor=executor,
        )
