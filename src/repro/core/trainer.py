"""Training loop of KGLink's deep-learning component (Part 2, steps 2–3).

The trainer consumes tables that have already been processed by Part 1
(:class:`~repro.core.pipeline.KGCandidateExtractor`) and serialised by the
:class:`~repro.core.serialization.TableSerializer`, and optimises the
multi-task objective:

* cross entropy on the per-column classification logits (Eq. 16);
* the DMLM loss between the ``[MASK]`` token's vocabulary-space projection of
  the masked table and the label token's projection of the ground-truth table
  (Eq. 13–14);
* combined with trainable uncertainty weights (Eq. 17) or, for the Figure 8(a)
  sensitivity sweep, with fixed weights.

Training uses AdamW (eps 1e-6), an initial learning rate of 3e-5 linearly
decayed without warm-up, and early stopping on validation accuracy — all as
described in the paper's experimental settings (scaled-down epochs/batches are
chosen by the experiment profiles).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import KGLinkModel
from repro.core.pipeline import ProcessedTable
from repro.core.serialization import SerializedTable, TableSerializer
from repro.data.metrics import EvaluationResult, evaluate_predictions
from repro.nn import functional as F
from repro.nn.losses import DMLMLoss, FixedWeightLoss, UncertaintyWeightedLoss
from repro.nn.optim import AdamW, LinearDecaySchedule, clip_grad_norm
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["TrainingConfig", "TrainingHistory", "PreparedExample", "KGLinkTrainer"]

IGNORE_INDEX = -100


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the fine-tuning stage."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 3e-5
    weight_decay: float = 0.01
    max_grad_norm: float = 1.0
    temperature: float = 2.0
    # Length-bucketed training batches: each epoch's shuffle happens within
    # serialized-length buckets (and the batch order is re-shuffled), so
    # batches pad to similar lengths.  Off by default: the plain permutation
    # keeps seeded training trajectories bitwise-stable.
    length_bucketing: bool = False
    use_mask_task: bool = True
    use_feature_vector: bool = True
    use_candidate_types: bool = True
    early_stopping_patience: int = 3
    fixed_log_sigma0_sq: float | None = None
    fixed_log_sigma1_sq: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 0 or self.batch_size <= 0:
            raise ValueError("epochs must be >= 0 and batch_size positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class TrainingHistory:
    """Curves recorded during training (used by Figures 8 and 9)."""

    step_losses: list[float] = field(default_factory=list)
    classification_losses: list[float] = field(default_factory=list)
    dmlm_losses: list[float] = field(default_factory=list)
    sigma0_trajectory: list[float] = field(default_factory=list)
    sigma1_trajectory: list[float] = field(default_factory=list)
    validation_accuracy: list[float] = field(default_factory=list)
    epochs_completed: int = 0
    training_seconds: float = 0.0
    stopped_early: bool = False


@dataclass
class PreparedExample:
    """Everything the trainer needs for one table."""

    table_id: str
    masked: SerializedTable
    ground_truth: SerializedTable | None
    label_indices: np.ndarray
    true_labels: list[str | None]


class KGLinkTrainer:
    """Multi-task fine-tuning and prediction for KGLink."""

    def __init__(
        self,
        model: KGLinkModel,
        serializer: TableSerializer,
        label_vocabulary: list[str],
        config: TrainingConfig | None = None,
    ):
        self.model = model
        self.serializer = serializer
        self.config = config or TrainingConfig()
        self.label_vocabulary = list(label_vocabulary)
        self._label_to_index = {label: i for i, label in enumerate(self.label_vocabulary)}
        self.rng = np.random.default_rng(self.config.seed)

        self.dmlm_loss = DMLMLoss(temperature=self.config.temperature)
        if self.config.fixed_log_sigma0_sq is not None or self.config.fixed_log_sigma1_sq is not None:
            self.combined_loss = FixedWeightLoss(
                self.config.fixed_log_sigma0_sq or 0.0,
                self.config.fixed_log_sigma1_sq or 0.0,
            )
        else:
            self.combined_loss = UncertaintyWeightedLoss()
        self.history = TrainingHistory()
        # Padding statistics of the most recent predict() call (bucket sizes,
        # padded vs useful token counts); None until predict() runs.
        self.last_bucket_stats: dict | None = None

    # ------------------------------------------------------------------ #
    # example preparation
    # ------------------------------------------------------------------ #
    def prepare_example(self, processed: ProcessedTable, with_ground_truth: bool | None = None
                        ) -> PreparedExample:
        """Serialise one processed table into trainer inputs."""
        if with_ground_truth is None:
            with_ground_truth = self.config.use_mask_task
        masked = self.serializer.serialize(
            processed,
            ground_truth=False,
            use_mask_token=self.config.use_mask_task,
            use_candidate_types=self.config.use_candidate_types,
        )
        ground_truth = None
        if with_ground_truth and self.config.use_mask_task:
            ground_truth = self.serializer.serialize(
                processed,
                ground_truth=True,
                use_mask_token=True,
                use_candidate_types=self.config.use_candidate_types,
            )
        labels = np.asarray(
            [
                self._label_to_index.get(label, IGNORE_INDEX) if label is not None else IGNORE_INDEX
                for label in masked.column_labels
            ],
            dtype=np.int64,
        )
        return PreparedExample(
            table_id=processed.original.table_id,
            masked=masked,
            ground_truth=ground_truth,
            label_indices=labels,
            true_labels=list(masked.column_labels),
        )

    def prepare_examples(self, processed_tables: list[ProcessedTable],
                         with_ground_truth: bool | None = None) -> list[PreparedExample]:
        """Serialise many processed tables."""
        return [self.prepare_example(p, with_ground_truth) for p in processed_tables]

    # ------------------------------------------------------------------ #
    # batching helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pad_batch(serialized: list[SerializedTable]) -> tuple[np.ndarray, np.ndarray]:
        max_len = max(item.sequence_length for item in serialized)
        token_ids = np.zeros((len(serialized), max_len), dtype=np.int64)
        attention = np.zeros((len(serialized), max_len), dtype=bool)
        for row, item in enumerate(serialized):
            length = item.sequence_length
            token_ids[row, :length] = item.token_ids
            attention[row, :length] = item.attention_mask
        return token_ids, attention

    def _flatten_columns(self, batch: list[PreparedExample]):
        """Flatten per-table column metadata into parallel arrays."""
        batch_indices: list[int] = []
        cls_positions: list[int] = []
        labels: list[int] = []
        mask_batch_indices: list[int] = []
        mask_positions: list[int] = []
        gt_positions: list[int] = []
        gt_batch_indices: list[int] = []
        feature_blocks: list[np.ndarray] = []
        feature_attention_blocks: list[np.ndarray] = []
        gt_table_count = 0
        for table_index, example in enumerate(batch):
            masked = example.masked
            for col, cls_pos in enumerate(masked.cls_positions):
                batch_indices.append(table_index)
                cls_positions.append(cls_pos)
                labels.append(int(example.label_indices[col]))
            feature_blocks.append(masked.feature_token_ids)
            feature_attention_blocks.append(masked.feature_attention_mask)
            if example.ground_truth is not None:
                for col, mask_pos in enumerate(masked.mask_positions):
                    gt_pos = example.ground_truth.label_positions[col]
                    if mask_pos >= 0 and gt_pos >= 0 and example.label_indices[col] != IGNORE_INDEX:
                        mask_batch_indices.append(table_index)
                        mask_positions.append(mask_pos)
                        gt_positions.append(gt_pos)
                        # Row of this table in the (denser) ground-truth batch.
                        gt_batch_indices.append(gt_table_count)
                gt_table_count += 1
        features = np.concatenate(feature_blocks, axis=0) if feature_blocks else None
        feature_attention = (
            np.concatenate(feature_attention_blocks, axis=0) if feature_attention_blocks else None
        )
        return {
            "batch_indices": np.asarray(batch_indices, dtype=np.int64),
            "cls_positions": np.asarray(cls_positions, dtype=np.int64),
            "labels": np.asarray(labels, dtype=np.int64),
            "mask_batch_indices": np.asarray(mask_batch_indices, dtype=np.int64),
            "mask_positions": np.asarray(mask_positions, dtype=np.int64),
            "gt_positions": np.asarray(gt_positions, dtype=np.int64),
            "gt_batch_indices": np.asarray(gt_batch_indices, dtype=np.int64),
            "features": features,
            "feature_attention": feature_attention,
        }

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    #: Rows per bucketed feature-encoder call (inference path).
    FEATURE_BUCKET_SIZE = 64

    def _feature_vectors(self, features: np.ndarray, feature_attention: np.ndarray):
        """Per-column feature vectors, length-bucketed on the inference path.

        The serializer pads every column's feature block to the global
        ``max_feature_tokens`` width; most feature sequences are much
        shorter.  Under ``no_grad`` the column rows are sorted by true length
        and encoded in chunks trimmed to each chunk's own maximum, then
        restored to the original order — the encoder attention-masks padding,
        so the vectors match the single full-width call up to float32
        blocking noise (predictions are invariant).  Training keeps that
        single call so the dropout draws (and thus seeded training
        trajectories) are unchanged.
        """
        if (
            self.model.training
            or is_grad_enabled()
            or features.shape[0] <= 1
        ):
            return self.model.feature_vectors(features, feature_attention)
        lengths = feature_attention.sum(axis=1).astype(np.int64)
        order = np.argsort(lengths, kind="stable")
        chunks: list[np.ndarray] = []
        for start in range(0, len(order), self.FEATURE_BUCKET_SIZE):
            idx = order[start : start + self.FEATURE_BUCKET_SIZE]
            width = max(int(lengths[idx].max()), 1)
            out = self.model.feature_vectors(
                features[idx, :width], feature_attention[idx, :width]
            )
            chunks.append(out.data)
        stacked = np.concatenate(chunks, axis=0)
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order))
        return Tensor(stacked[inverse])

    def _classification_forward(self, batch: list[PreparedExample], flat: dict):
        token_ids, attention = self._pad_batch([example.masked for example in batch])
        hidden = self.model.encode(token_ids, attention)
        cls_vectors = self.model.gather_positions(
            hidden, flat["batch_indices"], flat["cls_positions"]
        )
        feature_vectors = None
        if self.config.use_feature_vector and flat["features"] is not None:
            feature_vectors = self._feature_vectors(
                flat["features"], flat["feature_attention"]
            )
        combined = self.model.compose(cls_vectors, feature_vectors)
        logits = self.model.classification_logits(combined)
        return hidden, logits

    def _dmlm_forward(self, batch: list[PreparedExample], flat: dict, hidden):
        """Student/teacher vocabulary logits for the representation-generation task."""
        if flat["mask_positions"].size == 0:
            return None
        student_vectors = self.model.gather_positions(
            hidden, flat["mask_batch_indices"], flat["mask_positions"]
        )
        student_logits = self.model.vocabulary_logits(student_vectors)

        with no_grad():
            gt_examples = [example.ground_truth for example in batch if example.ground_truth]
            token_ids, attention = self._pad_batch(gt_examples)
            gt_hidden = self.model.encode(token_ids, attention)
            teacher_vectors = self.model.gather_positions(
                gt_hidden, flat["gt_batch_indices"], flat["gt_positions"]
            )
            teacher_logits = self.model.vocabulary_logits(teacher_vectors).data
        return self.dmlm_loss(student_logits, teacher_logits)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def _bucketed_training_order(self, shuffled: np.ndarray,
                                 lengths: np.ndarray) -> np.ndarray:
        """Length-bucketed epoch order derived from this epoch's shuffle.

        The epoch's random permutation supplies the randomness twice over:
        the stable sort by length keeps the permutation's order among
        equal-length examples (shuffle *within* buckets), and a second draw
        shuffles the batch order so the model does not always see short
        tables first.  Batches therefore contain examples of similar
        serialized length and pad far less than random batches, while every
        epoch still visits a different batching.
        """
        by_length = shuffled[np.argsort(lengths[shuffled], kind="stable")]
        batch_size = self.config.batch_size
        batches = [
            by_length[start : start + batch_size]
            for start in range(0, len(by_length), batch_size)
        ]
        batch_order = self.rng.permutation(len(batches))
        return np.concatenate([batches[i] for i in batch_order])

    def train(
        self,
        train_examples: list[PreparedExample],
        validation_examples: list[PreparedExample] | None = None,
    ) -> TrainingHistory:
        """Fine-tune the model; returns the recorded history."""
        if not train_examples:
            raise ValueError("train_examples must not be empty")
        start_time = time.perf_counter()
        parameters = self.model.parameters() + self.combined_loss.parameters()
        optimizer = AdamW(
            parameters,
            lr=self.config.learning_rate,
            eps=1e-6,
            weight_decay=self.config.weight_decay,
        )
        steps_per_epoch = max(1, int(np.ceil(len(train_examples) / self.config.batch_size)))
        schedule = LinearDecaySchedule(optimizer, total_steps=self.config.epochs * steps_per_epoch)

        best_accuracy = -1.0
        best_state = None
        patience_left = self.config.early_stopping_patience

        lengths = np.asarray(
            [example.masked.sequence_length for example in train_examples]
        )
        for epoch in range(self.config.epochs):
            self.model.train()
            order = self.rng.permutation(len(train_examples))
            if self.config.length_bucketing:
                order = self._bucketed_training_order(order, lengths)
            for start in range(0, len(train_examples), self.config.batch_size):
                batch = [train_examples[i] for i in order[start : start + self.config.batch_size]]
                flat = self._flatten_columns(batch)
                hidden, logits = self._classification_forward(batch, flat)
                classification_loss = F.cross_entropy(
                    logits, flat["labels"], ignore_index=IGNORE_INDEX
                )
                dmlm_loss = None
                if self.config.use_mask_task:
                    dmlm_loss = self._dmlm_forward(batch, flat, hidden)
                if dmlm_loss is not None:
                    total_loss = self.combined_loss(dmlm_loss, classification_loss)
                    self.history.dmlm_losses.append(float(dmlm_loss.data))
                else:
                    total_loss = classification_loss
                    self.history.dmlm_losses.append(0.0)

                optimizer.zero_grad()
                total_loss.backward()
                clip_grad_norm(parameters, self.config.max_grad_norm)
                optimizer.step()
                schedule.step()

                self.history.step_losses.append(float(total_loss.data))
                self.history.classification_losses.append(float(classification_loss.data))
                sigma0, sigma1 = self.combined_loss.sigma_values
                self.history.sigma0_trajectory.append(float(sigma0))
                self.history.sigma1_trajectory.append(float(sigma1))

            self.history.epochs_completed = epoch + 1
            if validation_examples:
                result = self.evaluate(validation_examples)
                self.history.validation_accuracy.append(result.accuracy)
                if result.accuracy > best_accuracy + 1e-9:
                    best_accuracy = result.accuracy
                    best_state = self.model.state_dict()
                    patience_left = self.config.early_stopping_patience
                else:
                    patience_left -= 1
                    if patience_left <= 0:
                        self.history.stopped_early = True
                        break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.history.training_seconds = time.perf_counter() - start_time
        return self.history

    # ------------------------------------------------------------------ #
    # prediction and evaluation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _padded_tokens(lengths: np.ndarray, order: np.ndarray, batch_size: int) -> int:
        """Total token slots a batched forward pays under ``order``."""
        total = 0
        for start in range(0, len(order), batch_size):
            chunk = lengths[order[start : start + batch_size]]
            total += int(chunk.max()) * len(chunk)
        return total

    def predict(self, examples: list[PreparedExample], batch_size: int | None = None,
                length_bucketing: bool = True) -> list[list[str]]:
        """Predicted labels for every column of every example (table order preserved).

        With ``length_bucketing`` (the default) examples are batched in order
        of serialised length, so short tables are not padded to the longest
        table of an arbitrary batch; results are returned in the original
        table order either way, and padded positions are attention-masked, so
        the predictions are identical with bucketing on or off.  Padding
        statistics of the last call are exposed as :attr:`last_bucket_stats`.
        """
        if not examples:
            self.last_bucket_stats = None
            return []
        batch_size = batch_size or self.config.batch_size
        lengths = np.asarray([example.masked.sequence_length for example in examples])
        if length_bucketing:
            order = np.argsort(lengths, kind="stable")
        else:
            order = np.arange(len(examples))
        self.last_bucket_stats = {
            "n_examples": len(examples),
            "n_batches": int(np.ceil(len(examples) / batch_size)),
            "length_bucketing": bool(length_bucketing),
            "useful_tokens": int(lengths.sum()),
            "padded_tokens": self._padded_tokens(lengths, order, batch_size),
            "padded_tokens_unbucketed": self._padded_tokens(
                lengths, np.arange(len(examples)), batch_size
            ),
        }
        self.model.eval()
        predictions: list[list[str] | None] = [None] * len(examples)
        with no_grad():
            for start in range(0, len(examples), batch_size):
                chunk = order[start : start + batch_size]
                batch = [examples[i] for i in chunk]
                flat = self._flatten_columns(batch)
                _, logits = self._classification_forward(batch, flat)
                indices = self.model.predict_labels(logits)
                cursor = 0
                for example_index, example in zip(chunk, batch, strict=True):
                    n_cols = example.masked.n_columns
                    predicted = [
                        self.label_vocabulary[int(index)]
                        for index in indices[cursor : cursor + n_cols]
                    ]
                    cursor += n_cols
                    predictions[int(example_index)] = predicted
        return predictions

    def evaluate(self, examples: list[PreparedExample]) -> EvaluationResult:
        """Accuracy / weighted F1 over all labelled columns of ``examples``."""
        predictions = self.predict(examples)
        y_true: list[str] = []
        y_pred: list[str] = []
        for example, predicted in zip(examples, predictions, strict=True):
            for truth, pred in zip(example.true_labels, predicted, strict=True):
                if truth is None or truth not in self._label_to_index:
                    continue
                y_true.append(truth)
                y_pred.append(pred)
        return evaluate_predictions(y_true, y_pred)
