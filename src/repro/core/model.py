"""The KGLink deep-learning model (Part 2, steps 2–3).

``KGLinkModel`` wraps a MiniBERT/MiniDeBERTa encoder and adds

* a classification head over the per-column ``[CLS]`` representations
  composed with the per-column *feature vectors* (Eq. 15–16);
* the vocabulary-space projection used by the column-type representation
  generation sub-task (Eq. 13–14) — the encoder's MLM head plays the role of
  ``W_o``.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.plm.model import MiniBERT

__all__ = ["KGLinkModel"]


class KGLinkModel(nn.Module):
    """Encoder + composition + classification heads of KGLink.

    Parameters
    ----------
    encoder:
        A MiniBERT (or MiniDeBERTa) encoder, usually MLM pre-trained.
    num_labels:
        Size of the dataset's column-type label set ``|L|``.
    use_feature_vector:
        When false, the composition function ``phi`` reduces to the identity on
        the ``[CLS]`` vector (the ``KGLink w/o fv`` ablation).
    """

    def __init__(self, encoder: MiniBERT, num_labels: int, use_feature_vector: bool = True,
                 seed: int = 0):
        super().__init__()
        if num_labels <= 0:
            raise ValueError("num_labels must be positive")
        rng = np.random.default_rng(seed)
        hidden = encoder.hidden_size
        self.encoder = encoder
        self.num_labels = num_labels
        self.use_feature_vector = use_feature_vector
        self.feature_projection = nn.Linear(hidden, hidden, rng=rng)
        self.composition_norm = nn.LayerNorm(hidden)
        self.classifier = nn.Linear(hidden, num_labels, rng=rng)

    # ------------------------------------------------------------------ #
    def encode(self, token_ids: np.ndarray, attention_mask: np.ndarray) -> Tensor:
        """Contextual hidden states for a batch of serialised tables."""
        return self.encoder(token_ids, attention_mask=attention_mask)

    @staticmethod
    def gather_positions(hidden: Tensor, batch_indices: np.ndarray,
                         positions: np.ndarray) -> Tensor:
        """Gather ``hidden[b, p, :]`` for parallel arrays of ``b`` and ``p``."""
        return hidden[np.asarray(batch_indices, dtype=np.int64),
                      np.asarray(positions, dtype=np.int64), :]

    def feature_vectors(self, feature_token_ids: np.ndarray,
                        feature_attention: np.ndarray) -> Tensor:
        """Encode the per-column feature sequences and pool their first token."""
        hidden = self.encoder(feature_token_ids, attention_mask=feature_attention)
        return hidden[:, 0, :]

    def compose(self, cls_vectors: Tensor, feature_vectors: Tensor | None) -> Tensor:
        """The composition function ``phi(Y_cls, Y_fv)`` of Eq. 15."""
        if feature_vectors is None or not self.use_feature_vector:
            return cls_vectors
        return self.composition_norm(cls_vectors + self.feature_projection(feature_vectors))

    def classification_logits(self, column_vectors: Tensor) -> Tensor:
        """Project composed column vectors to the label space (Eq. 16's ``Y'_col``)."""
        return self.classifier(column_vectors)

    def vocabulary_logits(self, vectors: Tensor) -> Tensor:
        """Project vectors to vocabulary space through the encoder's MLM head (Eq. 14)."""
        return self.encoder.vocabulary_logits(vectors)

    # ------------------------------------------------------------------ #
    def predict_labels(self, logits: Tensor) -> np.ndarray:
        """Arg-max label indices from classification logits."""
        return np.argmax(logits.data, axis=-1)

    def predict_probabilities(self, logits: Tensor) -> np.ndarray:
        """Softmax probabilities from classification logits."""
        return F.softmax(logits, axis=-1).data
