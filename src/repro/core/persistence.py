"""Deprecated: saving and loading fitted annotators (use :mod:`repro.serve`).

``save_annotator``/``load_annotator`` predate the serving-first API; they are
kept as thin shims over :class:`~repro.serve.bundle.ServiceBundle` so
existing call sites keep working:

* :func:`save_annotator` writes a full service bundle (manifest, weights,
  compiled retrieval index, graph snapshot);
* :func:`load_annotator` reads either a modern bundle or a legacy
  format-1 directory, and reconstructs a :class:`KGLinkAnnotator` against a
  caller-supplied graph.  For modern bundles the retrieval index is restored
  from its compiled arrays instead of being rebuilt from the graph — the
  rebuild-on-every-load behaviour of the legacy format is gone.

New code that only needs to *serve* predictions should use
:meth:`~repro.serve.service.AnnotationService.load`, which needs no graph at
all.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.model import KGLinkModel
from repro.core.serialization import TableSerializer
from repro.core.trainer import KGLinkTrainer
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker
from repro.nn.serialization import load_state_dict
from repro.plm.model import create_encoder

__all__ = ["save_annotator", "load_annotator"]

_MANIFEST = "manifest.json"
_WEIGHTS = "model.npz"
_LEGACY_FORMAT = 1


def save_annotator(annotator: KGLinkAnnotator, directory: str | Path) -> Path:
    """Deprecated shim: persist ``annotator`` as a service bundle.

    Prefer ``annotator.into_service().save(directory)`` (or
    :meth:`~repro.serve.bundle.ServiceBundle.from_annotator` directly).
    """
    from repro.serve.bundle import ServiceBundle

    warnings.warn(
        "save_annotator is deprecated; use ServiceBundle.from_annotator(...).save(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    if annotator.model is None or annotator.tokenizer is None:
        raise RuntimeError("only fitted annotators can be saved")
    return ServiceBundle.from_annotator(annotator).save(directory)


def load_annotator(directory: str | Path, graph: KnowledgeGraph,
                   linker: EntityLinker | None = None) -> KGLinkAnnotator:
    """Deprecated shim: reconstruct a fitted annotator from ``directory``.

    Prefer :meth:`~repro.serve.service.AnnotationService.load`, which serves
    from the bundle alone.  This shim exists for callers that want the
    training facade back against a live ``graph`` — e.g. to keep fitting.
    Modern bundles restore the compiled retrieval index instead of
    re-indexing the graph; legacy format-1 directories (no bundled index)
    fall back to the old rebuild.
    """
    from repro.serve.bundle import (
        SUPPORTED_BUNDLE_FORMATS,
        ServiceBundle,
        tokenizer_from_tokens,
    )

    warnings.warn(
        "load_annotator is deprecated; use AnnotationService.load for serving "
        "or ServiceBundle.load for the raw components",
        DeprecationWarning,
        stacklevel=2,
    )
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    version = manifest.get("format_version")

    if version in SUPPORTED_BUNDLE_FORMATS:
        bundle = ServiceBundle.load(directory)
        if linker is None:
            linker = EntityLinker(graph, bundle.linker_config, index=bundle.backend)
        annotator = KGLinkAnnotator(graph, bundle.config, linker=linker,
                                    tokenizer=bundle.tokenizer)
        annotator.label_vocabulary = list(bundle.label_vocabulary)
        annotator.model = bundle.model
        annotator.model.eval()
        annotator.serializer = TableSerializer(
            bundle.tokenizer, bundle.config.serializer_config()
        )
        annotator.trainer = KGLinkTrainer(
            annotator.model, annotator.serializer, annotator.label_vocabulary,
            bundle.config.training_config(),
        )
        return annotator

    if version != _LEGACY_FORMAT:
        raise ValueError(f"unsupported annotator format {version!r}")

    # Legacy format 1: no bundled index or snapshot; rebuild from the graph.
    config = KGLinkConfig(**manifest["config"])
    annotator = KGLinkAnnotator(graph, config, linker=linker)
    annotator.tokenizer = tokenizer_from_tokens(manifest["tokenizer_tokens"])
    encoder = create_encoder(config.plm_config(vocab_size=annotator.tokenizer.vocab_size))
    annotator.label_vocabulary = list(manifest["label_vocabulary"])
    annotator.model = KGLinkModel(
        encoder,
        num_labels=len(annotator.label_vocabulary),
        use_feature_vector=config.use_feature_vector,
        seed=config.seed,
    )
    annotator.model.load_state_dict(load_state_dict(directory / _WEIGHTS))
    annotator.model.eval()
    annotator.serializer = TableSerializer(annotator.tokenizer, config.serializer_config())
    annotator.trainer = KGLinkTrainer(
        annotator.model, annotator.serializer, annotator.label_vocabulary,
        config.training_config(),
    )
    return annotator
