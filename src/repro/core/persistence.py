"""Saving and loading fitted KGLink annotators.

A fitted :class:`~repro.core.annotator.KGLinkAnnotator` consists of

* the pipeline configuration (:class:`~repro.core.annotator.KGLinkConfig`),
* the label vocabulary of the dataset it was trained on,
* the learned tokenizer vocabulary, and
* the model weights (encoder + heads).

``save_annotator`` writes all of these into a directory;``load_annotator``
reconstructs an annotator against a knowledge graph (the graph itself is not
serialised — it is a substrate the caller already has — but its identity is
checked loosely through the entity count recorded in the manifest).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.model import KGLinkModel
from repro.core.serialization import TableSerializer
from repro.core.trainer import KGLinkTrainer
from repro.kg.graph import KnowledgeGraph
from repro.kg.linker import EntityLinker
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.plm.model import create_encoder
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import Vocabulary

__all__ = ["save_annotator", "load_annotator"]

_MANIFEST = "manifest.json"
_WEIGHTS = "model.npz"


def save_annotator(annotator: KGLinkAnnotator, directory: str | Path) -> Path:
    """Persist a fitted annotator to ``directory``; returns the directory path."""
    if annotator.model is None or annotator.tokenizer is None:
        raise RuntimeError("only fitted annotators can be saved")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest = {
        "format_version": 1,
        "config": dataclasses.asdict(annotator.config),
        "label_vocabulary": annotator.label_vocabulary,
        "tokenizer_tokens": list(annotator.tokenizer.vocabulary),
        "graph_entities": len(annotator.graph),
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    save_state_dict(annotator.model.state_dict(), directory / _WEIGHTS)
    return directory


def load_annotator(directory: str | Path, graph: KnowledgeGraph,
                   linker: EntityLinker | None = None) -> KGLinkAnnotator:
    """Reconstruct a fitted annotator from ``directory`` against ``graph``."""
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    if manifest.get("format_version") != 1:
        raise ValueError(f"unsupported annotator format {manifest.get('format_version')!r}")

    config = KGLinkConfig(**manifest["config"])
    annotator = KGLinkAnnotator(graph, config, linker=linker)

    # Rebuild the tokenizer from the stored token list.  The first five tokens
    # are the special tokens, which the Vocabulary constructor re-adds itself.
    tokens = manifest["tokenizer_tokens"]
    specials = Vocabulary().specials
    plain_tokens = [token for token in tokens if token not in set(specials.as_tuple())]
    annotator.tokenizer = WordPieceTokenizer(Vocabulary(plain_tokens, specials=specials))

    encoder = create_encoder(config.plm_config(vocab_size=annotator.tokenizer.vocab_size))
    annotator.label_vocabulary = list(manifest["label_vocabulary"])
    annotator.model = KGLinkModel(
        encoder,
        num_labels=len(annotator.label_vocabulary),
        use_feature_vector=config.use_feature_vector,
        seed=config.seed,
    )
    annotator.model.load_state_dict(load_state_dict(directory / _WEIGHTS))
    annotator.model.eval()
    annotator.serializer = TableSerializer(annotator.tokenizer, config.serializer_config())
    annotator.trainer = KGLinkTrainer(
        annotator.model, annotator.serializer, annotator.label_vocabulary,
        config.training_config(),
    )
    return annotator
