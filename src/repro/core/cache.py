"""A bounded LRU mapping shared by the annotator and the serving layer.

Both :class:`~repro.core.annotator.KGLinkAnnotator` and
:class:`~repro.serve.service.AnnotationService` memoise Part-1 processed
tables keyed by table id.  The seed kept that cache in an unbounded dict,
which grows for the life of the object — fatal for a long-lived serving
process.  :class:`LRUCache` bounds it with least-recently-used eviction and
exposes hit/miss/eviction counters for telemetry.

The cache is thread-safe: ``get``/``put`` and the counters are serialized by
an internal lock, so services answering ``annotate`` from several threads
cannot lose hit/miss increments or corrupt the recency order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from typing import Generic, NamedTuple, TypeVar

__all__ = ["CacheInfo", "LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class CacheInfo(NamedTuple):
    """Counters in the shape of ``functools.lru_cache``'s ``cache_info()``."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    evictions: int


class LRUCache(Generic[K, V]):
    """An ``OrderedDict``-backed LRU cache with statistics.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts (or
    refreshes) a key and evicts the least recently used entry once ``maxsize``
    is exceeded.  ``maxsize <= 0`` disables caching entirely (every ``put``
    is dropped), which keeps call sites free of conditionals.  All mutating
    operations hold an internal lock, so concurrent callers see consistent
    counters and an intact recency list.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._data: OrderedDict[K, V] = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert ``key`` and evict the least recently used overflow."""
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        # Membership is a pure probe: no recency refresh, no stat updates —
        # but it still takes the lock, so a probe never observes the
        # OrderedDict mid-relink while another thread evicts.
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop all entries; the counters keep accumulating."""
        with self._lock:
            self._data.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (entries stay warm)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def cache_info(self) -> CacheInfo:
        """Current counters (hits, misses, maxsize, currsize, evictions)."""
        with self._lock:
            return CacheInfo(
                hits=self.hits,
                misses=self.misses,
                maxsize=self.maxsize,
                currsize=len(self._data),
                evictions=self.evictions,
            )
