"""The serving error taxonomy: every partial-failure mode has a typed name.

Before this module existed, a crashed pool worker surfaced as a raw
``BrokenProcessPool``, a truncated bundle as whatever ``numpy`` happened to
raise first, and a hung shard as an opaque ``TimeoutError`` — none of which a
caller can handle without string-matching tracebacks.  The resilience layer
(:mod:`repro.runtime.resilience`, :class:`~repro.kg.backends.ShardedBackend`,
:class:`~repro.serve.service.AnnotationService`) translates every failure it
detects into one of these classes, so operators and tests can route on type:

* :class:`DeadlineExceeded` — a task blew its per-task deadline
  (``RuntimePolicy.timeout_s``);
* :class:`WorkerCrashed` — a pool worker (or the whole pool) died; the
  runtime respawns the pool, and raises this only when respawning did not
  rescue the work;
* :class:`BreakerOpen` — a circuit breaker is refusing calls to a target that
  failed repeatedly (the caller should take its degraded path, not retry);
* :class:`ShardUnavailable` — a retrieval shard failed *and* the serial
  in-process fallback failed too: that slice of the corpus is dark;
* :class:`BundleCorrupted` — a service bundle failed validation before or
  during load (missing file, checksum mismatch, malformed manifest).  Also a
  ``ValueError`` so legacy ``except ValueError`` call sites keep working;
* :class:`ServiceClosed` — an ``annotate*`` call arrived after
  :meth:`~repro.serve.service.AnnotationService.close`;
* :class:`GatewayOverloaded` — the serving gateway shed the request before
  running it (intake queue full, or the gateway is draining).  The request
  did no work; the caller should back off and retry (HTTP 503 +
  ``Retry-After``);
* :class:`ReplicaUnavailable` — a fleet replica could not be reached over
  the wire (connection refused/reset, mid-frame EOF), or every replica was
  tried and none could serve the batch.  Transient by construction: the
  supervisor respawns dead replicas, so the caller should retry (HTTP 503 +
  ``Retry-After``).

This module is intentionally dependency-free so the runtime, retrieval and
serving layers can all import it without cycles.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "DeadlineExceeded",
    "WorkerCrashed",
    "BreakerOpen",
    "ShardUnavailable",
    "BundleCorrupted",
    "ServiceClosed",
    "GatewayOverloaded",
    "ReplicaUnavailable",
]


class ServingError(Exception):
    """Base class of every typed serving/runtime failure."""


class DeadlineExceeded(ServingError):
    """A task ran past its per-task deadline (``RuntimePolicy.timeout_s``)."""


class WorkerCrashed(ServingError):
    """A worker process (or its whole pool) died while running a task."""


class BreakerOpen(ServingError):
    """A circuit breaker is open: the target is failing and calls are refused."""


class ShardUnavailable(ServingError):
    """A retrieval shard failed and its serial in-process fallback failed too."""


class BundleCorrupted(ServingError, ValueError):
    """A service bundle failed validation (missing/corrupt/malformed artifact)."""


class ServiceClosed(ServingError):
    """The service was closed; no further annotate calls are accepted."""


class GatewayOverloaded(ServingError):
    """The gateway shed the request (queue full or draining); retry later."""


class ReplicaUnavailable(ServingError):
    """A fleet replica (or the whole fleet) is unreachable; retry later."""
