"""Table serialisation for the deep-learning component (Part 2, step 1).

KGLink serialises the whole (filtered, KG-augmented) table into a single token
sequence in the multi-column style of Doduo (Eq. 11): one ``[CLS]`` token per
column followed by that column's content, with a single ``[SEP]`` at the end.
Per column the content is, in order:

1. the ``[MASK]`` token (masked table) or the ground-truth label tokens
   (ground-truth table, training only) when the column-type representation
   generation sub-task is active;
2. the candidate types extracted from the KG (or, for numeric columns, the
   column's mean/variance/average summary);
3. the column's cell mentions from the filtered table.

The serializer also tokenises each column's feature sequence ``S(e)`` (Eq. 9)
into a fixed-length block used to compute the feature vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import ProcessedTable
from repro.text.tokenizer import WordPieceTokenizer

__all__ = ["SerializerConfig", "SerializedTable", "TableSerializer"]


@dataclass(frozen=True)
class SerializerConfig:
    """Token budgets of the serialiser.

    The paper restricts each column to 64 tokens and each table to 8 columns
    under BERT's 512-token limit; the defaults here are scaled down with the
    rest of the encoder but are overridable per experiment profile.
    """

    max_tokens_per_column: int = 32
    max_columns: int = 8
    max_candidate_type_tokens: int = 9
    max_feature_tokens: int = 24
    max_sequence_length: int = 288

    def __post_init__(self) -> None:
        if self.max_tokens_per_column <= 4:
            raise ValueError("max_tokens_per_column must be larger than 4")
        if self.max_columns <= 0:
            raise ValueError("max_columns must be positive")


@dataclass
class SerializedTable:
    """Model-ready arrays for one table."""

    token_ids: np.ndarray
    attention_mask: np.ndarray
    cls_positions: list[int]
    mask_positions: list[int]
    label_positions: list[int]
    column_labels: list[str | None]
    feature_token_ids: np.ndarray
    feature_attention_mask: np.ndarray
    has_feature: list[bool] = field(default_factory=list)

    @property
    def n_columns(self) -> int:
        return len(self.cls_positions)

    @property
    def sequence_length(self) -> int:
        return int(self.token_ids.shape[0])


class TableSerializer:
    """Serialise :class:`ProcessedTable` objects into encoder inputs."""

    def __init__(self, tokenizer: WordPieceTokenizer, config: SerializerConfig | None = None):
        self.tokenizer = tokenizer
        self.config = config or SerializerConfig()
        self.vocab = tokenizer.vocabulary

    # ------------------------------------------------------------------ #
    def _column_token_ids(
        self,
        processed: ProcessedTable,
        column_index: int,
        label_text: str | None,
        use_mask_token: bool,
        use_candidate_types: bool,
    ) -> tuple[list[int], int, int]:
        """Token ids of one column plus the positions (relative to the column
        start) of the ``[MASK]`` token and of the first label token (-1 if absent)."""
        info = processed.columns[column_index]
        budget = self.config.max_tokens_per_column
        ids: list[int] = [self.vocab.cls_id]
        mask_offset = -1
        label_offset = -1

        if use_mask_token:
            if label_text is not None:
                label_ids = self.tokenizer.encode(label_text, max_length=4)
                if label_ids:
                    label_offset = len(ids)
                    ids.extend(label_ids)
            else:
                mask_offset = len(ids)
                ids.append(self.vocab.mask_id)

        if use_candidate_types:
            if info.is_numeric:
                context_text = " ".join(info.numeric_summary)
            else:
                context_text = " ".join(info.candidate_types)
            if context_text.strip():
                ids.extend(
                    self.tokenizer.encode(
                        context_text, max_length=self.config.max_candidate_type_tokens
                    )
                )

        cell_text = " ".join(
            cell for cell in processed.filtered.columns[column_index].cells if cell.strip()
        )
        remaining = budget - len(ids)
        if remaining > 0 and cell_text.strip():
            ids.extend(self.tokenizer.encode(cell_text, max_length=remaining))
        return ids[:budget], mask_offset, label_offset

    # ------------------------------------------------------------------ #
    def serialize(
        self,
        processed: ProcessedTable,
        ground_truth: bool = False,
        use_mask_token: bool = True,
        use_candidate_types: bool = True,
    ) -> SerializedTable:
        """Serialise one processed table.

        ``ground_truth=True`` builds the *ground-truth table* (labels prepended
        to each column); otherwise the *masked table* is built with a
        ``[MASK]`` token in place of the label.  ``use_mask_token=False``
        omits both (the ``KGLink w/o msk`` ablation).
        """
        n_columns = min(processed.original.n_columns, self.config.max_columns)
        token_ids: list[int] = []
        cls_positions: list[int] = []
        mask_positions: list[int] = []
        label_positions: list[int] = []
        column_labels: list[str | None] = []

        for column_index in range(n_columns):
            info = processed.columns[column_index]
            label_text = info.label if ground_truth else None
            start = len(token_ids)
            ids, mask_offset, label_offset = self._column_token_ids(
                processed,
                column_index,
                label_text=label_text,
                use_mask_token=use_mask_token,
                use_candidate_types=use_candidate_types,
            )
            token_ids.extend(ids)
            cls_positions.append(start)
            mask_positions.append(start + mask_offset if mask_offset >= 0 else -1)
            label_positions.append(start + label_offset if label_offset >= 0 else -1)
            column_labels.append(info.label)

        token_ids.append(self.vocab.sep_id)
        token_ids = token_ids[: self.config.max_sequence_length]
        token_array = np.asarray(token_ids, dtype=np.int64)
        attention = np.ones_like(token_array, dtype=bool)

        feature_ids, feature_attention, has_feature = self._serialize_features(
            processed, n_columns
        )
        return SerializedTable(
            token_ids=token_array,
            attention_mask=attention,
            cls_positions=cls_positions,
            mask_positions=[p if p < len(token_ids) else -1 for p in mask_positions],
            label_positions=[p if p < len(token_ids) else -1 for p in label_positions],
            column_labels=column_labels,
            feature_token_ids=feature_ids,
            feature_attention_mask=feature_attention,
            has_feature=has_feature,
        )

    # ------------------------------------------------------------------ #
    def _serialize_features(
        self, processed: ProcessedTable, n_columns: int
    ) -> tuple[np.ndarray, np.ndarray, list[bool]]:
        """Tokenise each column's feature sequence into a fixed-length block."""
        length = self.config.max_feature_tokens
        ids = np.full((n_columns, length), self.vocab.pad_id, dtype=np.int64)
        attention = np.zeros((n_columns, length), dtype=bool)
        has_feature: list[bool] = []
        for column_index in range(n_columns):
            info = processed.columns[column_index]
            sequence = info.feature_sequence
            if not sequence:
                # Padding-only sequence, as the paper specifies for columns
                # with no retrieved entities; keep the [CLS] so pooling the
                # first position is always valid.
                ids[column_index, 0] = self.vocab.cls_id
                attention[column_index, 0] = True
                has_feature.append(False)
                continue
            encoded = [self.vocab.cls_id] + self.tokenizer.encode(
                sequence, max_length=length - 2
            ) + [self.vocab.sep_id]
            encoded = encoded[:length]
            ids[column_index, : len(encoded)] = encoded
            attention[column_index, : len(encoded)] = True
            has_feature.append(True)
        return ids, attention, has_feature
