"""The shipped rules: six machine-checked invariants of this codebase.

Each rule encodes a convention that earlier PRs established in prose and
tests.  The codes are stable (they appear in waivers and CI logs); the
kebab-case names are accepted in waivers interchangeably.

==========  =========================  ==========================================
code        name                       invariant
==========  =========================  ==========================================
``REP101``  lock-discipline            attributes declared ``# guarded-by:
                                       <lock>`` are only touched inside
                                       ``with self.<lock>:``
``REP102``  no-blocking-in-async       ``async def`` bodies in the gateway never
                                       call known-blocking APIs directly
``REP103``  monotonic-deadlines        deadline-bearing layers never read the
                                       wall clock (``time.time`` /
                                       ``datetime.now``)
``REP104``  typed-errors               no ``raise Exception``; broad ``except``
                                       handlers re-raise or carry a waiver
``REP105``  seeded-rng                 every random stream is explicitly seeded
                                       (bitwise reproducibility)
``REP106``  socket-timeout-discipline  every socket connect/accept in the fleet
                                       and gateway carries an explicit timeout
                                       or deadline
==========  =========================  ==========================================
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    register_rule,
)

__all__ = [
    "LockDisciplineRule",
    "NoBlockingInAsyncRule",
    "MonotonicDeadlinesRule",
    "TypedErrorsRule",
    "SeededRngRule",
    "SocketTimeoutRule",
]

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@register_rule
class LockDisciplineRule(Rule):
    """``# guarded-by: <lock>`` attributes only move under their lock.

    The convention: the declaring assignment (normally in ``__init__``)
    carries a trailing ``# guarded-by: _some_lock`` comment naming another
    attribute of the same class — a :class:`threading.Lock`, ``RLock`` or
    ``Condition``.  From then on, every ``self.<attr>`` read or write in the
    class must sit lexically inside a ``with self._some_lock:`` block.

    Escape hatches, both deliberate:

    * ``__init__`` is exempt — construction happens-before publication;
    * methods whose name ends in ``_locked`` are exempt — the suffix is this
      codebase's convention for "caller must hold the lock", and the rule
      trusts it (the call sites it can see are still checked).

    The check is lexical: a closure defined under the lock but invoked after
    release will not be caught.  That is the usual static-analysis trade; the
    rule exists to catch the common mistake (a new counter bump or probe
    added outside the ``with``), not to prove the locking protocol.
    """

    code: ClassVar[str] = "REP101"
    name: ClassVar[str] = "lock-discipline"
    description: ClassVar[str] = (
        "attributes declared '# guarded-by: <lock>' may only be accessed "
        "inside the matching 'with self.<lock>:' block"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    # ------------------------------------------------------------------ #
    def _check_class(self, context: ModuleContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        guarded = self._declarations(context, cls)
        if not guarded:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                continue
            yield from self._scan(context, stmt, guarded, frozenset())

    def _declarations(self, context: ModuleContext,
                      cls: ast.ClassDef) -> dict[str, str]:
        """``{attr: lock}`` from ``guarded-by`` comments on assignments."""
        guarded: dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            match = _GUARDED_BY_RE.search(context.comments.get(node.lineno, ""))
            if match is None:
                continue
            lock = match.group(1)
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    guarded[target.attr] = lock
                elif isinstance(target, ast.Name):
                    guarded[target.id] = lock
        return guarded

    def _scan(self, context: ModuleContext, node: ast.AST,
              guarded: dict[str, str],
              held: frozenset[str]) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                name = dotted_name(item.context_expr)
                if name is not None and name.startswith("self."):
                    acquired.add(name[len("self."):])
                yield from self._scan(context, item.context_expr, guarded, held)
            inner = held | acquired
            for stmt in node.body:
                yield from self._scan(context, stmt, guarded, inner)
            return
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guarded
                and guarded[node.attr] not in held):
            yield self.finding(
                context, node,
                f"'self.{node.attr}' is guarded by 'self.{guarded[node.attr]}' "
                f"but is accessed outside 'with self.{guarded[node.attr]}:'",
            )
            return
        for child in ast.iter_child_nodes(node):
            yield from self._scan(context, child, guarded, held)


@register_rule
class NoBlockingInAsyncRule(Rule):
    """``async def`` bodies in the gateway never block the event loop.

    One stalled coroutine stalls every connection the gateway is serving, so
    known-blocking calls — ``time.sleep``, socket/subprocess/urllib I/O, and
    the blocking ``annotate`` / ``annotate_batch`` / ``annotate_stream``
    service surface — are banned inside ``async def``.  The sanctioned seams
    are ``loop.run_in_executor`` and the :class:`~repro.gateway.batcher.
    MicroBatcher` (both take the function as a *reference*, which this rule
    naturally permits), and ``asyncio.sleep`` instead of ``time.sleep``.

    Nested ``def``/``lambda`` bodies are skipped: they execute wherever they
    are later called (usually a worker thread), not on the loop.
    """

    code: ClassVar[str] = "REP102"
    name: ClassVar[str] = "no-blocking-in-async"
    description: ClassVar[str] = (
        "async def bodies must not call blocking APIs (time.sleep, socket "
        "ops, annotate*) except through run_in_executor/the batcher"
    )
    modules: ClassVar[tuple[str, ...]] = ("repro.gateway",)

    BLOCKING_CALLS = frozenset({"time.sleep"})
    BLOCKING_PREFIXES = ("socket.", "subprocess.", "urllib.request.", "requests.")
    BLOCKING_METHODS = frozenset({"annotate", "annotate_batch", "annotate_stream"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for stmt in node.body:
                    yield from self._scan(context, stmt)

    def _scan(self, context: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Runs off the loop (executor/batcher) or is checked on its own.
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(context, node)
        for child in ast.iter_child_nodes(node):
            yield from self._scan(context, child)

    def _check_call(self, context: ModuleContext,
                    call: ast.Call) -> Iterator[Finding]:
        dotted = dotted_name(call.func)
        if dotted is not None:
            if dotted in self.BLOCKING_CALLS:
                yield self.finding(
                    context, call,
                    f"'{dotted}' blocks the event loop; use 'await "
                    "asyncio.sleep(...)' instead",
                )
                return
            if dotted.startswith(self.BLOCKING_PREFIXES):
                yield self.finding(
                    context, call,
                    f"'{dotted}' does blocking I/O on the event loop; run it "
                    "via loop.run_in_executor",
                )
                return
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr in self.BLOCKING_METHODS):
            yield self.finding(
                context, call,
                f"'.{call.func.attr}(...)' is the blocking service API; "
                "dispatch through the MicroBatcher or loop.run_in_executor",
            )


@register_rule
class MonotonicDeadlinesRule(Rule):
    """Deadline math in runtime/gateway code stays on the monotonic clock.

    ``Deadline``, ``RuntimePolicy`` timeouts and every backoff computation
    compare *absolute monotonic* readings; one stray ``time.time()`` mixed in
    makes deadlines jump with NTP adjustments and DST.  The wall clock is
    banned in these modules — format timestamps at the edges (logging, HTTP
    headers) in layers where no deadline arithmetic happens, or waive with a
    reason.
    """

    code: ClassVar[str] = "REP103"
    name: ClassVar[str] = "monotonic-deadlines"
    description: ClassVar[str] = (
        "time.time()/datetime.now() are banned where Deadline math requires "
        "time.monotonic()"
    )
    modules: ClassVar[tuple[str, ...]] = (
        "repro.runtime", "repro.gateway", "repro.fleet",
    )

    BANNED = frozenset({
        "time.time", "time.localtime", "time.gmtime", "time.ctime",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today", "date.today",
    })
    _WALL_FROM_TIME = frozenset({"time", "localtime", "gmtime", "ctime"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        calls = self._from_imports(context.tree)
        prefixes = self._module_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            head, _, rest = dotted.partition(".")
            canonical = f"{prefixes[head]}.{rest}" if rest and head in prefixes else dotted
            name = canonical if canonical in self.BANNED else calls.get(dotted)
            if name is not None:
                yield self.finding(
                    context, node,
                    f"'{name}()' reads the wall clock; deadline-bearing code "
                    "must use time.monotonic() (or perf_counter for spans)",
                )

    def _from_imports(self, tree: ast.Module) -> dict[str, str]:
        """Aliases bound by ``from time import time`` style imports."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._WALL_FROM_TIME:
                        aliases[alias.asname or alias.name] = f"time.{alias.name}"
        return aliases

    def _module_aliases(self, tree: ast.Module) -> dict[str, str]:
        """Names that shadow the clock modules: ``import time as t`` binds
        ``t`` -> ``time``, ``from datetime import datetime as dt`` binds
        ``dt`` -> ``datetime.datetime`` — so aliased call sites canonicalise
        back onto the BANNED spellings."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        aliases[alias.asname or alias.name] = f"datetime.{alias.name}"
        return aliases


@register_rule
class TypedErrorsRule(Rule):
    """Failures under ``src/repro`` speak the typed taxonomy.

    Two checks:

    * ``raise Exception(...)`` / ``raise BaseException(...)`` is banned —
      callers route on type (:mod:`repro.core.errors`), and a generic raise
      is invisible to every ``except ServingError`` site;
    * an ``except Exception:`` / ``except BaseException:`` handler must
      contain a ``raise`` (re-raise as-is or mapped to a typed error).  A
      handler that genuinely terminates a failure — fanning it out to
      futures, translating it to an HTTP response — carries a waiver whose
      reason says where the error goes instead.

    :mod:`repro.core.errors` itself is exempt: it is where the taxonomy
    lives.
    """

    code: ClassVar[str] = "REP104"
    name: ClassVar[str] = "typed-errors"
    description: ClassVar[str] = (
        "no 'raise Exception'; broad 'except Exception' handlers must "
        "re-raise, map to a typed ServingError, or carry a waiver"
    )
    modules: ClassVar[tuple[str, ...]] = ("repro",)

    GENERIC = frozenset({"Exception", "BaseException"})

    def applies_to(self, context: ModuleContext) -> bool:
        return super().applies_to(context) and context.module != "repro.core.errors"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Raise):
                name = self._raised_generic(node)
                if name is not None:
                    yield self.finding(
                        context, node,
                        f"'raise {name}' is untyped; raise a "
                        "repro.core.errors.ServingError subclass (or a "
                        "specific builtin like ValueError)",
                    )
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(context, node)

    def _raised_generic(self, node: ast.Raise) -> str | None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in self.GENERIC:
            return exc.id
        return None

    def _check_handler(self, context: ModuleContext,
                       handler: ast.ExceptHandler) -> Iterator[Finding]:
        name = self._broad_name(handler.type)
        if name is None:
            return
        if not any(self._reraises(stmt) for stmt in handler.body):
            yield self.finding(
                context, handler,
                f"'except {name}' swallows the failure; re-raise it, map it "
                "to a typed ServingError, or waive with the reason it is "
                "terminated here",
            )

    def _broad_name(self, type_node: ast.AST | None) -> str | None:
        if isinstance(type_node, ast.Name) and type_node.id in self.GENERIC:
            return type_node.id
        if isinstance(type_node, ast.Tuple):
            for element in type_node.elts:
                if isinstance(element, ast.Name) and element.id in self.GENERIC:
                    return element.id
        return None

    def _reraises(self, node: ast.AST) -> bool:
        """Whether a ``raise`` executes as part of the handler itself."""
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False  # a nested def's raise runs later, elsewhere
        return any(self._reraises(child) for child in ast.iter_child_nodes(node))


@register_rule
class SeededRngRule(Rule):
    """Every random stream under ``src/repro`` is explicitly seeded.

    Bitwise reproducibility is this repo's contract (seeded runs are
    compared bit-for-bit across refactors), so randomness must come from an
    explicitly seeded generator — ``np.random.default_rng(seed)``, a spawned
    child stream (``rng.spawn``), or ``random.Random(seed)``.  Banned:

    * ``np.random.default_rng()`` with no arguments (entropy from the OS);
    * the legacy numpy global state (``np.random.rand`` / ``seed`` / ...);
    * the stdlib ``random`` module-level functions and ``random.Random()``
      without a seed.

    Calls on *instances* (``self._rng.random()``) are always fine — the rule
    matches full dotted names, and instances are where seeds live.
    """

    code: ClassVar[str] = "REP105"
    name: ClassVar[str] = "seeded-rng"
    description: ClassVar[str] = (
        "np.random.default_rng()/random.* without an explicit seed or "
        "spawned stream is banned (bitwise reproducibility)"
    )
    modules: ClassVar[tuple[str, ...]] = ("repro",)

    LEGACY_NUMPY = frozenset({
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "normal", "uniform", "seed", "standard_normal",
        "binomial", "poisson", "beta", "gamma", "exponential",
    })
    STDLIB_RANDOM = frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "seed", "getrandbits", "triangular",
    })

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            message = self._violation(node, dotted)
            if message is not None:
                yield self.finding(context, node, message)

    def _violation(self, call: ast.Call, dotted: str) -> str | None:
        parts = dotted.split(".")
        unseeded = not call.args and not call.keywords
        if parts[:2] in (["np", "random"], ["numpy", "random"]) and len(parts) == 3:
            if parts[2] == "default_rng":
                if unseeded:
                    return ("'default_rng()' without a seed breaks bitwise "
                            "reproducibility; pass a seed or spawn from a "
                            "seeded stream")
                return None
            if parts[2] in self.LEGACY_NUMPY:
                return (f"'{dotted}' uses numpy's global RNG state; draw from "
                        "an explicitly seeded np.random.default_rng(seed)")
            return None
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random":
                if unseeded:
                    return ("'random.Random()' without a seed breaks bitwise "
                            "reproducibility; pass a seed")
                return None
            if parts[1] in self.STDLIB_RANDOM:
                return (f"'{dotted}' uses the stdlib global RNG; use a seeded "
                        "random.Random(seed) instance")
        return None


@register_rule
class SocketTimeoutRule(Rule):
    """Every socket connect/accept in the fleet and gateway is bounded.

    The fleet serves over real loopback sockets, and an unbounded socket
    operation is a hung replica the supervisor cannot distinguish from a
    slow one.  The convention (established by :mod:`repro.fleet.wire`):
    every potentially-blocking rendezvous carries an explicit budget.
    Three spellings are checked:

    * ``socket.create_connection(addr)`` must pass a ``timeout`` — as the
      keyword or the second positional argument — normally computed from
      the caller's absolute monotonic deadline;
    * ``<sock>.connect(...)`` / ``<listener>.accept(...)`` must have a
      lexically visible ``<sock>.settimeout(...)`` on the *same receiver* —
      in the enclosing function for local names, anywhere in the enclosing
      class for ``self.<attr>`` receivers (binding in ``start()``, accepting
      in ``serve_forever()`` is the normal split);
    * ``asyncio.open_connection(...)`` must sit inside the arguments of an
      ``asyncio.wait_for(...)`` — the event-loop equivalent of a connect
      timeout.

    The check is lexical, like REP101: it proves the timeout *spelling* is
    present, not that the value is finite — ``settimeout(None)`` would
    still pass.  It exists to catch the common mistake: a new dial or
    accept loop added without any budget at all.
    """

    code: ClassVar[str] = "REP106"
    name: ClassVar[str] = "socket-timeout-discipline"
    description: ClassVar[str] = (
        "socket connect/accept calls in repro.fleet and repro.gateway must "
        "carry an explicit timeout (settimeout/timeout=/asyncio.wait_for)"
    )
    modules: ClassVar[tuple[str, ...]] = ("repro.fleet", "repro.gateway")

    GUARDED_METHODS = frozenset({"connect", "accept"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        protected = self._wait_for_descendants(context.tree)
        yield from self._scan(context, context.tree, frozenset(), frozenset(),
                              protected)

    # ------------------------------------------------------------------ #
    def _wait_for_descendants(self, tree: ast.Module) -> frozenset[int]:
        """ids of nodes nested inside ``asyncio.wait_for(...)`` arguments."""
        protected: set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) not in ("asyncio.wait_for", "wait_for"):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                protected.update(id(child) for child in ast.walk(argument))
        return frozenset(protected)

    def _settimeout_receivers(self, node: ast.AST) -> set[str]:
        """Dotted receivers of every ``<receiver>.settimeout(...)`` under
        ``node`` (``conn`` from ``conn.settimeout(0.2)``, ``self._listener``
        from ``self._listener.settimeout(...)``)."""
        receivers: set[str] = set()
        for child in ast.walk(node):
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "settimeout"):
                receiver = dotted_name(child.func.value)
                if receiver is not None:
                    receivers.add(receiver)
        return receivers

    def _scan(self, context: ModuleContext, node: ast.AST,
              visible: frozenset[str], self_receivers: frozenset[str],
              protected: frozenset[int]) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            in_class = frozenset(
                receiver for receiver in self._settimeout_receivers(node)
                if receiver.startswith("self.")
            )
            for child in ast.iter_child_nodes(node):
                yield from self._scan(context, child, visible, in_class,
                                      protected)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local = frozenset(
                receiver for receiver in self._settimeout_receivers(node)
                if not receiver.startswith("self.")
            )
            inner = visible | local
            for child in ast.iter_child_nodes(node):
                yield from self._scan(context, child, inner, self_receivers,
                                      protected)
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(context, node, visible,
                                        self_receivers, protected)
        for child in ast.iter_child_nodes(node):
            yield from self._scan(context, child, visible, self_receivers,
                                  protected)

    def _check_call(self, context: ModuleContext, call: ast.Call,
                    visible: frozenset[str], self_receivers: frozenset[str],
                    protected: frozenset[int]) -> Iterator[Finding]:
        dotted = dotted_name(call.func)
        if dotted in ("socket.create_connection", "create_connection"):
            bounded = (len(call.args) >= 2
                       or any(kw.arg == "timeout" for kw in call.keywords))
            if not bounded:
                yield self.finding(
                    context, call,
                    f"'{dotted}(...)' without a timeout can hang the caller "
                    "forever; pass timeout= computed from the deadline",
                )
            return
        if dotted in ("asyncio.open_connection", "open_connection"):
            if id(call) not in protected:
                yield self.finding(
                    context, call,
                    f"'{dotted}(...)' has no connect budget; wrap it in "
                    "asyncio.wait_for(..., timeout=...)",
                )
            return
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr in self.GUARDED_METHODS):
            receiver = dotted_name(call.func.value)
            if receiver is None:
                return
            bounded = (receiver in visible
                       or (receiver.startswith("self.")
                           and receiver in self_receivers))
            if not bounded:
                yield self.finding(
                    context, call,
                    f"'{receiver}.{call.func.attr}(...)' has no lexically "
                    f"visible '{receiver}.settimeout(...)'; every socket "
                    "connect/accept must carry an explicit timeout",
                )
