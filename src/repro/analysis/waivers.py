"""Inline waivers: ``# repro: allow[CODE] -- reason``.

A waiver acknowledges one specific finding without silencing the rule
everywhere — the analog of ``# noqa`` with two deliberate differences:

* a **reason is mandatory**.  A waiver without the ``-- reason`` tail is
  itself a finding (:data:`~repro.analysis.core.ANALYZER_CODE`), because an
  unexplained suppression is exactly the convention-rot this analyzer exists
  to prevent;
* the bracketed token must be a **known rule** (its ``REP1xx`` code or its
  kebab-case name; several may be comma-separated).  Unknown tokens are
  findings too, so a typo cannot silently waive nothing.

Placement: on the violating line itself (trailing comment), or anywhere in
the contiguous comment block immediately above it (so a waiver and its
reason can span lines under the 100-column style).  Analyzer findings
(``REP000``) are never waivable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.core import ANALYZER_CODE, Finding, rule_codes

__all__ = ["Waiver", "WaiverSet", "parse_waivers"]

_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<tokens>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment: the codes it covers and why."""

    line: int
    codes: frozenset[str]
    reason: str


@dataclass
class WaiverSet:
    """Every well-formed waiver in a file, plus findings for malformed ones."""

    path: str
    by_line: dict[int, Waiver] = field(default_factory=dict)
    problems: list[Finding] = field(default_factory=list)
    comment_lines: frozenset[int] = frozenset()
    used: set[int] = field(default_factory=set)

    def lookup(self, code: str, line: int) -> Waiver | None:
        """The waiver covering ``code`` at ``line``, if any.

        Checks the line itself, then walks up through the contiguous
        comment block directly above it (an own-line waiver annotates the
        statement that follows its comment block).
        """
        if code == ANALYZER_CODE:
            return None
        candidate = line
        while True:
            waiver = self.by_line.get(candidate)
            if waiver is not None and code in waiver.codes:
                self.used.add(candidate)
                return waiver
            candidate -= 1
            if candidate not in self.comment_lines:
                return None


def parse_waivers(path: str, comments: dict[int, str]) -> WaiverSet:
    """Collect the waivers of one file, validating tokens and reasons.

    ``comments`` is line → real comment token text (see
    :func:`repro.analysis.core.extract_comments`), so waiver syntax quoted
    inside docstrings or string literals is never mistaken for a waiver.
    """
    tokens_to_code = rule_codes()
    waivers = WaiverSet(path=path, comment_lines=frozenset(comments))
    for index in sorted(comments):
        text = comments[index]
        if "repro:" not in text:
            continue
        match = _WAIVER_RE.search(text)
        if match is None:
            # A comment that mentions "repro: allow" but failed to parse is a
            # malformed waiver, not a miss — refuse it loudly.
            if re.search(r"#\s*repro:\s*allow", text):
                waivers.problems.append(_problem(
                    path, index, "malformed waiver: expected "
                    "'# repro: allow[CODE] -- reason'",
                ))
            continue
        reason = match.group("reason")
        if not reason:
            waivers.problems.append(_problem(
                path, index,
                "waiver is missing its reason ('-- why this is acceptable')",
            ))
            continue
        codes: set[str] = set()
        bad_tokens: list[str] = []
        for token in (t.strip() for t in match.group("tokens").split(",")):
            if not token:
                continue
            code = tokens_to_code.get(token)
            if code is None or code == ANALYZER_CODE:
                bad_tokens.append(token)
            else:
                codes.add(code)
        if bad_tokens:
            waivers.problems.append(_problem(
                path, index,
                f"waiver names unknown rule(s): {', '.join(sorted(bad_tokens))}",
            ))
            continue
        if not codes:
            waivers.problems.append(_problem(
                path, index, "waiver names no rules: allow[] is empty",
            ))
            continue
        waivers.by_line[index] = Waiver(
            line=index, codes=frozenset(codes), reason=reason.strip()
        )
    return waivers


def _problem(path: str, line: int, message: str) -> Finding:
    return Finding(code=ANALYZER_CODE, name="waiver", path=path, line=line,
                   col=0, message=message)
