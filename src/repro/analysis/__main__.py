"""CLI: ``python -m repro.analysis [paths ...]``.

Runs every registered rule over the given files/directories (default:
``src``) and prints the findings.  Exit status:

* ``0`` — no unwaived findings (waived findings may exist; they are listed
  in the summary so tolerated debt stays visible);
* ``1`` — at least one unwaived finding (this is what CI gates on);
* ``2`` — usage error (unknown rule in ``--select``, no files found).

``--format json`` emits one machine-readable object (findings + summary),
for tooling and for diffing analyzer output across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis.core import all_rules
from repro.analysis.runner import analyze_paths, iter_python_files

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (concurrency and "
                    "reproducibility invariants).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes/names to run "
                             "(default: all)")
    parser.add_argument("--show-waived", action="store_true",
                        help="list waived findings individually (text format)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.modules) if rule.modules else "all files"
            print(f"{rule.code}  {rule.name}  [{scope}]")
            print(f"        {rule.description}")
        return 0
    if args.select:
        wanted = {token.strip() for token in args.select.split(",") if token.strip()}
        known = {rule.code for rule in rules} | {rule.name for rule in rules}
        unknown = wanted - known
        if unknown:
            print(f"error: unknown rule(s) in --select: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules
                 if rule.code in wanted or rule.name in wanted]
    files = list(iter_python_files(args.paths))
    if not files:
        print(f"error: no Python files under: {', '.join(args.paths)}",
              file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths, rules)
    unwaived = [finding for finding in findings if not finding.waived]
    waived = [finding for finding in findings if finding.waived]

    if args.format == "json":
        print(json.dumps({
            "findings": [finding.to_dict() for finding in findings],
            "summary": {
                "files": len(files),
                "rules": [rule.code for rule in rules],
                "total": len(findings),
                "unwaived": len(unwaived),
                "waived": len(waived),
            },
        }, indent=2))
        return 1 if unwaived else 0

    for finding in unwaived:
        print(finding.format())
    if args.show_waived:
        for finding in waived:
            print(f"{finding.format()} -- {finding.waiver_reason}")
    print(f"{len(files)} file(s) analyzed: {len(unwaived)} finding(s), "
          f"{len(waived)} waived")
    return 1 if unwaived else 0


if __name__ == "__main__":
    sys.exit(main())
