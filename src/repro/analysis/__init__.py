"""Project-specific static analysis: machine-checked concurrency invariants.

The serving stack's correctness rests on conventions — guarded telemetry
counters, monotonic deadline math, the typed error taxonomy, seeded
randomness, a non-blocking event loop — that PRs 5–7 enforced only by code
review and by tests that happen to race the right way.  This package turns
those conventions into an AST-based lint suite gated in CI::

    python -m repro.analysis src tests benchmarks scripts

See :mod:`repro.analysis.rules` for the shipped rules (codes ``REP101`` –
``REP105``) and :mod:`repro.analysis.waivers` for the inline waiver syntax
(``# repro: allow[REP104] -- reason``, reason mandatory).
"""

from repro.analysis.core import (
    ANALYZER_CODE,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    register_rule,
    rule_codes,
)
from repro.analysis.rules import (
    LockDisciplineRule,
    MonotonicDeadlinesRule,
    NoBlockingInAsyncRule,
    SeededRngRule,
    TypedErrorsRule,
)
from repro.analysis.runner import analyze_file, analyze_paths, iter_python_files
from repro.analysis.waivers import Waiver, WaiverSet, parse_waivers

__all__ = [
    "ANALYZER_CODE",
    "Finding",
    "ModuleContext",
    "Rule",
    "register_rule",
    "rule_codes",
    "all_rules",
    "LockDisciplineRule",
    "NoBlockingInAsyncRule",
    "MonotonicDeadlinesRule",
    "TypedErrorsRule",
    "SeededRngRule",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "Waiver",
    "WaiverSet",
    "parse_waivers",
]
