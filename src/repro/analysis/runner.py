"""Drive the rules over real files: walk, parse, check, waive.

:func:`analyze_paths` is the programmatic entry point the CLI, the CI gate
and the tests all share: give it files and/or directories, get back every
:class:`~repro.analysis.core.Finding` — waived ones included, flagged as
such, so reports can show what is being tolerated and why.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

from repro.analysis.core import (
    ANALYZER_CODE,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
)
from repro.analysis.waivers import parse_waivers

__all__ = ["analyze_paths", "analyze_file", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".ruff_cache",
              ".pytest_cache", "node_modules"}


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, depth-first, deterministic order."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                candidate for candidate in path.rglob("*.py")
                if not (_SKIP_DIRS & set(candidate.parts))
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_file(path: Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """All findings for one file (waived findings included, marked)."""
    rules = list(all_rules()) if rules is None else list(rules)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        return [Finding(code=ANALYZER_CODE, name="analysis", path=str(path),
                        line=1, col=0, message=f"cannot read file: {error}")]
    try:
        context = ModuleContext.parse(path, source)
    except SyntaxError as error:
        return [Finding(code=ANALYZER_CODE, name="analysis", path=str(path),
                        line=error.lineno or 1, col=error.offset or 0,
                        message=f"syntax error: {error.msg}")]
    waivers = parse_waivers(str(path), context.comments)
    findings: list[Finding] = list(waivers.problems)
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            waiver = waivers.lookup(finding.code, finding.line)
            if waiver is not None:
                finding = Finding(
                    code=finding.code, name=finding.name, path=finding.path,
                    line=finding.line, col=finding.col, message=finding.message,
                    waived=True, waiver_reason=waiver.reason,
                )
            findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def analyze_paths(paths: Sequence[str | Path],
                  rules: Sequence[Rule] | None = None) -> list[Finding]:
    """All findings across every Python file under ``paths``."""
    rules = list(all_rules()) if rules is None else list(rules)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path, rules))
    return findings
