"""The analysis framework: findings, rule registry, per-module context.

:mod:`repro.analysis` is a project-specific static analyzer: the concurrency
and reproducibility invariants that PRs 5–7 documented in prose (lock-guarded
telemetry, monotonic deadlines, the typed error taxonomy, seeded randomness)
become machine-checked rules that run over the real tree in CI.  The design
mirrors the retrieval-backend and executor registries elsewhere in the repo:

* a :class:`Rule` subclass registers under a stable ``REP1xx`` code via
  :func:`register_rule` and declares the dotted-module prefixes it applies to
  (``()`` means every analyzed file);
* the runner (:mod:`repro.analysis.runner`) parses each file once and hands
  every applicable rule a :class:`ModuleContext` — the AST, the raw source
  lines (rules that read annotations such as ``# guarded-by:`` need them; the
  AST drops comments) and the derived dotted module name;
* rules yield :class:`Finding`\\ s; the runner then applies inline waivers
  (``# repro: allow[CODE] -- reason``, see :mod:`repro.analysis.waivers`) and
  the CLI exits non-zero when any finding is left unwaived.

Everything here is stdlib-only (``ast`` + ``re``), so the analyzer runs in
any environment the test suite runs in.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator
from typing import ClassVar

__all__ = [
    "ANALYZER_CODE",
    "Finding",
    "ModuleContext",
    "Rule",
    "register_rule",
    "all_rules",
    "rule_codes",
    "dotted_name",
]

#: Findings produced by the analyzer itself (syntax errors, malformed
#: waivers).  Not waivable: a broken waiver must not be able to waive itself.
ANALYZER_CODE = "REP000"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or analyzer problem) at a file position."""

    code: str
    name: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def format(self) -> str:
        tag = " (waived)" if self.waived else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.name}] {self.message}{tag}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one analyzed file.

    ``comments`` maps line number → the *actual* comment token on that line
    (via :mod:`tokenize`), so annotation conventions (waivers, ``guarded-by``)
    never match text that merely looks like a comment inside a docstring or
    string literal.
    """

    path: Path
    module: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    comments: dict[int, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, source: str) -> ModuleContext:
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, module=derive_module(path), tree=tree,
                   source=source, lines=source.splitlines(),
                   comments=extract_comments(source))


def extract_comments(source: str) -> dict[int, str]:
    """Line → comment text for every real ``#`` comment token in ``source``."""
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # a syntactically broken file is reported by the parse step
    return comments


def derive_module(path: Path) -> str:
    """The dotted module name of ``path`` (best effort, for rule scoping).

    A ``src`` directory component anchors the import root (the repo's
    src-layout), so ``src/repro/gateway/app.py`` → ``repro.gateway.app``
    wherever the tree lives on disk.  Without one the parts after the last
    well-known top-level directory (``tests``/``benchmarks``/``scripts``/
    ``examples``, inclusive) are used, so rules scoped to ``repro.`` never
    match test or tooling files by accident.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "src":
            return ".".join(parts[anchor + 1:])
        if parts[anchor] in ("tests", "benchmarks", "scripts", "examples"):
            return ".".join(parts[anchor:])
    return ".".join(parts[-1:])


class Rule:
    """Base class of every analysis rule.

    Subclasses set ``code`` (stable ``REP1xx`` identifier used in waivers and
    CI logs), ``name`` (the kebab-case human name, also accepted in waivers),
    ``description`` (one line, shown by ``--list-rules``) and optionally
    ``modules`` — dotted-prefix scopes; a rule only runs over files whose
    derived module matches one (the empty tuple matches everything).
    """

    code: ClassVar[str]
    name: ClassVar[str]
    description: ClassVar[str]
    modules: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, context: ModuleContext) -> bool:
        if not self.modules:
            return True
        module = context.module
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.modules)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def finding(self, context: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            code=self.code, name=self.name, path=str(context.path),
            line=getattr(node, "lineno", 1), col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Register a rule class under its ``code`` (decorator-friendly)."""
    code = getattr(cls, "code", None)
    if not code:
        raise ValueError(f"{cls!r} must define a non-empty code")
    if code in _RULES and _RULES[code] is not cls:
        raise ValueError(f"rule code {code} is already registered")
    _RULES[code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    return [_RULES[code]() for code in sorted(_RULES)]


def rule_codes() -> dict[str, str]:
    """Mapping of every accepted waiver token (code *and* name) to the code."""
    tokens: dict[str, str] = {}
    for code, cls in _RULES.items():
        tokens[code] = code
        tokens[cls.name] = code
    return tokens


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else.

    ``self._rng.random`` resolves to ``"self._rng.random"`` — callers match
    the *full* dotted string, so instance-level streams never collide with
    module-level names like ``random.random``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
