"""Loading and saving tables and corpora as CSV / JSON files.

The synthetic generators are the primary data source of this reproduction, but
a downstream user of the library will want to annotate *their own* tables.
This module provides the interchange layer:

* one table ↔ one CSV file (header row = column names) plus an optional
  ``<name>.labels.json`` side-car with the ground-truth column types;
* a corpus ↔ a directory of CSV files plus a ``corpus.json`` manifest holding
  the label vocabulary.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.data.corpus import TableCorpus
from repro.data.table import Column, Table

__all__ = [
    "table_to_csv",
    "table_from_csv",
    "corpus_to_directory",
    "corpus_from_directory",
]


def table_to_csv(table: Table, path: str | Path, write_labels: bool = True) -> Path:
    """Write ``table`` to ``path`` as CSV; labels go to ``<path>.labels.json``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(column.name for column in table.columns)
        for row in table.iter_rows():
            writer.writerow(row)
    if write_labels:
        labels_path = path.with_suffix(path.suffix + ".labels.json")
        labels_path.write_text(json.dumps({
            "table_id": table.table_id,
            "source": table.source,
            "labels": table.labels(),
        }, indent=2))
    return path


def table_from_csv(path: str | Path, table_id: str | None = None) -> Table:
    """Read a table written by :func:`table_to_csv` (labels side-car optional)."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    header, data_rows = rows[0], rows[1:]
    labels: list[str | None] = [None] * len(header)
    source = "csv"
    loaded_id = table_id or path.stem
    labels_path = path.with_suffix(path.suffix + ".labels.json")
    if labels_path.exists():
        payload = json.loads(labels_path.read_text())
        labels = payload.get("labels", labels)
        source = payload.get("source", source)
        loaded_id = table_id or payload.get("table_id", loaded_id)
    columns = []
    for index, name in enumerate(header):
        cells = [row[index] if index < len(row) else "" for row in data_rows]
        label = labels[index] if index < len(labels) else None
        columns.append(Column(name=name, cells=cells, label=label))
    return Table(table_id=loaded_id, columns=columns, source=source)


def corpus_to_directory(corpus: TableCorpus, directory: str | Path) -> Path:
    """Write every table of ``corpus`` as a CSV file plus a manifest."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    filenames = []
    for table in corpus.tables:
        filename = f"{table.table_id}.csv"
        table_to_csv(table, directory / filename)
        filenames.append(filename)
    manifest = {
        "name": corpus.name,
        "label_vocabulary": corpus.label_vocabulary,
        "tables": filenames,
    }
    (directory / "corpus.json").write_text(json.dumps(manifest, indent=2))
    return directory


def corpus_from_directory(directory: str | Path) -> TableCorpus:
    """Read a corpus previously written by :func:`corpus_to_directory`."""
    directory = Path(directory)
    manifest_path = directory / "corpus.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no corpus.json manifest in {directory}")
    manifest = json.loads(manifest_path.read_text())
    tables = [table_from_csv(directory / filename) for filename in manifest["tables"]]
    return TableCorpus(
        name=manifest.get("name", directory.name),
        tables=tables,
        label_vocabulary=list(manifest.get("label_vocabulary", [])),
    )
