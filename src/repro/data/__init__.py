"""Dataset substrate: table model, synthetic corpora, splits and metrics.

The paper evaluates on two corpora:

* **SemTab 2019** (rounds 1/3/4): 3,048 KG-derived tables, 7,587 columns,
  275 fine-grained column types, no numeric columns.
* **modified VizNet** (the Sato multi-column subset): 32,265 web tables,
  73,034 columns, 77 coarse column types, ~13 % numeric columns and weak KG
  coverage.

Neither corpus is available offline, so this package generates synthetic
corpora *from the synthetic knowledge graph* that reproduce the structural
properties the paper's analysis depends on (type granularity, numeric columns,
partial KG coverage, differing label granularity and corpus size).
"""

from repro.data.table import Column, Table
from repro.data.corpus import TableCorpus, CorpusSplits, stratified_split
from repro.data.metrics import (
    EvaluationResult,
    accuracy_score,
    classification_report,
    evaluate_predictions,
    weighted_f1_score,
)
from repro.data.semtab import SemTabConfig, SemTabGenerator
from repro.data.viznet import VizNetConfig, VizNetGenerator
from repro.data.io import (
    corpus_from_directory,
    corpus_to_directory,
    table_from_csv,
    table_to_csv,
)

__all__ = [
    "table_to_csv",
    "table_from_csv",
    "corpus_to_directory",
    "corpus_from_directory",
    "Column",
    "Table",
    "TableCorpus",
    "CorpusSplits",
    "stratified_split",
    "EvaluationResult",
    "accuracy_score",
    "weighted_f1_score",
    "classification_report",
    "evaluate_predictions",
    "SemTabConfig",
    "SemTabGenerator",
    "VizNetConfig",
    "VizNetGenerator",
]
