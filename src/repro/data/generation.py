"""Shared machinery for generating synthetic tables from the knowledge graph.

Both corpus generators (SemTab-style and VizNet-style) work the same way:

1. pick a *table topic* — which entity type the rows are about and which
   columns the table has;
2. sample row subject entities of that type from the :class:`KGWorld`;
3. render each cell either from the subject itself, from a related entity
   reached through a predicate, or from a literal attribute;
4. optionally corrupt cells (abbreviations, typos, case changes, unlinkable
   strings) to model the noisier web tables of VizNet.

The ground-truth label of each column is part of the topic definition, so the
type-granularity phenomenon is reproduced faithfully: a SemTab-style column of
cricketer names is labelled ``Cricketer`` while the corresponding VizNet-style
column is labelled simply ``name``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.data.table import Column, Table
from repro.kg.builder import KGWorld
from repro.kg.graph import KnowledgeGraph

__all__ = ["CellSource", "ColumnSpec", "TableTopic", "TableFactory", "NoiseModel"]


@dataclass(frozen=True)
class CellSource:
    """Describes how a cell is derived from the row's subject entity.

    ``kind`` is one of:

    * ``"self"`` — the subject's own label;
    * ``"related"`` — the label of an entity reached from the subject through
      ``predicate`` (outgoing edges first, then incoming);
    * ``"literal"`` — the literal attribute ``attribute`` of the subject;
    * ``"row_index"`` — a 1-based rank, for VizNet-style rank columns.
    """

    kind: str
    predicate: str | None = None
    attribute: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in {"self", "related", "literal", "row_index"}:
            raise ValueError(f"unknown cell source kind {self.kind!r}")
        if self.kind == "related" and not self.predicate:
            raise ValueError("related cell sources need a predicate")
        if self.kind == "literal" and not self.attribute:
            raise ValueError("literal cell sources need an attribute name")


@dataclass(frozen=True)
class ColumnSpec:
    """A column of a table topic: its ground-truth label and cell source."""

    label: str
    source: CellSource
    header: str = ""
    optional: bool = False
    linkable: bool = True
    include_probability: float = 0.85


@dataclass(frozen=True)
class TableTopic:
    """A family of tables about one subject type."""

    name: str
    subject_type: str
    columns: tuple[ColumnSpec, ...]
    weight: float = 1.0
    min_context_columns: int = 1


@dataclass
class NoiseModel:
    """Cell corruption model for web-table style corpora.

    Each probability is applied independently per cell; ``unlinkable_column``
    is applied per column and replaces every cell with strings that do not
    exist in the KG (modelling the large fraction of VizNet columns with no
    KG linkage at all).
    """

    abbreviation: float = 0.0
    typo: float = 0.0
    lowercase: float = 0.0
    drop_cell: float = 0.0
    unlinkable_column: float = 0.0

    def corrupt_cell(self, cell: str, rng: np.random.Generator, alias: str | None = None) -> str:
        if not cell:
            return cell
        if alias and rng.random() < self.abbreviation:
            cell = alias
        if rng.random() < self.typo and len(cell) > 3:
            position = int(rng.integers(1, len(cell) - 1))
            cell = cell[:position] + cell[position + 1 :]
        if rng.random() < self.lowercase:
            cell = cell.lower()
        if rng.random() < self.drop_cell:
            cell = ""
        return cell


class TableFactory:
    """Renders tables from topics against a :class:`KGWorld`."""

    def __init__(self, world: KGWorld, rng: np.random.Generator,
                 noise: NoiseModel | None = None):
        self.world = world
        self.graph: KnowledgeGraph = world.graph
        self.rng = rng
        self.noise = noise or NoiseModel()

    # ------------------------------------------------------------------ #
    def _related_entity(self, subject_id: str, predicate: str) -> str | None:
        outgoing = [t.object for t in self.graph.outgoing(subject_id) if t.predicate == predicate]
        if outgoing:
            return outgoing[int(self.rng.integers(0, len(outgoing)))]
        incoming = [t.subject for t in self.graph.incoming(subject_id) if t.predicate == predicate]
        if incoming:
            return incoming[int(self.rng.integers(0, len(incoming)))]
        return None

    def _render_cell(self, subject_id: str, source: CellSource, row_index: int
                     ) -> tuple[str, str | None]:
        """Return ``(cell_text, source_entity_id)`` for one cell."""
        if source.kind == "self":
            return self.graph.entity(subject_id).label, subject_id
        if source.kind == "related":
            related = self._related_entity(subject_id, source.predicate)
            if related is None:
                return "", None
            return self.graph.entity(related).label, related
        if source.kind == "literal":
            return self.world.literal(subject_id, source.attribute, default=""), None
        if source.kind == "row_index":
            return str(row_index + 1), None
        raise AssertionError(f"unhandled cell source {source.kind!r}")

    # ------------------------------------------------------------------ #
    def sample_subjects(self, subject_type: str, n_rows: int) -> list[str]:
        """Sample ``n_rows`` distinct subject entities of ``subject_type``."""
        pool = self.world.instances(subject_type)
        if not pool:
            raise ValueError(f"the synthetic world has no instances of type {subject_type!r}")
        if len(pool) >= n_rows:
            indices = self.rng.choice(len(pool), size=n_rows, replace=False)
        else:
            indices = self.rng.choice(len(pool), size=n_rows, replace=True)
        return [pool[int(i)] for i in indices]

    def build_table(
        self,
        table_id: str,
        topic: TableTopic,
        n_rows: int,
        max_columns: int | None = None,
        source: str = "synthetic",
    ) -> Table:
        """Render one table for ``topic`` with ``n_rows`` rows.

        Optional context columns are included independently with probability
        0.75 (subject columns are always included); the resulting column set
        is truncated to ``max_columns`` when given.
        """
        subjects = self.sample_subjects(topic.subject_type, n_rows)

        specs: list[ColumnSpec] = []
        for spec in topic.columns:
            if spec.optional and self.rng.random() > spec.include_probability:
                continue
            specs.append(spec)
        mandatory = [spec for spec in topic.columns if not spec.optional]
        if len(specs) < max(topic.min_context_columns, len(mandatory)):
            specs = list(topic.columns)
        if max_columns is not None and len(specs) > max_columns:
            keep = [spec for spec in specs if not spec.optional][:max_columns]
            for spec in specs:
                if len(keep) >= max_columns:
                    break
                if spec not in keep:
                    keep.append(spec)
            specs = keep

        columns: list[Column] = []
        for spec in specs:
            cells: list[str] = []
            entity_ids: list[str | None] = []
            make_unlinkable = (
                spec.linkable is False
                or (
                    spec.source.kind in ("self", "related")
                    and self.rng.random() < self.noise.unlinkable_column
                )
            )
            for row_index, subject_id in enumerate(subjects):
                cell, entity_id = self._render_cell(subject_id, spec.source, row_index)
                alias = None
                if entity_id is not None:
                    aliases = self.graph.entity(entity_id).aliases
                    alias = aliases[0] if aliases else None
                if make_unlinkable and spec.source.kind in ("self", "related"):
                    cell = self._unlinkable_variant(cell)
                    entity_id = None
                cell = self.noise.corrupt_cell(cell, self.rng, alias=alias)
                cells.append(cell)
                entity_ids.append(entity_id)
            columns.append(
                Column(name=spec.header, cells=cells, label=spec.label,
                       source_entity_ids=entity_ids)
            )
        return Table(table_id=table_id, columns=columns, source=source)

    # ------------------------------------------------------------------ #
    def _unlinkable_variant(self, cell: str) -> str:
        """Produce a string variant that will not match anything in the KG.

        This models the VizNet columns the paper describes as "typically hard
        to annotate": long composite strings, or short abbreviation codes.
        """
        if not cell:
            return cell
        if self.rng.random() < 0.5:
            words = cell.split()
            code = "".join(word[0].upper() for word in words if word)[:3]
            return code or cell[:2].upper()
        suffix = int(self.rng.integers(100, 999))
        return f"{cell.replace(' ', '_').lower()}_{suffix}"

    def pick_topic(self, topics: Sequence[TableTopic]) -> TableTopic:
        """Sample a topic proportionally to its weight."""
        weights = np.asarray([topic.weight for topic in topics], dtype=np.float64)
        weights /= weights.sum()
        index = int(self.rng.choice(len(topics), p=weights))
        return topics[index]
