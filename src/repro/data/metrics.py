"""Evaluation metrics: accuracy, weighted F1 and per-class reports.

These mirror the metrics reported in the paper's Table I (accuracy and
weighted F1, both expressed as percentages).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = [
    "accuracy_score",
    "weighted_f1_score",
    "classification_report",
    "evaluate_predictions",
    "EvaluationResult",
]


def accuracy_score(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    """Fraction of exact matches (0 when there are no samples)."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    if not y_true:
        return 0.0
    correct = sum(1 for truth, pred in zip(y_true, y_pred, strict=True) if truth == pred)
    return correct / len(y_true)


def _per_class_counts(y_true: Sequence[str], y_pred: Sequence[str]):
    true_positive: Counter = Counter()
    false_positive: Counter = Counter()
    false_negative: Counter = Counter()
    support: Counter = Counter()
    for truth, pred in zip(y_true, y_pred, strict=True):
        support[truth] += 1
        if truth == pred:
            true_positive[truth] += 1
        else:
            false_positive[pred] += 1
            false_negative[truth] += 1
    return true_positive, false_positive, false_negative, support


def weighted_f1_score(y_true: Sequence[str], y_pred: Sequence[str]) -> float:
    """Support-weighted mean of per-class F1 scores."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    if not y_true:
        return 0.0
    tp, fp, fn, support = _per_class_counts(y_true, y_pred)
    total = sum(support.values())
    weighted = 0.0
    for label, count in support.items():
        precision_den = tp[label] + fp[label]
        recall_den = tp[label] + fn[label]
        precision = tp[label] / precision_den if precision_den else 0.0
        recall = tp[label] / recall_den if recall_den else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        weighted += f1 * count / total
    return weighted


def classification_report(y_true: Sequence[str], y_pred: Sequence[str]) -> dict[str, dict[str, float]]:
    """Per-class precision / recall / F1 / support."""
    tp, fp, fn, support = _per_class_counts(y_true, y_pred)
    report: dict[str, dict[str, float]] = {}
    for label in sorted(support):
        precision_den = tp[label] + fp[label]
        recall_den = tp[label] + fn[label]
        precision = tp[label] / precision_den if precision_den else 0.0
        recall = tp[label] / recall_den if recall_den else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        report[label] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": float(support[label]),
        }
    return report


@dataclass
class EvaluationResult:
    """Accuracy and weighted F1 (stored as percentages, like the paper)."""

    accuracy: float
    weighted_f1: float
    num_columns: int
    per_class: dict[str, dict[str, float]] = field(default_factory=dict)

    def as_row(self) -> dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "weighted_f1": self.weighted_f1,
            "num_columns": float(self.num_columns),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"accuracy={self.accuracy:.2f} weighted_f1={self.weighted_f1:.2f} "
            f"(n={self.num_columns})"
        )


def evaluate_predictions(
    y_true: Sequence[str], y_pred: Sequence[str], include_report: bool = False
) -> EvaluationResult:
    """Bundle accuracy and weighted F1 (as percentages) into a result object."""
    result = EvaluationResult(
        accuracy=100.0 * accuracy_score(y_true, y_pred),
        weighted_f1=100.0 * weighted_f1_score(y_true, y_pred),
        num_columns=len(y_true),
    )
    if include_report:
        result.per_class = classification_report(y_true, y_pred)
    return result
