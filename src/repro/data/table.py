"""Relational table data model used throughout the reproduction.

A :class:`Table` is a list of :class:`Column` objects of equal length.  Every
column carries its ground-truth semantic type label (the prediction target of
the column-type annotation task) and optionally the KG entity ids its cells
were generated from, which the corpus statistics and some tests use as an
oracle but which no model is allowed to read.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterator, Sequence

from repro.text.ner import EntitySchema, detect_schema

__all__ = ["Column", "Table"]


@dataclass
class Column:
    """A single table column.

    Parameters
    ----------
    name:
        Header string (may be empty — web tables frequently lack headers).
    cells:
        Cell mention strings, one per row.
    label:
        Ground-truth semantic type, e.g. ``"Cricketer"`` or ``"city"``.
    source_entity_ids:
        Optional KG entity ids the cells were generated from (oracle only).
    """

    name: str
    cells: list[str]
    label: str | None = None
    source_entity_ids: list[str | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.cells = [str(cell) for cell in self.cells]
        if self.source_entity_ids and len(self.source_entity_ids) != len(self.cells):
            raise ValueError("source_entity_ids must be empty or match the number of cells")

    def __len__(self) -> int:
        return len(self.cells)

    def is_numeric(self) -> bool:
        """A column is numeric when *all* of its non-empty cells are numbers.

        This matches the paper's definition used for Table III: "If all cells
        from a column are numeric, we classify this column as numeric".
        """
        non_empty = [cell for cell in self.cells if cell.strip()]
        if not non_empty:
            return False
        return all(detect_schema(cell) == EntitySchema.NUMBER for cell in non_empty)

    def schema_profile(self) -> dict[EntitySchema, int]:
        """Histogram of cell schema categories (useful for statistics)."""
        profile: dict[EntitySchema, int] = {}
        for cell in self.cells:
            schema = detect_schema(cell)
            profile[schema] = profile.get(schema, 0) + 1
        return profile

    def truncated(self, max_rows: int) -> Column:
        """Return a copy keeping only the first ``max_rows`` cells."""
        return replace(
            self,
            cells=list(self.cells[:max_rows]),
            source_entity_ids=list(self.source_entity_ids[:max_rows]),
        )


@dataclass
class Table:
    """A relational table with labelled columns."""

    table_id: str
    columns: list[Column]
    source: str = "synthetic"

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a table must have at least one column")
        lengths = {len(column) for column in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"all columns must have the same length, got {sorted(lengths)}")

    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return len(self.columns[0])

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def cell(self, row: int, col: int) -> str:
        """Return the mention at ``(row, col)``."""
        return self.columns[col].cells[row]

    def row(self, row: int) -> list[str]:
        """Return all mentions of one row."""
        return [column.cells[row] for column in self.columns]

    def iter_rows(self) -> Iterator[list[str]]:
        for row in range(self.n_rows):
            yield self.row(row)

    def labels(self) -> list[str | None]:
        """Ground-truth labels of all columns (in column order)."""
        return [column.label for column in self.columns]

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    # ------------------------------------------------------------------ #
    def with_rows(self, row_indices: Sequence[int]) -> Table:
        """Return a new table containing only the given rows (in order)."""
        new_columns = []
        for column in self.columns:
            new_columns.append(
                Column(
                    name=column.name,
                    cells=[column.cells[i] for i in row_indices],
                    label=column.label,
                    source_entity_ids=(
                        [column.source_entity_ids[i] for i in row_indices]
                        if column.source_entity_ids
                        else []
                    ),
                )
            )
        return Table(table_id=self.table_id, columns=new_columns, source=self.source)

    def truncated(self, max_rows: int) -> Table:
        """Return a copy keeping only the first ``max_rows`` rows."""
        return Table(
            table_id=self.table_id,
            columns=[column.truncated(max_rows) for column in self.columns],
            source=self.source,
        )

    def split_columns(self, max_columns: int) -> list[Table]:
        """Split into several tables of at most ``max_columns`` columns.

        The paper imposes a maximum of 8 columns per table: "If a table
        contains more than 8 columns, we divide it into multiple tables ...
        and conduct the encoding and annotation process separately."
        """
        if self.n_columns <= max_columns:
            return [self]
        pieces = []
        for start in range(0, self.n_columns, max_columns):
            chunk = self.columns[start : start + max_columns]
            pieces.append(
                Table(
                    table_id=f"{self.table_id}#part{start // max_columns}",
                    columns=chunk,
                    source=self.source,
                )
            )
        return pieces

    def describe(self) -> dict[str, object]:
        """Lightweight summary used by corpus statistics."""
        return {
            "table_id": self.table_id,
            "n_rows": self.n_rows,
            "n_columns": self.n_columns,
            "labels": self.labels(),
            "numeric_columns": sum(1 for column in self.columns if column.is_numeric()),
        }
