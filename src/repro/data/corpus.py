"""Table corpora and stratified train/validation/test splitting."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

import numpy as np

from repro.data.table import Table

__all__ = ["TableCorpus", "CorpusSplits", "stratified_split"]


@dataclass
class TableCorpus:
    """A named collection of labelled tables plus its label vocabulary."""

    name: str
    tables: list[Table]
    label_vocabulary: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.label_vocabulary:
            labels = sorted(
                {column.label for table in self.tables for column in table.columns
                 if column.label is not None}
            )
            self.label_vocabulary = labels
        self._label_to_index = {label: index for index, label in enumerate(self.label_vocabulary)}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables)

    @property
    def num_columns(self) -> int:
        return sum(table.n_columns for table in self.tables)

    @property
    def num_labels(self) -> int:
        return len(self.label_vocabulary)

    def label_index(self, label: str) -> int:
        """Integer id of a label (raises ``KeyError`` for unknown labels)."""
        return self._label_to_index[label]

    def index_label(self, index: int) -> str:
        return self.label_vocabulary[index]

    def label_counts(self) -> Counter:
        """Number of columns per ground-truth label."""
        counts: Counter = Counter()
        for table in self.tables:
            for column in table.columns:
                if column.label is not None:
                    counts[column.label] += 1
        return counts

    def statistics(self) -> dict[str, float]:
        """Corpus statistics in the style of the paper's Section IV-A."""
        numeric = sum(
            1 for table in self.tables for column in table.columns if column.is_numeric()
        )
        total_columns = self.num_columns
        return {
            "tables": len(self.tables),
            "columns": total_columns,
            "labels": self.num_labels,
            "avg_rows_per_table": (
                float(np.mean([table.n_rows for table in self.tables])) if self.tables else 0.0
            ),
            "avg_columns_per_table": (
                float(np.mean([table.n_columns for table in self.tables])) if self.tables else 0.0
            ),
            "numeric_columns": numeric,
            "numeric_column_fraction": numeric / total_columns if total_columns else 0.0,
        }

    def subset(self, table_ids: Iterable[str], name_suffix: str = "subset") -> TableCorpus:
        """Corpus restricted to the given table ids (label vocabulary preserved)."""
        wanted = set(table_ids)
        return TableCorpus(
            name=f"{self.name}-{name_suffix}",
            tables=[table for table in self.tables if table.table_id in wanted],
            label_vocabulary=list(self.label_vocabulary),
        )


@dataclass
class CorpusSplits:
    """Train / validation / test corpora produced by :func:`stratified_split`."""

    train: TableCorpus
    validation: TableCorpus
    test: TableCorpus

    def subsample_train(self, proportion: float, seed: int = 0) -> CorpusSplits:
        """Keep only a fraction ``p`` of the training tables (Figure 9 experiment).

        The validation and test corpora are left untouched, exactly as the
        paper describes: "the total amount of data would be 0.2 times the
        actual amount while the testing set remains unchanged".
        """
        if not 0.0 < proportion <= 1.0:
            raise ValueError("proportion must lie in (0, 1]")
        rng = np.random.default_rng(seed)
        tables = list(self.train.tables)
        keep = max(1, int(round(len(tables) * proportion)))
        indices = rng.permutation(len(tables))[:keep]
        subset = [tables[i] for i in sorted(indices)]
        train = TableCorpus(
            name=f"{self.train.name}-p{proportion:.1f}",
            tables=subset,
            label_vocabulary=list(self.train.label_vocabulary),
        )
        return CorpusSplits(train=train, validation=self.validation, test=self.test)


def _dominant_label(table: Table) -> str:
    """The most frequent column label of a table (used to stratify)."""
    labels = [column.label for column in table.columns if column.label is not None]
    if not labels:
        return "__unlabelled__"
    counts = Counter(labels)
    return counts.most_common(1)[0][0]


def stratified_split(
    corpus: TableCorpus,
    proportions: tuple[float, float, float] = (0.7, 0.1, 0.2),
    seed: int = 13,
) -> CorpusSplits:
    """Split a corpus into train/validation/test keeping per-class proportions.

    The paper uses a 7:1:2 split and "maintained the original sample
    proportion of each class in all splits".  Tables are grouped by their
    dominant column label and each group is split with the same ratios.
    """
    if len(proportions) != 3 or abs(sum(proportions) - 1.0) > 1e-9:
        raise ValueError("proportions must be three values summing to 1")
    rng = np.random.default_rng(seed)

    groups: dict[str, list[Table]] = defaultdict(list)
    for table in corpus.tables:
        groups[_dominant_label(table)].append(table)

    train_tables: list[Table] = []
    valid_tables: list[Table] = []
    test_tables: list[Table] = []
    for label in sorted(groups):
        tables = groups[label]
        order = rng.permutation(len(tables))
        shuffled = [tables[i] for i in order]
        n = len(shuffled)
        n_train = int(round(n * proportions[0]))
        n_valid = int(round(n * proportions[1]))
        # Guarantee at least one test table per class when the class has >= 3 tables.
        n_train = min(n_train, n)
        n_valid = min(n_valid, n - n_train)
        train_tables.extend(shuffled[:n_train])
        valid_tables.extend(shuffled[n_train : n_train + n_valid])
        test_tables.extend(shuffled[n_train + n_valid :])

    vocabulary = list(corpus.label_vocabulary)
    return CorpusSplits(
        train=TableCorpus(f"{corpus.name}-train", train_tables, vocabulary),
        validation=TableCorpus(f"{corpus.name}-validation", valid_tables, vocabulary),
        test=TableCorpus(f"{corpus.name}-test", test_tables, vocabulary),
    )
