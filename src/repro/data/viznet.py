"""Synthetic VizNet-style (Sato multi-column subset) corpus generator.

The modified VizNet corpus used by the paper consists of noisy multi-column
web tables annotated with 77 **coarse** semantic types (``name``, ``team``,
``year``, ``rank`` ...).  Compared with SemTab it is larger, its labels are
much coarser (producing the *type granularity gap*), roughly 12.8 % of its
columns are numeric (unlinkable to the KG) and a large share of its remaining
columns cannot be linked either because the cells are abbreviations, codes or
free text.

The generator reproduces these properties: topics reuse the same synthetic KG
entities but label columns with coarse Sato-style types, add numeric and date
columns from literal attributes, and corrupt a fraction of cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.corpus import TableCorpus
from repro.data.generation import CellSource, ColumnSpec, NoiseModel, TableFactory, TableTopic
from repro.data.table import Table
from repro.kg.builder import KGWorld
from repro.kg.graph import Predicates as P

__all__ = ["VizNetConfig", "VizNetGenerator", "VIZNET_TOPICS"]


def _self(label: str, header: str = "") -> ColumnSpec:
    return ColumnSpec(label=label, source=CellSource("self"), header=header)


def _rel(label: str, predicate: str, header: str = "", optional: bool = True) -> ColumnSpec:
    return ColumnSpec(label=label, source=CellSource("related", predicate=predicate),
                      header=header, optional=optional)


def _lit(label: str, attribute: str, header: str = "", optional: bool = True) -> ColumnSpec:
    return ColumnSpec(label=label, source=CellSource("literal", attribute=attribute),
                      header=header, optional=optional, linkable=False,
                      include_probability=0.45)


def _rank(header: str = "rank") -> ColumnSpec:
    return ColumnSpec(label="rank", source=CellSource("row_index"), header=header,
                      optional=True, linkable=False, include_probability=0.4)


VIZNET_TOPICS: tuple[TableTopic, ...] = (
    TableTopic("basketball roster", "Basketball player", (
        _self("name", "player"), _rel("team", P.MEMBER_OF, "team"),
        _rel("position", P.POSITION, "pos"), _lit("weight", "weight_kg", "wt"),
        _rank(),
    ), weight=2.0),
    TableTopic("cricket roster", "Cricketer", (
        _self("name", "player"), _rel("team", P.MEMBER_OF, "team"),
        _lit("birthDate", "birth_date", "born"), _lit("birthDate", "death_date", "died"),
    ), weight=2.0),
    TableTopic("football squad", "Footballer", (
        _self("name", "player"), _rel("club", P.MEMBER_OF, "club"),
        _rel("position", P.POSITION, "position"), _rel("nationality", P.CITIZENSHIP, "nation"),
    ), weight=2.0),
    TableTopic("athlete statistics", "Basketball player", (
        _self("name", "player"), _lit("plays", "career_points", "pts"),
        _lit("weight", "weight_kg", "kg"), _rank(),
    )),
    TableTopic("music chart", "Album", (
        _self("album", "album"), _rel("artist", P.PERFORMER, "artist"),
        _rel("genre", P.GENRE, "genre"), _lit("year", "publication_year", "year"),
        _rank("#"),
    ), weight=2.0),
    TableTopic("song list", "Song", (
        _self("name", "title"), _rel("artist", P.PERFORMER, "artist"),
        _rel("genre", P.GENRE, "genre"), _lit("duration", "duration_s", "sec"),
    ), weight=1.5),
    TableTopic("artist directory", "Musician", (
        _self("artist", "artist"), _rel("genre", P.GENRE, "genre"),
        _rel("company", P.RECORD_LABEL, "label"), _rel("nationality", P.CITIZENSHIP, "country"),
    ), weight=1.5),
    TableTopic("film catalogue", "Film", (
        _self("name", "title"), _rel("director", P.DIRECTOR, "director"),
        _rel("genre", P.GENRE, "genre"), _lit("year", "publication_year", "year"),
        _lit("duration", "duration_min", "min"),
    ), weight=1.5),
    TableTopic("book catalogue", "Book", (
        _self("name", "title"), _rel("creator", P.AUTHOR, "author"),
        _rel("genre", P.GENRE, "genre"), _lit("year", "publication_year", "year"),
    )),
    TableTopic("city statistics", "City", (
        _self("city", "city"), _rel("country", P.COUNTRY, "country"),
        _lit("population", "population", "pop"), _lit("elevation", "elevation_m", "elev"),
    ), weight=1.5),
    TableTopic("country facts", "Country", (
        _self("country", "country"), _rel("continent", P.PART_OF, "continent"),
        _rel("language", P.LANGUAGE, "language"), _rel("currency", P.CURRENCY, "currency"),
        _lit("population", "population", "pop"),
    )),
    TableTopic("club table", "Sports team", (
        _self("team", "club"), _rel("city", P.LOCATED_IN, "city"),
        _lit("year", "founded", "founded"), _rank("pos"),
    ), weight=1.5),
    TableTopic("league standings", "Football club", (
        _self("club", "club"), _rel("city", P.LOCATED_IN, "city"),
        _rank("pos"), _lit("year", "founded", "est"),
    )),
    TableTopic("company list", "Company", (
        _self("company", "company"), _rel("industry", P.INDUSTRY, "industry"),
        _rel("city", P.HEADQUARTERS, "hq"), _lit("sales", "revenue_musd", "revenue"),
        _lit("year", "founded", "founded"),
    )),
    TableTopic("university list", "University", (
        _self("organisation", "institution"), _rel("city", P.LOCATED_IN, "city"),
        _lit("year", "established", "est"), _lit("capacity", "students", "students"),
    )),
    TableTopic("people directory", "Human", (
        _self("person", "name"), _rel("nationality", P.CITIZENSHIP, "nationality"),
        _lit("birthDate", "birth_date", "born"),
    )),
    TableTopic("protein table", "Protein", (
        _self("name", "protein"), _rel("symbol", P.ENCODED_BY, "gene"),
        _rel("species", P.FOUND_IN_TAXON, "species"), _lit("weight", "mass_kda", "kDa"),
    )),
    TableTopic("river table", "River", (
        _self("name", "river"), _rel("country", P.COUNTRY, "country"),
        _lit("area", "length_km", "km"),
    )),
    TableTopic("mountain table", "Mountain", (
        _self("name", "peak"), _rel("country", P.COUNTRY, "country"),
        _lit("elevation", "elevation_m", "m"),
    )),
    TableTopic("stadium list", "Stadium", (
        _self("location", "venue"), _rel("city", P.LOCATED_IN, "city"),
        _lit("capacity", "capacity", "capacity"),
    )),
    TableTopic("code reference", "Player position", (
        ColumnSpec(label="code", source=CellSource("self"), header="code", linkable=False),
        _rel("category", P.PART_OF, "sport", optional=False),
    )),
    TableTopic("gene reference", "Gene", (
        _self("symbol", "symbol"), _rel("species", P.FOUND_IN_TAXON, "organism"),
    )),
)


@dataclass
class VizNetConfig:
    """Size and shape of the synthetic VizNet-style corpus.

    The real multi-column subset has 32,265 tables with on average 20 rows and
    2.3 columns; the default here is a scaled-down corpus with the same
    per-table shape and noise profile, several times larger than the SemTab
    corpus (as in the paper).
    """

    num_tables: int = 600
    min_rows: int = 4
    max_rows: int = 16
    max_columns: int = 5
    seed: int = 202
    name: str = "viznet"
    noise: NoiseModel = field(
        default_factory=lambda: NoiseModel(
            abbreviation=0.20, typo=0.06, lowercase=0.30, drop_cell=0.02,
            unlinkable_column=0.45,
        )
    )

    def __post_init__(self) -> None:
        if self.num_tables <= 0:
            raise ValueError("num_tables must be positive")
        if not 0 < self.min_rows <= self.max_rows:
            raise ValueError("row bounds must satisfy 0 < min_rows <= max_rows")


class VizNetGenerator:
    """Generate a VizNet-style corpus from the synthetic knowledge graph."""

    def __init__(self, world: KGWorld, config: VizNetConfig | None = None):
        self.world = world
        self.config = config or VizNetConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.factory = TableFactory(world, self.rng, noise=self.config.noise)
        self.topics = tuple(
            topic for topic in VIZNET_TOPICS if world.instances(topic.subject_type)
        )
        if not self.topics:
            raise ValueError("the synthetic world has no instances for any VizNet topic")

    def generate(self) -> TableCorpus:
        """Generate the corpus."""
        tables: list[Table] = []
        for index in range(self.config.num_tables):
            topic = self.factory.pick_topic(self.topics)
            n_rows = int(self.rng.integers(self.config.min_rows, self.config.max_rows + 1))
            table = self.factory.build_table(
                table_id=f"{self.config.name}-{index:05d}",
                topic=topic,
                n_rows=n_rows,
                max_columns=self.config.max_columns,
                source=self.config.name,
            )
            tables.append(table)
        return TableCorpus(name=self.config.name, tables=tables)
