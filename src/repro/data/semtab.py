"""Synthetic SemTab-style corpus generator.

The real SemTab 2019 corpus (rounds 1/3/4) is derived from Wikipedia/DBpedia:
its tables are extracted from the knowledge graph, cell mentions are clean
entity labels, there are **no numeric columns**, and the 275 column types are
fine grained (``Cricketer``, ``Film``, ``Protein`` ...).  The generator below
reproduces those structural properties against the synthetic KG: every column
is an entity column whose cells are KG entity labels, and the ground-truth
labels are the fine-grained types of the synthetic world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import TableCorpus
from repro.data.generation import CellSource, ColumnSpec, NoiseModel, TableFactory, TableTopic
from repro.data.table import Table
from repro.kg.builder import KGWorld
from repro.kg.graph import Predicates as P

__all__ = ["SemTabConfig", "SemTabGenerator", "SEMTAB_TOPICS"]


def _self(label: str) -> ColumnSpec:
    return ColumnSpec(label=label, source=CellSource("self"), header="")


def _rel(label: str, predicate: str, optional: bool = True) -> ColumnSpec:
    return ColumnSpec(label=label, source=CellSource("related", predicate=predicate),
                      header="", optional=optional)


SEMTAB_TOPICS: tuple[TableTopic, ...] = (
    TableTopic("cricketers", "Cricketer", (
        _self("Cricketer"), _rel("Cricket team", P.MEMBER_OF),
        _rel("Country", P.CITIZENSHIP), _rel("Player position", P.POSITION),
    ), weight=2.0),
    TableTopic("basketball players", "Basketball player", (
        _self("Basketball player"), _rel("Basketball team", P.MEMBER_OF),
        _rel("Country", P.CITIZENSHIP), _rel("Player position", P.POSITION),
    ), weight=2.0),
    TableTopic("footballers", "Footballer", (
        _self("Footballer"), _rel("Football club", P.MEMBER_OF),
        _rel("Country", P.CITIZENSHIP), _rel("Player position", P.POSITION),
    ), weight=2.0),
    TableTopic("tennis players", "Tennis player", (
        _self("Tennis player"), _rel("Country", P.CITIZENSHIP),
        _rel("Sport", P.SPORT),
    )),
    TableTopic("baseball players", "Baseball player", (
        _self("Baseball player"), _rel("Sports team", P.MEMBER_OF),
        _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("hockey players", "Ice hockey player", (
        _self("Ice hockey player"), _rel("Sports team", P.MEMBER_OF),
        _rel("Player position", P.POSITION),
    )),
    TableTopic("swimmers", "Swimmer", (
        _self("Swimmer"), _rel("Country", P.CITIZENSHIP), _rel("Sport", P.SPORT),
    )),
    TableTopic("musicians", "Musician", (
        _self("Musician"), _rel("Music genre", P.GENRE),
        _rel("Record label", P.RECORD_LABEL), _rel("Country", P.CITIZENSHIP),
    ), weight=1.5),
    TableTopic("singers", "Singer", (
        _self("Singer"), _rel("Music genre", P.GENRE), _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("composers", "Composer", (
        _self("Composer"), _rel("Music genre", P.GENRE), _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("guitarists", "Guitarist", (
        _self("Guitarist"), _rel("Music genre", P.GENRE),
        _rel("Record label", P.RECORD_LABEL),
    )),
    TableTopic("actors", "Actor", (
        _self("Actor"), _rel("Film", P.CAST_MEMBER), _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("directors", "Film director", (
        _self("Film director"), _rel("Film", P.DIRECTOR), _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("politicians", "Politician", (
        _self("Politician"), _rel("Country", P.CITIZENSHIP), _rel("Award", P.AWARD_RECEIVED),
    )),
    TableTopic("scientists", "Scientist", (
        _self("Scientist"), _rel("University", P.EDUCATED_AT), _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("writers", "Writer", (
        _self("Writer"), _rel("Book", P.AUTHOR), _rel("Country", P.CITIZENSHIP),
    )),
    TableTopic("films", "Film", (
        _self("Film"), _rel("Film director", P.DIRECTOR), _rel("Film genre", P.GENRE),
        _rel("Actor", P.CAST_MEMBER),
    ), weight=1.5),
    TableTopic("albums", "Album", (
        _self("Album"), _rel("Musician", P.PERFORMER), _rel("Music genre", P.GENRE),
        _rel("Record label", P.RECORD_LABEL),
    ), weight=1.5),
    TableTopic("songs", "Song", (
        _self("Song"), _rel("Musician", P.PERFORMER), _rel("Music genre", P.GENRE),
    )),
    TableTopic("books", "Book", (
        _self("Book"), _rel("Writer", P.AUTHOR), _rel("Literary genre", P.GENRE),
    )),
    TableTopic("cities", "City", (
        _self("City"), _rel("Country", P.COUNTRY),
    ), weight=1.5),
    TableTopic("capitals", "Capital city", (
        _self("Capital city"), _rel("Country", P.CAPITAL_OF),
    )),
    TableTopic("countries", "Country", (
        _self("Country"), _rel("Continent", P.PART_OF), _rel("Language", P.LANGUAGE),
        _rel("Currency", P.CURRENCY),
    )),
    TableTopic("rivers", "River", (
        _self("River"), _rel("Country", P.COUNTRY),
    )),
    TableTopic("mountains", "Mountain", (
        _self("Mountain"), _rel("Country", P.COUNTRY),
    )),
    TableTopic("cricket teams", "Cricket team", (
        _self("Cricket team"), _rel("City", P.LOCATED_IN), _rel("Sport", P.SPORT),
        _rel("Stadium", P.HOME_VENUE),
    )),
    TableTopic("football clubs", "Football club", (
        _self("Football club"), _rel("City", P.LOCATED_IN), _rel("Sports league", P.LEAGUE),
        _rel("Stadium", P.HOME_VENUE),
    )),
    TableTopic("basketball teams", "Basketball team", (
        _self("Basketball team"), _rel("City", P.LOCATED_IN), _rel("Stadium", P.HOME_VENUE),
    )),
    TableTopic("generic teams", "Sports team", (
        _self("Sports team"), _rel("Sport", P.SPORT), _rel("City", P.LOCATED_IN),
    )),
    TableTopic("companies", "Company", (
        _self("Company"), _rel("Industry", P.INDUSTRY), _rel("City", P.HEADQUARTERS),
    )),
    TableTopic("universities", "University", (
        _self("University"), _rel("City", P.LOCATED_IN),
    )),
    TableTopic("stadiums", "Stadium", (
        _self("Stadium"), _rel("City", P.LOCATED_IN),
    )),
    TableTopic("proteins", "Protein", (
        _self("Protein"), _rel("Gene", P.ENCODED_BY), _rel("Taxon", P.FOUND_IN_TAXON),
    ), weight=1.5),
    TableTopic("enzymes", "Enzyme", (
        _self("Enzyme"), _rel("Gene", P.ENCODED_BY), _rel("Taxon", P.FOUND_IN_TAXON),
    )),
    TableTopic("genes", "Gene", (
        _self("Gene"), _rel("Taxon", P.FOUND_IN_TAXON),
    )),
)


@dataclass
class SemTabConfig:
    """Size and shape of the synthetic SemTab-style corpus.

    Defaults are a scaled-down version of the real corpus (3,048 tables with
    on average 69 rows and 4.5 columns) that keeps experiments fast while
    preserving the statistics the paper's analysis relies on.
    """

    num_tables: int = 240
    min_rows: int = 6
    max_rows: int = 24
    max_columns: int = 6
    seed: int = 101
    name: str = "semtab"

    def __post_init__(self) -> None:
        if self.num_tables <= 0:
            raise ValueError("num_tables must be positive")
        if not 0 < self.min_rows <= self.max_rows:
            raise ValueError("row bounds must satisfy 0 < min_rows <= max_rows")


class SemTabGenerator:
    """Generate a SemTab-style corpus from the synthetic knowledge graph."""

    def __init__(self, world: KGWorld, config: SemTabConfig | None = None):
        self.world = world
        self.config = config or SemTabConfig()
        self.rng = np.random.default_rng(self.config.seed)
        # Clean KG-derived cells: no corruption at all.
        self.factory = TableFactory(world, self.rng, noise=NoiseModel())
        self.topics = tuple(
            topic for topic in SEMTAB_TOPICS if world.instances(topic.subject_type)
        )
        if not self.topics:
            raise ValueError("the synthetic world has no instances for any SemTab topic")

    def generate(self) -> TableCorpus:
        """Generate the corpus."""
        tables: list[Table] = []
        for index in range(self.config.num_tables):
            topic = self.factory.pick_topic(self.topics)
            n_rows = int(self.rng.integers(self.config.min_rows, self.config.max_rows + 1))
            table = self.factory.build_table(
                table_id=f"{self.config.name}-{index:05d}",
                topic=topic,
                n_rows=n_rows,
                max_columns=self.config.max_columns,
                source=self.config.name,
            )
            tables.append(table)
        return TableCorpus(name=self.config.name, tables=tables)
