"""Synthetic WikiData-style knowledge graph construction.

The paper's Part 1 relies on structural properties of WikiData:

* instance entities (people, films, cities, proteins, ...) carry an
  ``instance_of`` edge to a *coarse* type entity (e.g. every person is an
  instance of ``Human``);
* the *fine-grained* type the annotation task actually wants (``Cricketer``,
  ``Musician``, ``Film``...) appears in the **one-hop neighbourhood** of the
  instance — through ``occupation``, ``genre``, ``sport`` or similar edges —
  rather than in the ``instance_of`` type attribute;
* entities mentioned in the same table row tend to be connected (a player and
  their team, an album and its performer), which is what the overlapping
  score exploits.

:class:`SyntheticKGBuilder` constructs a world with exactly these properties.
The resulting :class:`KGWorld` also records, outside the graph, the literal
attributes (dates, populations, masses...) used by the dataset generators to
produce numeric and date context columns that cannot be linked to the KG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph, Predicates
from repro.text.ner import EntitySchema

__all__ = ["KGWorldConfig", "KGWorld", "SyntheticKGBuilder", "build_default_kg"]


# --------------------------------------------------------------------------- #
# name material
# --------------------------------------------------------------------------- #
GIVEN_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Peter",
    "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
    "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa", "Edward",
    "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Laura",
    "Jeffrey", "Sharon", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary",
    "Amy", "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna",
    "Stephen", "Ruth", "Larry", "Brenda", "Justin", "Pamela", "Scott",
    "Nicole", "Brandon", "Katherine", "Benjamin", "Samantha", "Samuel",
    "Christine", "Gregory", "Emma", "Alexander", "Catherine", "Patrick",
    "Virginia", "Frank", "Rachel", "Raymond", "Carolyn", "Jack", "Janet",
    "Dennis", "Maria", "Jerry", "Heather", "Tyler", "Diane", "Aaron", "Olivia",
    "Wilfred", "Walter", "Liam", "Sophia", "Lucas", "Grace", "Harold", "Alice",
]

SURNAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Blackburn", "Birkett", "Birch", "Steele",
    "Westbrook", "Holloway", "Pemberton", "Ashworth", "Fairchild", "Whitaker",
    "Lockwood", "Harrington", "Stanton", "Mercer", "Chandler", "Donovan",
    "Ellington", "Falkner", "Granger", "Huxley", "Irving", "Jardine",
    "Kestrel", "Langford", "Mansfield", "Norwood", "Ormond", "Prescott",
    "Quimby", "Radcliffe", "Sinclair", "Thackeray", "Underhill", "Vance",
    "Wexford", "Yardley", "Abernathy", "Bancroft", "Carmichael", "Dunmore",
]

COUNTRY_NAMES = [
    "Australia", "Brazil", "Canada", "Denmark", "Egypt", "France", "Germany",
    "Hungary", "India", "Japan", "Kenya", "Luxembourg", "Mexico", "Norway",
    "Oman", "Portugal", "Qatar", "Romania", "Spain", "Thailand", "Uruguay",
    "Vietnam", "Wales", "Zambia", "Argentina", "Belgium", "Chile", "Estonia",
    "Finland", "Greece", "Ireland", "Jamaica", "Latvia", "Morocco",
    "Netherlands", "Peru", "Sweden", "Turkey", "Ukraine", "Zimbabwe",
]

CONTINENT_NAMES = ["Europe", "Asia", "Africa", "Oceania", "South America", "North America"]

CITY_STEMS = [
    "River", "Lake", "Stone", "Oak", "Maple", "Cedar", "Pine", "Ash", "Elm",
    "Birch", "Falcon", "Eagle", "Harbor", "Summer", "Winter", "Spring",
    "Autumn", "North", "South", "East", "West", "Silver", "Golden", "Iron",
    "Copper", "Crystal", "Misty", "Sunny", "Windy", "Rocky", "Green", "White",
    "Black", "Red", "Blue", "Grand", "Little", "Upper", "Lower", "New",
]
CITY_SUFFIXES = ["ton", "ville", "field", "burg", "ford", "haven", "port", "wood", "dale", "mouth"]

LANGUAGE_NAMES = [
    "English", "Spanish", "French", "German", "Portuguese", "Japanese",
    "Hindi", "Arabic", "Swahili", "Dutch", "Norwegian", "Greek", "Turkish",
    "Thai", "Vietnamese", "Romanian", "Hungarian", "Finnish", "Swedish",
    "Ukrainian",
]

CURRENCY_NAMES = [
    "Dollar", "Euro", "Yen", "Pound", "Franc", "Krone", "Peso", "Rupee",
    "Real", "Rand", "Dirham", "Baht", "Dong", "Leu", "Forint", "Krona",
    "Hryvnia", "Shilling", "Dinar", "Riyal",
]

SPORT_NAMES = [
    "Cricket", "Basketball", "Association football", "Tennis", "Baseball",
    "Ice hockey", "Rugby", "Volleyball", "Golf", "Swimming",
]

SPORT_POSITIONS = {
    "Cricket": ["Batsman", "Bowler", "Wicket-keeper", "All-rounder"],
    "Basketball": ["Point guard", "Shooting guard", "Small forward", "Power forward", "Center"],
    "Association football": ["Goalkeeper", "Defender", "Midfielder", "Forward", "Striker"],
    "Tennis": ["Singles specialist", "Doubles specialist"],
    "Baseball": ["Pitcher", "Catcher", "Shortstop", "Outfielder"],
    "Ice hockey": ["Goaltender", "Defenceman", "Winger", "Centre"],
    "Rugby": ["Fly-half", "Scrum-half", "Hooker", "Fullback"],
    "Volleyball": ["Setter", "Libero", "Outside hitter"],
    "Golf": ["Professional golfer"],
    "Swimming": ["Freestyle swimmer", "Butterfly swimmer"],
}

TEAM_MASCOTS = [
    "Tigers", "Lions", "Hawks", "Wolves", "Bears", "Eagles", "Sharks",
    "Panthers", "Falcons", "Dragons", "Knights", "Rovers", "Wanderers",
    "United", "Athletic", "Rangers", "Royals", "Titans", "Comets", "Storm",
]

MUSIC_GENRES = [
    "Rock music", "Jazz", "Classical music", "Hip hop", "Electronic music",
    "Folk music", "Blues", "Reggae", "Heavy metal", "Pop music", "Gothic metal",
    "Country music", "Soul music", "Punk rock", "Ambient music",
]

FILM_GENRES = [
    "Drama film", "Comedy film", "Action film", "Documentary film",
    "Science fiction film", "Horror film", "Romance film", "Thriller film",
    "Animated film", "Western film",
]

BOOK_GENRES = [
    "Mystery novel", "Historical novel", "Fantasy novel", "Biography",
    "Poetry collection", "Short story collection", "Travel literature",
]

INDUSTRY_NAMES = [
    "Software", "Banking", "Aerospace", "Pharmaceuticals", "Retail",
    "Telecommunications", "Automotive", "Energy", "Logistics", "Insurance",
]

ADJECTIVES = [
    "Silent", "Crimson", "Endless", "Broken", "Golden", "Hidden", "Burning",
    "Frozen", "Distant", "Electric", "Velvet", "Hollow", "Radiant", "Savage",
    "Gentle", "Midnight", "Scarlet", "Wandering", "Forgotten", "Rising",
]

NOUNS = [
    "Horizon", "Garden", "Empire", "Mirror", "Harvest", "Voyage", "Shadow",
    "Symphony", "River", "Promise", "Echo", "Lantern", "Compass", "Monarch",
    "Avalanche", "Fortress", "Meadow", "Oracle", "Tempest", "Carousel",
]

AMINO_PREFIXES = ["KL", "TP", "BR", "MY", "HS", "CD", "IL", "TN", "EG", "FG", "AK", "PX"]

OCCUPATION_SPORT = {
    "Cricketer": "Cricket",
    "Basketball player": "Basketball",
    "Footballer": "Association football",
    "Tennis player": "Tennis",
    "Baseball player": "Baseball",
    "Ice hockey player": "Ice hockey",
    "Rugby player": "Rugby",
    "Volleyball player": "Volleyball",
    "Golfer": "Golf",
    "Swimmer": "Swimming",
}

ARTIST_OCCUPATIONS = ["Musician", "Singer", "Composer", "Guitarist", "Pianist", "Drummer"]
OTHER_OCCUPATIONS = [
    "Actor", "Film director", "Politician", "Scientist", "Writer", "Poet",
    "Journalist", "Painter", "Chef", "Architect", "Engineer", "Historian",
    "Economist", "Photographer",
]


@dataclass(frozen=True)
class KGWorldConfig:
    """Sizes of the synthetic world.

    The defaults produce roughly 3.5k entities and 15k triples — enough for
    BM25 linking to be non-trivial (ambiguous surnames, shared team names)
    while keeping corpus generation and linking fast on CPU.
    """

    num_people: int = 700
    num_films: int = 160
    num_albums: int = 160
    num_songs: int = 120
    num_books: int = 120
    num_cities: int = 140
    num_teams: int = 90
    num_companies: int = 80
    num_universities: int = 50
    num_proteins: int = 90
    num_genes: int = 90
    num_rivers: int = 40
    num_mountains: int = 40
    num_stadiums: int = 60
    num_awards: int = 30
    num_record_labels: int = 25
    num_leagues: int = 20
    seed: int = 7

    def scaled(self, factor: float) -> KGWorldConfig:
        """Return a copy with every count multiplied by ``factor`` (min 5)."""
        values = {}
        for name, value in vars(self).items():
            if name == "seed":
                values[name] = value
            else:
                values[name] = max(5, int(round(value * factor)))
        return KGWorldConfig(**values)


@dataclass
class KGWorld:
    """The built world: graph plus registries used by the dataset generators."""

    graph: KnowledgeGraph
    config: KGWorldConfig
    # fine-grained semantic type label -> list of instance entity ids
    instances_by_type: dict[str, list[str]] = field(default_factory=dict)
    # entity id -> {attribute name: literal string value}
    literals: dict[str, dict[str, str]] = field(default_factory=dict)
    # type label -> type entity id
    type_entity_ids: dict[str, str] = field(default_factory=dict)

    def instances(self, type_label: str) -> list[str]:
        """Instance entity ids registered under a fine-grained type label."""
        return self.instances_by_type.get(type_label, [])

    def literal(self, entity_id: str, attribute: str, default: str = "") -> str:
        """A literal attribute value of an entity (dates, counts, masses...)."""
        return self.literals.get(entity_id, {}).get(attribute, default)

    def available_types(self) -> list[str]:
        """Fine-grained type labels that have at least one instance."""
        return sorted(label for label, ids in self.instances_by_type.items() if ids)


class SyntheticKGBuilder:
    """Builds the synthetic WikiData-like world."""

    def __init__(self, config: KGWorldConfig | None = None):
        self.config = config or KGWorldConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.graph = KnowledgeGraph()
        self.world = KGWorld(graph=self.graph, config=self.config)
        self._id_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # low-level helpers
    # ------------------------------------------------------------------ #
    def _next_id(self, prefix: str = "Q") -> str:
        return f"{prefix}{next(self._id_counter)}"

    def _choice(self, options: Sequence[str]) -> str:
        return str(options[int(self.rng.integers(0, len(options)))])

    def _add_type(self, label: str, description: str = "",
                  schema: EntitySchema = EntitySchema.OTHER) -> str:
        entity_id = self._next_id()
        self.graph.create_entity(
            entity_id, label, description=description, schema=schema, is_type=True
        )
        self.world.type_entity_ids[label] = entity_id
        return entity_id

    def _add_instance(
        self,
        label: str,
        type_label: str,
        aliases: Sequence[str] = (),
        description: str = "",
        schema: EntitySchema = EntitySchema.OTHER,
        register: bool = True,
    ) -> str:
        entity_id = self._next_id()
        self.graph.create_entity(
            entity_id, label, aliases=tuple(aliases), description=description, schema=schema
        )
        if register:
            self.world.instances_by_type.setdefault(type_label, []).append(entity_id)
        return entity_id

    def _set_literal(self, entity_id: str, attribute: str, value: str) -> None:
        self.world.literals.setdefault(entity_id, {})[attribute] = value

    def _type_id(self, label: str) -> str:
        return self.world.type_entity_ids[label]

    def _random_year(self, low: int = 1850, high: int = 2010) -> int:
        return int(self.rng.integers(low, high))

    def _random_date(self, low: int = 1850, high: int = 2010) -> str:
        year = self._random_year(low, high)
        month = int(self.rng.integers(1, 13))
        day = int(self.rng.integers(1, 29))
        return f"{year}-{month:02d}-{day:02d}"

    # ------------------------------------------------------------------ #
    # world construction
    # ------------------------------------------------------------------ #
    def build(self) -> KGWorld:
        """Construct the full world and return it."""
        self._build_type_entities()
        self._build_geography()
        self._build_sports_infrastructure()
        self._build_culture_infrastructure()
        self._build_organisations()
        self._build_people()
        self._build_creative_works()
        self._build_biology()
        return self.world

    # -- type entities --------------------------------------------------- #
    def _build_type_entities(self) -> None:
        coarse = [
            ("Human", "a person"),
            ("Athlete", "a sportsperson"),
            ("Creative work", "an artistic creation"),
            ("Organisation", "a structured group"),
            ("Geographical feature", "a feature of the earth"),
            ("Biological entity", "an entity studied by biology"),
        ]
        for label, description in coarse:
            schema = EntitySchema.PERSON if label == "Human" else EntitySchema.OTHER
            self._add_type(label, description, schema=schema)

        fine = (
            list(OCCUPATION_SPORT)
            + ARTIST_OCCUPATIONS
            + OTHER_OCCUPATIONS
            + [
                "Film", "Album", "Song", "Book", "Television series",
                "Scholarly article", "Video game",
                "City", "Country", "Capital city", "River", "Mountain",
                "Continent", "Language", "Currency",
                "Sports team", "Football club", "Cricket team", "Basketball team",
                "Company", "Airline", "University", "Museum", "Stadium",
                "Sports league", "Record label", "Award", "Sport",
                "Player position", "Music genre", "Film genre", "Literary genre",
                "Industry", "Protein", "Gene", "Enzyme", "Chemical compound",
                "Taxon", "Name",
            ]
        )
        for label in fine:
            if label not in self.world.type_entity_ids:
                self._add_type(label, description=f"the class of {label.lower()} entities")

        # Sub-class hierarchy reproducing the type-granularity structure.
        subclass_edges = [
            ("Cricketer", "Athlete"), ("Basketball player", "Athlete"),
            ("Footballer", "Athlete"), ("Tennis player", "Athlete"),
            ("Baseball player", "Athlete"), ("Ice hockey player", "Athlete"),
            ("Rugby player", "Athlete"), ("Volleyball player", "Athlete"),
            ("Golfer", "Athlete"), ("Swimmer", "Athlete"),
            ("Athlete", "Human"),
            ("Singer", "Musician"), ("Composer", "Musician"),
            ("Guitarist", "Musician"), ("Pianist", "Musician"),
            ("Drummer", "Musician"), ("Musician", "Human"),
            ("Actor", "Human"), ("Film director", "Human"),
            ("Politician", "Human"), ("Scientist", "Human"),
            ("Writer", "Human"), ("Poet", "Writer"), ("Journalist", "Writer"),
            ("Film", "Creative work"), ("Album", "Creative work"),
            ("Song", "Creative work"), ("Book", "Creative work"),
            ("Television series", "Creative work"),
            ("Football club", "Sports team"), ("Cricket team", "Sports team"),
            ("Basketball team", "Sports team"), ("Sports team", "Organisation"),
            ("Company", "Organisation"), ("Airline", "Company"),
            ("University", "Organisation"),
            ("Capital city", "City"), ("City", "Geographical feature"),
            ("River", "Geographical feature"), ("Mountain", "Geographical feature"),
            ("Enzyme", "Protein"), ("Protein", "Biological entity"),
            ("Gene", "Biological entity"),
        ]
        for child, parent in subclass_edges:
            self.graph.add_triple(
                self._type_id(child), Predicates.SUBCLASS_OF, self._type_id(parent)
            )

    # -- geography -------------------------------------------------------- #
    def _build_geography(self) -> None:
        self._continents: dict[str, str] = {}
        for name in CONTINENT_NAMES:
            eid = self._add_instance(name, "Continent", description="a continent")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Continent"))
            self._continents[name] = eid

        self._languages: dict[str, str] = {}
        for name in LANGUAGE_NAMES:
            eid = self._add_instance(f"{name} language", "Language", aliases=(name,),
                                     description="a natural language")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Language"))
            self._languages[name] = eid

        self._currencies: dict[str, str] = {}
        for index, name in enumerate(CURRENCY_NAMES):
            country_hint = COUNTRY_NAMES[index % len(COUNTRY_NAMES)]
            eid = self._add_instance(f"{country_hint} {name}", "Currency",
                                     description="a unit of currency")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Currency"))
            self._currencies[name] = eid

        self._countries: dict[str, str] = {}
        for name in COUNTRY_NAMES:
            eid = self._add_instance(name, "Country", description="a sovereign state")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Country"))
            continent = self._choice(CONTINENT_NAMES)
            self.graph.add_triple(eid, Predicates.PART_OF, self._continents[continent])
            language = self._choice(LANGUAGE_NAMES)
            self.graph.add_triple(eid, Predicates.LANGUAGE, self._languages[language])
            currency = self._choice(CURRENCY_NAMES)
            self.graph.add_triple(eid, Predicates.CURRENCY, self._currencies[currency])
            self._set_literal(eid, "population", str(int(self.rng.integers(500_000, 200_000_000))))
            self._set_literal(eid, "area_km2", str(int(self.rng.integers(10_000, 9_000_000))))
            self._countries[name] = eid

        self._cities: list[str] = []
        used_city_names: set[str] = set()
        for index in range(self.config.num_cities):
            for _ in range(20):
                name = f"{self._choice(CITY_STEMS)}{self._choice(CITY_SUFFIXES)}"
                if name not in used_city_names:
                    used_city_names.add(name)
                    break
            else:
                name = f"{self._choice(CITY_STEMS)}{self._choice(CITY_SUFFIXES)} {index}"
            country_name = self._choice(COUNTRY_NAMES)
            is_capital = index < len(COUNTRY_NAMES) and bool(self.rng.random() < 0.4)
            type_label = "Capital city" if is_capital else "City"
            eid = self._add_instance(name, type_label, description=f"a city in {country_name}")
            self.world.instances_by_type.setdefault("City", [])
            if type_label == "Capital city":
                # capitals are also usable wherever a city is needed
                self.world.instances_by_type["City"].append(eid)
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id(type_label))
            self.graph.add_triple(eid, Predicates.COUNTRY, self._countries[country_name])
            if is_capital:
                self.graph.add_triple(eid, Predicates.CAPITAL_OF, self._countries[country_name])
            self._set_literal(eid, "population", str(int(self.rng.integers(20_000, 15_000_000))))
            self._set_literal(eid, "elevation_m", str(int(self.rng.integers(0, 2500))))
            self._cities.append(eid)

        for index in range(self.config.num_rivers):
            name = f"{self._choice(CITY_STEMS)} River"
            eid = self._add_instance(f"{name} {index}" if name in used_city_names else name,
                                     "River", description="a river")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("River"))
            country_name = self._choice(COUNTRY_NAMES)
            self.graph.add_triple(eid, Predicates.COUNTRY, self._countries[country_name])
            self._set_literal(eid, "length_km", str(int(self.rng.integers(50, 6500))))

        for _index in range(self.config.num_mountains):
            name = f"Mount {self._choice(SURNAMES)}"
            eid = self._add_instance(name, "Mountain", description="a mountain",
                                     register=True)
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Mountain"))
            country_name = self._choice(COUNTRY_NAMES)
            self.graph.add_triple(eid, Predicates.COUNTRY, self._countries[country_name])
            self._set_literal(eid, "elevation_m", str(int(self.rng.integers(800, 8800))))

    # -- sports ------------------------------------------------------------ #
    def _build_sports_infrastructure(self) -> None:
        self._sports: dict[str, str] = {}
        for name in SPORT_NAMES:
            eid = self._add_instance(name, "Sport", description="a sport")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Sport"))
            self._sports[name] = eid

        self._positions: dict[str, list[str]] = {}
        for sport, positions in SPORT_POSITIONS.items():
            self._positions[sport] = []
            for position in positions:
                eid = self._add_instance(position, "Player position",
                                         description=f"a position in {sport.lower()}")
                self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Player position"))
                self.graph.add_triple(eid, Predicates.PART_OF, self._sports[sport])
                self._positions[sport].append(eid)

        self._leagues: dict[str, list[str]] = {name: [] for name in SPORT_NAMES}
        for _index in range(self.config.num_leagues):
            sport = self._choice(SPORT_NAMES)
            name = f"{self._choice(ADJECTIVES)} {sport} League"
            eid = self._add_instance(name, "Sports league", description="a sports league")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Sports league"))
            self.graph.add_triple(eid, Predicates.SPORT, self._sports[sport])
            self._leagues[sport].append(eid)

        self._stadiums: list[str] = []
        for _index in range(self.config.num_stadiums):
            city_id = self._choice(self._cities)
            city_label = self.graph.entity(city_id).label
            name = f"{city_label} {self._choice(['Arena', 'Stadium', 'Park', 'Oval'])}"
            eid = self._add_instance(name, "Stadium", description=f"a stadium in {city_label}")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Stadium"))
            self.graph.add_triple(eid, Predicates.LOCATED_IN, city_id)
            self._set_literal(eid, "capacity", str(int(self.rng.integers(5_000, 95_000))))
            self._stadiums.append(eid)

        sport_team_type = {
            "Cricket": "Cricket team",
            "Basketball": "Basketball team",
            "Association football": "Football club",
        }
        self._teams_by_sport: dict[str, list[str]] = {name: [] for name in SPORT_NAMES}
        used_team_names: set[str] = set()
        for _index in range(self.config.num_teams):
            sport = self._choice(SPORT_NAMES)
            city_id = self._choice(self._cities)
            city_label = self.graph.entity(city_id).label
            for _ in range(20):
                name = f"{city_label} {self._choice(TEAM_MASCOTS)}"
                if name not in used_team_names:
                    break
            used_team_names.add(name)
            type_label = sport_team_type.get(sport, "Sports team")
            eid = self._add_instance(name, type_label,
                                     description=f"a {sport.lower()} team from {city_label}")
            self.world.instances_by_type.setdefault("Sports team", [])
            if type_label != "Sports team":
                self.world.instances_by_type["Sports team"].append(eid)
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id(type_label))
            self.graph.add_triple(eid, Predicates.SPORT, self._sports[sport])
            self.graph.add_triple(eid, Predicates.LOCATED_IN, city_id)
            if self._stadiums:
                self.graph.add_triple(eid, Predicates.HOME_VENUE, self._choice(self._stadiums))
            if self._leagues[sport]:
                self.graph.add_triple(eid, Predicates.LEAGUE, self._choice(self._leagues[sport]))
            self._set_literal(eid, "founded", str(self._random_year(1870, 1995)))
            self._teams_by_sport[sport].append(eid)

    # -- culture ------------------------------------------------------------ #
    def _build_culture_infrastructure(self) -> None:
        self._music_genres: dict[str, str] = {}
        for name in MUSIC_GENRES:
            eid = self._add_instance(name, "Music genre", description="a genre of music")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Music genre"))
            self._music_genres[name] = eid

        self._film_genres: dict[str, str] = {}
        for name in FILM_GENRES:
            eid = self._add_instance(name, "Film genre", description="a genre of film")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Film genre"))
            self._film_genres[name] = eid

        self._book_genres: dict[str, str] = {}
        for name in BOOK_GENRES:
            eid = self._add_instance(name, "Literary genre", description="a literary genre")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Literary genre"))
            self._book_genres[name] = eid

        self._record_labels: list[str] = []
        for index in range(self.config.num_record_labels):
            name = f"{self._choice(ADJECTIVES)} {self._choice(['Records', 'Sound', 'Music'])}"
            eid = self._add_instance(f"{name}" if index == 0 else f"{name}",
                                     "Record label", description="a record label")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Record label"))
            self._record_labels.append(eid)

        self._awards: list[str] = []
        for _index in range(self.config.num_awards):
            name = f"{self._choice(ADJECTIVES)} {self._choice(['Award', 'Prize', 'Medal'])}"
            eid = self._add_instance(name, "Award", description="an award")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Award"))
            self._awards.append(eid)

    # -- organisations ------------------------------------------------------ #
    def _build_organisations(self) -> None:
        self._industries: dict[str, str] = {}
        for name in INDUSTRY_NAMES:
            eid = self._add_instance(f"{name} industry", "Industry", aliases=(name,),
                                     description="an industry sector")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Industry"))
            self._industries[name] = eid

        self._companies: list[str] = []
        for _index in range(self.config.num_companies):
            industry = self._choice(INDUSTRY_NAMES)
            name = f"{self._choice(SURNAMES)} {industry} {self._choice(['Inc', 'Group', 'Corporation', 'Ltd'])}"
            type_label = "Airline" if industry == "Aerospace" and self.rng.random() < 0.3 else "Company"
            eid = self._add_instance(name, type_label, description=f"a {industry.lower()} company")
            self.world.instances_by_type.setdefault("Company", [])
            if type_label == "Airline":
                self.world.instances_by_type["Company"].append(eid)
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id(type_label))
            self.graph.add_triple(eid, Predicates.INDUSTRY, self._industries[industry])
            self.graph.add_triple(eid, Predicates.HEADQUARTERS, self._choice(self._cities))
            self._set_literal(eid, "founded", str(self._random_year(1900, 2015)))
            self._set_literal(eid, "revenue_musd", str(int(self.rng.integers(10, 90_000))))
            self._companies.append(eid)

        self._universities: list[str] = []
        for _index in range(self.config.num_universities):
            city_id = self._choice(self._cities)
            city_label = self.graph.entity(city_id).label
            name = f"University of {city_label}"
            if any(self.graph.entity(u).label == name for u in self._universities):
                name = f"{city_label} Technical University"
            eid = self._add_instance(name, "University", description="a university")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("University"))
            self.graph.add_triple(eid, Predicates.LOCATED_IN, city_id)
            self._set_literal(eid, "established", str(self._random_year(1500, 1990)))
            self._set_literal(eid, "students", str(int(self.rng.integers(2_000, 60_000))))
            self._universities.append(eid)

    # -- people -------------------------------------------------------------- #
    def _build_people(self) -> None:
        human_type = self._type_id("Human")
        occupations = (
            list(OCCUPATION_SPORT) * 3      # athletes are over-represented, as in SemTab
            + ARTIST_OCCUPATIONS * 2
            + OTHER_OCCUPATIONS
        )
        self._people: list[str] = []
        self._people_by_occupation: dict[str, list[str]] = {}
        used_names: set[str] = set()
        for _index in range(self.config.num_people):
            given = self._choice(GIVEN_NAMES)
            surname = self._choice(SURNAMES)
            name = f"{given} {surname}"
            if name in used_names:
                name = f"{given} {self._choice(SURNAMES[:40])} {surname}"
            used_names.add(name)
            occupation = self._choice(occupations)
            abbreviated = f"{given[0]}. {surname}"
            eid = self._add_instance(
                name, occupation, aliases=(abbreviated,),
                description=f"a {occupation.lower()}", schema=EntitySchema.PERSON,
            )
            self.world.instances_by_type.setdefault("Human", []).append(eid)
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, human_type)
            self.graph.add_triple(eid, Predicates.OCCUPATION, self._type_id(occupation))
            country = self._choice(COUNTRY_NAMES)
            self.graph.add_triple(eid, Predicates.CITIZENSHIP, self._countries[country])
            birth = self._random_date(1860, 1998)
            self._set_literal(eid, "birth_date", birth)
            if self.rng.random() < 0.45:
                death_year = min(int(birth[:4]) + int(self.rng.integers(25, 90)), 2020)
                self._set_literal(eid, "death_date",
                                  f"{death_year}-{int(self.rng.integers(1, 13)):02d}-"
                                  f"{int(self.rng.integers(1, 29)):02d}")
            self._set_literal(eid, "height_cm", str(int(self.rng.integers(150, 210))))
            self._set_literal(eid, "weight_kg", str(int(self.rng.integers(48, 120))))

            if occupation in OCCUPATION_SPORT:
                sport = OCCUPATION_SPORT[occupation]
                self.graph.add_triple(eid, Predicates.SPORT, self._sports[sport])
                teams = self._teams_by_sport.get(sport) or sum(self._teams_by_sport.values(), [])
                if teams:
                    self.graph.add_triple(eid, Predicates.MEMBER_OF, self._choice(teams))
                positions = self._positions.get(sport)
                if positions:
                    self.graph.add_triple(eid, Predicates.POSITION, self._choice(positions))
                self._set_literal(eid, "career_points", str(int(self.rng.integers(10, 30_000))))
            elif occupation in ARTIST_OCCUPATIONS:
                genre = self._choice(MUSIC_GENRES)
                self.graph.add_triple(eid, Predicates.GENRE, self._music_genres[genre])
                if self._record_labels:
                    self.graph.add_triple(eid, Predicates.RECORD_LABEL,
                                          self._choice(self._record_labels))
            elif occupation in ("Scientist", "Writer", "Poet", "Journalist", "Historian",
                                "Economist"):
                if self._universities:
                    self.graph.add_triple(eid, Predicates.EDUCATED_AT,
                                          self._choice(self._universities))
            if self.rng.random() < 0.2 and self._awards:
                self.graph.add_triple(eid, Predicates.AWARD_RECEIVED, self._choice(self._awards))

            self._people.append(eid)
            self._people_by_occupation.setdefault(occupation, []).append(eid)

    # -- creative works ------------------------------------------------------ #
    def _build_creative_works(self) -> None:
        directors = self._people_by_occupation.get("Film director", []) or self._people
        actors = self._people_by_occupation.get("Actor", []) or self._people
        musicians = [
            eid for occupation in ARTIST_OCCUPATIONS
            for eid in self._people_by_occupation.get(occupation, [])
        ] or self._people
        writers = (
            self._people_by_occupation.get("Writer", [])
            + self._people_by_occupation.get("Poet", [])
        ) or self._people

        used_titles: set[str] = set()

        def fresh_title(template: str) -> str:
            for _ in range(30):
                title = template.format(adj=self._choice(ADJECTIVES), noun=self._choice(NOUNS))
                if title not in used_titles:
                    used_titles.add(title)
                    return title
            title = f"{template.format(adj=self._choice(ADJECTIVES), noun=self._choice(NOUNS))} {len(used_titles)}"
            used_titles.add(title)
            return title

        for _index in range(self.config.num_films):
            title = fresh_title("The {adj} {noun}")
            eid = self._add_instance(title, "Film", description="a feature film")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Film"))
            self.graph.add_triple(eid, Predicates.DIRECTOR, self._choice(directors))
            for _ in range(int(self.rng.integers(1, 4))):
                self.graph.add_triple(eid, Predicates.CAST_MEMBER, self._choice(actors))
            genre = self._choice(FILM_GENRES)
            self.graph.add_triple(eid, Predicates.GENRE, self._film_genres[genre])
            self._set_literal(eid, "publication_year", str(self._random_year(1930, 2020)))
            self._set_literal(eid, "duration_min", str(int(self.rng.integers(70, 200))))

        for _index in range(self.config.num_albums):
            title = fresh_title("{adj} {noun}")
            eid = self._add_instance(title, "Album", description="a studio album")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Album"))
            self.graph.add_triple(eid, Predicates.PERFORMER, self._choice(musicians))
            genre = self._choice(MUSIC_GENRES)
            self.graph.add_triple(eid, Predicates.GENRE, self._music_genres[genre])
            if self._record_labels:
                self.graph.add_triple(eid, Predicates.RECORD_LABEL, self._choice(self._record_labels))
            self._set_literal(eid, "publication_year", str(self._random_year(1955, 2020)))
            self._set_literal(eid, "tracks", str(int(self.rng.integers(6, 20))))

        for _index in range(self.config.num_songs):
            title = fresh_title("{noun} of the {adj}")
            eid = self._add_instance(title, "Song", description="a song")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Song"))
            self.graph.add_triple(eid, Predicates.PERFORMER, self._choice(musicians))
            genre = self._choice(MUSIC_GENRES)
            self.graph.add_triple(eid, Predicates.GENRE, self._music_genres[genre])
            self._set_literal(eid, "duration_s", str(int(self.rng.integers(120, 420))))

        for _index in range(self.config.num_books):
            title = fresh_title("A {adj} {noun}")
            eid = self._add_instance(title, "Book", description="a book")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Book"))
            self.graph.add_triple(eid, Predicates.AUTHOR, self._choice(writers))
            genre = self._choice(BOOK_GENRES)
            self.graph.add_triple(eid, Predicates.GENRE, self._book_genres[genre])
            self._set_literal(eid, "publication_year", str(self._random_year(1800, 2020)))
            self._set_literal(eid, "pages", str(int(self.rng.integers(90, 900))))

    # -- biology -------------------------------------------------------------- #
    def _build_biology(self) -> None:
        taxa = []
        for name in ["Homo sapiens", "Mus musculus", "Danio rerio", "Drosophila melanogaster",
                     "Saccharomyces cerevisiae", "Arabidopsis thaliana"]:
            eid = self._add_instance(name, "Taxon", description="a biological species")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Taxon"))
            taxa.append(eid)

        functions = []
        for name in ["DNA binding", "ATP binding", "catalytic activity", "signal transduction",
                     "transport activity", "structural molecule activity"]:
            eid = self._add_instance(name, "Molecular function",
                                     description="a molecular function")
            functions.append(eid)

        genes: list[str] = []
        used_codes: set[str] = set()
        for _index in range(self.config.num_genes):
            for _ in range(30):
                code = f"{self._choice(AMINO_PREFIXES)}{int(self.rng.integers(1, 99))}"
                if code not in used_codes:
                    used_codes.add(code)
                    break
            eid = self._add_instance(code, "Gene", description="a gene")
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id("Gene"))
            self.graph.add_triple(eid, Predicates.FOUND_IN_TAXON, self._choice(taxa))
            genes.append(eid)

        for index in range(self.config.num_proteins):
            gene_id = genes[index % len(genes)]
            gene_label = self.graph.entity(gene_id).label
            is_enzyme = bool(self.rng.random() < 0.35)
            type_label = "Enzyme" if is_enzyme else "Protein"
            suffix = "synthase" if is_enzyme else "protein"
            name = f"{gene_label} {suffix}"
            eid = self._add_instance(name, type_label, aliases=(gene_label,),
                                     description=f"a {type_label.lower()} encoded by {gene_label}")
            self.world.instances_by_type.setdefault("Protein", [])
            if type_label == "Enzyme":
                self.world.instances_by_type["Protein"].append(eid)
            self.graph.add_triple(eid, Predicates.INSTANCE_OF, self._type_id(type_label))
            self.graph.add_triple(eid, Predicates.ENCODED_BY, gene_id)
            self.graph.add_triple(eid, Predicates.FOUND_IN_TAXON, self._choice(taxa))
            self.graph.add_triple(eid, Predicates.MOLECULAR_FUNCTION, self._choice(functions))
            self._set_literal(eid, "mass_kda", f"{float(self.rng.uniform(8, 250)):.1f}")


def build_default_kg(config: KGWorldConfig | None = None) -> KGWorld:
    """Build the default synthetic world (convenience entry point)."""
    return SyntheticKGBuilder(config).build()
