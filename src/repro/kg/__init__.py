"""Knowledge-graph substrate: a WikiData-style graph, BM25 index and linker.

The paper indexes the WikiData knowledge graph with Elasticsearch and links
table cell mentions to entities with BM25 retrieval.  This package provides
the same capabilities entirely in memory:

* :class:`~repro.kg.graph.KnowledgeGraph` — entities with labels, aliases and
  descriptions, predicates, typed triples and one-hop neighbourhood queries.
* :mod:`~repro.kg.backends` — pluggable retrieval engines behind the
  :class:`~repro.kg.backends.RetrievalBackend` protocol: an Okapi BM25
  inverted index over the entity documents (label + aliases + description,
  Eq. 1–2 of the paper) and a character-n-gram embedding retriever.
* :class:`~repro.kg.linker.EntityLinker` — mention → candidate-entity linking
  that applies the named-entity schema filter (numbers and dates are never
  linked) before querying the backend.
* :class:`~repro.kg.snapshot.KGSnapshot` — a serialisable read-only view of
  the graph slice Part 1 needs, used by serving bundles.
* :class:`~repro.kg.builder.SyntheticKGBuilder` — constructs a synthetic
  WikiData-like world (people with occupations, films, proteins, cities,
  teams, ...) with the type-hierarchy structure the paper's Part 1 relies on.
"""

from repro.kg.graph import Entity, KnowledgeGraph, Predicates, Triple
from repro.kg.backends import (
    BM25Index,
    BM25Parameters,
    CharNGramIndex,
    RetrievalBackend,
    SearchHit,
    ShardedBackend,
    create_backend,
    backend_from_documents,
    register_backend,
    restore_backend,
)
from repro.kg.linker import EntityLink, EntityLinker, LinkerConfig
from repro.kg.snapshot import KGSnapshot
from repro.kg.builder import KGWorldConfig, SyntheticKGBuilder, build_default_kg

__all__ = [
    "Entity",
    "KnowledgeGraph",
    "Predicates",
    "Triple",
    "BM25Index",
    "BM25Parameters",
    "CharNGramIndex",
    "RetrievalBackend",
    "SearchHit",
    "ShardedBackend",
    "create_backend",
    "backend_from_documents",
    "register_backend",
    "restore_backend",
    "EntityLink",
    "EntityLinker",
    "LinkerConfig",
    "KGSnapshot",
    "KGWorldConfig",
    "SyntheticKGBuilder",
    "build_default_kg",
]
