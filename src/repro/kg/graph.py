"""In-memory property-graph triple store modelled after WikiData.

Entities carry a label, optional aliases and a description, plus a coarse
named-entity schema category (used by Part 1's label-based filter).  Triples
connect entities through named predicates; the graph exposes the one-hop
neighbourhood queries the KGLink candidate-type extraction needs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.text.ner import EntitySchema

__all__ = ["Entity", "Triple", "Predicates", "KnowledgeGraph"]


class Predicates:
    """Well-known predicate names used throughout the synthetic world.

    These mirror frequently used WikiData properties: ``P31`` (instance of),
    ``P279`` (subclass of), ``P106`` (occupation) and so on.
    """

    INSTANCE_OF = "instance_of"
    SUBCLASS_OF = "subclass_of"
    OCCUPATION = "occupation"
    MEMBER_OF = "member_of_sports_team"
    POSITION = "position_played"
    CITIZENSHIP = "country_of_citizenship"
    SPORT = "sport"
    GENRE = "genre"
    PERFORMER = "performer"
    DIRECTOR = "director"
    AUTHOR = "author"
    CAST_MEMBER = "cast_member"
    LOCATED_IN = "located_in"
    COUNTRY = "country"
    CAPITAL_OF = "capital_of"
    ENCODED_BY = "encoded_by"
    FOUND_IN_TAXON = "found_in_taxon"
    PART_OF = "part_of"
    INDUSTRY = "industry"
    HEADQUARTERS = "headquarters_location"
    EDUCATED_AT = "educated_at"
    AWARD_RECEIVED = "award_received"
    LANGUAGE = "official_language"
    CURRENCY = "currency_used"
    HOME_VENUE = "home_venue"
    LEAGUE = "league"
    RECORD_LABEL = "record_label"
    NOTABLE_WORK = "notable_work"
    FIELD_OF_WORK = "field_of_work"
    MOLECULAR_FUNCTION = "molecular_function"


@dataclass(frozen=True)
class Entity:
    """A node of the knowledge graph."""

    entity_id: str
    label: str
    aliases: tuple[str, ...] = ()
    description: str = ""
    schema: EntitySchema = EntitySchema.OTHER
    is_type: bool = False

    def document_text(self) -> str:
        """The text indexed by BM25 for this entity."""
        parts = [self.label, *self.aliases, self.description]
        return " ".join(part for part in parts if part)


@dataclass(frozen=True)
class Triple:
    """A directed, predicate-labelled edge ``subject --predicate--> object``."""

    subject: str
    predicate: str
    object: str


class KnowledgeGraph:
    """Entity and triple store with one-hop neighbourhood queries."""

    def __init__(self) -> None:
        self._entities: dict[str, Entity] = {}
        self._triples: list[Triple] = []
        self._outgoing: dict[str, list[Triple]] = defaultdict(list)
        self._incoming: dict[str, list[Triple]] = defaultdict(list)
        self._by_label: dict[str, list[str]] = defaultdict(list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_entity(self, entity: Entity) -> Entity:
        """Register an entity; adding the same id twice raises ``ValueError``."""
        if entity.entity_id in self._entities:
            raise ValueError(f"entity {entity.entity_id!r} already exists")
        self._entities[entity.entity_id] = entity
        self._by_label[entity.label.lower()].append(entity.entity_id)
        for alias in entity.aliases:
            self._by_label[alias.lower()].append(entity.entity_id)
        return entity

    def create_entity(
        self,
        entity_id: str,
        label: str,
        aliases: Iterable[str] = (),
        description: str = "",
        schema: EntitySchema = EntitySchema.OTHER,
        is_type: bool = False,
    ) -> Entity:
        """Convenience wrapper building and adding an :class:`Entity`."""
        entity = Entity(
            entity_id=entity_id,
            label=label,
            aliases=tuple(aliases),
            description=description,
            schema=schema,
            is_type=is_type,
        )
        return self.add_entity(entity)

    def add_triple(self, subject: str, predicate: str, obj: str) -> Triple:
        """Add a triple between two existing entities."""
        if subject not in self._entities:
            raise KeyError(f"unknown subject entity {subject!r}")
        if obj not in self._entities:
            raise KeyError(f"unknown object entity {obj!r}")
        triple = Triple(subject, predicate, obj)
        self._triples.append(triple)
        self._outgoing[subject].append(triple)
        self._incoming[obj].append(triple)
        return triple

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    def entity(self, entity_id: str) -> Entity:
        """Return the entity with ``entity_id`` (raises ``KeyError`` if absent)."""
        return self._entities[entity_id]

    def entities(self) -> Iterator[Entity]:
        """Iterate over all entities."""
        return iter(self._entities.values())

    def triples(self) -> Iterator[Triple]:
        """Iterate over all triples."""
        return iter(self._triples)

    def entities_by_label(self, label: str) -> list[Entity]:
        """Exact (case-insensitive) label or alias lookup."""
        return [self._entities[eid] for eid in self._by_label.get(label.lower(), [])]

    def type_entities(self) -> list[Entity]:
        """All entities flagged as type entities (potential column types)."""
        return [entity for entity in self._entities.values() if entity.is_type]

    # ------------------------------------------------------------------ #
    # neighbourhoods
    # ------------------------------------------------------------------ #
    def outgoing(self, entity_id: str) -> list[Triple]:
        """Triples whose subject is ``entity_id``."""
        return list(self._outgoing.get(entity_id, ()))

    def incoming(self, entity_id: str) -> list[Triple]:
        """Triples whose object is ``entity_id``."""
        return list(self._incoming.get(entity_id, ()))

    def one_hop_neighbors(self, entity_id: str, include_incoming: bool = True) -> set[str]:
        """The set of entity ids reachable in one hop (both directions by default).

        This is the ``N(e)`` of the paper (Eq. 3, 6, 8, 9): candidate type
        entities such as *Cricketer* typically appear as objects of
        ``occupation`` edges, i.e. in the outgoing neighbourhood of person
        entities, while albums point at their performer through incoming
        edges.
        """
        neighbors: set[str] = {t.object for t in self._outgoing.get(entity_id, ())}
        if include_incoming:
            neighbors.update(t.subject for t in self._incoming.get(entity_id, ()))
        neighbors.discard(entity_id)
        return neighbors

    def one_hop_neighbors_of_set(self, entity_ids: Iterable[str]) -> set[str]:
        """Union of one-hop neighbourhoods of several entities (``N(E)``)."""
        result: set[str] = set()
        for entity_id in entity_ids:
            result.update(self.one_hop_neighbors(entity_id))
        return result

    def neighborhood_with_predicates(self, entity_id: str) -> list[tuple[str, str]]:
        """Return ``(predicate, neighbor_id)`` pairs used to build feature sequences."""
        pairs = [(t.predicate, t.object) for t in self._outgoing.get(entity_id, ())]
        pairs.extend((t.predicate, t.subject) for t in self._incoming.get(entity_id, ()))
        return pairs

    def types_of(self, entity_id: str) -> set[str]:
        """Entity ids connected through ``instance_of`` (the KG type attribute)."""
        return {
            t.object
            for t in self._outgoing.get(entity_id, ())
            if t.predicate == Predicates.INSTANCE_OF
        }

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, int]:
        """Summary statistics used by documentation and sanity tests."""
        return {
            "entities": len(self._entities),
            "type_entities": len(self.type_entities()),
            "triples": len(self._triples),
            "predicates": len({t.predicate for t in self._triples}),
        }
