"""A serialisable, read-only view of the knowledge-graph slice Part 1 needs.

Part 1 of KGLink (:class:`~repro.core.pipeline.KGCandidateExtractor`) touches
a graph through exactly three queries: ``entity(entity_id)``,
``one_hop_neighbors(entity_id)`` and ``neighborhood_with_predicates(entity_id)``.
:class:`KGSnapshot` captures those answers from a full
:class:`~repro.kg.graph.KnowledgeGraph` into plain dicts — preserving the
triple insertion order ``neighborhood_with_predicates`` exposes, so feature
sequences come out identical — and round-trips through a JSON-able payload.

Service bundles ship a snapshot instead of the graph, so a serving process
answers annotation requests without ever constructing a
:class:`~repro.kg.graph.KnowledgeGraph` (aliases, descriptions and the triple
store itself are not needed at serving time: the retrieval index over entity
documents is compiled and bundled separately).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.kg.graph import Entity, KnowledgeGraph
from repro.text.ner import EntitySchema

__all__ = ["KGSnapshot"]


class KGSnapshot:
    """Frozen entity/neighbourhood view satisfying the Part-1 graph surface."""

    def __init__(self, entities: dict[str, Entity],
                 neighborhoods: dict[str, list[tuple[str, str]]]):
        self._entities = entities
        self._neighborhoods = neighborhoods

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph | KGSnapshot) -> KGSnapshot:
        """Capture the Part-1 surface of ``graph`` (idempotent on snapshots)."""
        if isinstance(graph, cls):
            return graph
        entities: dict[str, Entity] = {}
        neighborhoods: dict[str, list[tuple[str, str]]] = {}
        for entity in graph.entities():
            # Aliases and descriptions only feed the retrieval index, which is
            # compiled and bundled separately; drop them to keep bundles lean.
            entities[entity.entity_id] = Entity(
                entity_id=entity.entity_id,
                label=entity.label,
                schema=entity.schema,
                is_type=entity.is_type,
            )
            pairs = graph.neighborhood_with_predicates(entity.entity_id)
            if pairs:
                neighborhoods[entity.entity_id] = list(pairs)
        return cls(entities, neighborhoods)

    # ------------------------------------------------------------------ #
    # the Part-1 graph surface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def entity(self, entity_id: str) -> Entity:
        """Return the entity with ``entity_id`` (raises ``KeyError`` if absent)."""
        return self._entities[entity_id]

    def entities(self) -> Iterator[Entity]:
        """Iterate over all entities."""
        return iter(self._entities.values())

    def one_hop_neighbors(self, entity_id: str) -> set[str]:
        """The ``N(e)`` of the paper, reconstructed from the captured pairs."""
        neighbors = {nid for _, nid in self._neighborhoods.get(entity_id, ())}
        neighbors.discard(entity_id)
        return neighbors

    def neighborhood_with_predicates(self, entity_id: str) -> list[tuple[str, str]]:
        """``(predicate, neighbor_id)`` pairs in the original triple order."""
        return list(self._neighborhoods.get(entity_id, ()))

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """A JSON-able representation (see :meth:`from_payload`)."""
        return {
            "entities": [
                [e.entity_id, e.label, e.schema.name, e.is_type]
                for e in self._entities.values()
            ],
            "neighborhoods": {
                entity_id: [[predicate, neighbor] for predicate, neighbor in pairs]
                for entity_id, pairs in self._neighborhoods.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> KGSnapshot:
        """Inverse of :meth:`to_payload`."""
        entities = {
            entity_id: Entity(
                entity_id=entity_id,
                label=label,
                schema=EntitySchema[schema],
                is_type=bool(is_type),
            )
            for entity_id, label, schema, is_type in payload["entities"]
        }
        neighborhoods = {
            entity_id: [(predicate, neighbor) for predicate, neighbor in pairs]
            for entity_id, pairs in payload["neighborhoods"].items()
        }
        return cls(entities, neighborhoods)
