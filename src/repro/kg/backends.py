"""Pluggable retrieval backends behind one protocol.

The entity linker (and everything above it) talks to retrieval exclusively
through the :class:`RetrievalBackend` protocol:

* ``add_document(doc_id, text)`` — index one document,
* ``finalize()`` — compile the index for querying (idempotent, invalidated by
  further ``add_document`` calls),
* ``search(query, top_k)`` / ``search_batch(queries, top_k)`` — ranked
  retrieval with the deterministic ``(-score, doc_id)`` tie-break,
* ``export_state()`` / ``from_state(state)`` — round-trip the *compiled*
  arrays through a ``dict[str, np.ndarray]`` so a serving process can load an
  index from a bundle without the original documents or a rebuild.  A backend
  restored this way is frozen: it serves searches but rejects
  ``add_document`` (the builder-side structures are deliberately not
  serialised),
* ``shard_state(state, num_shards)`` — split one compiled state into
  ``num_shards`` self-contained states covering disjoint document ranges
  (array slices of the compiled arrays), each loadable with ``from_state``.
  :class:`ShardedBackend` builds on this to fan ``search_batch`` out across
  shards through a :class:`~repro.runtime.SearchExecutor` and merge the
  per-shard top-k bitwise-identically to the unsharded index.

Two implementations ship here and both must pass the shared conformance suite
(``tests/kg/test_backends.py``):

* :class:`BM25Index` — the Okapi BM25 inverted index compiled to CSR arrays
  (moved from ``repro.kg.bm25``, which remains as a compatibility shim).
* :class:`CharNGramIndex` — a character-n-gram hashed-embedding retriever:
  documents and queries are embedded into a fixed-dimension count vector of
  hashed character n-grams and ranked by cosine similarity, which tolerates
  typos and partial mentions BM25's exact term match cannot.

Backends register themselves under a ``backend_name`` so bundles can record
which implementation produced an index and :func:`create_backend` /
:func:`restore_backend` can reconstruct it by name.

The ``dtype`` knob selects the dtype of the score-carrying arrays (BM25's
postings impacts, the n-gram embedding matrix).  ``float32`` (the default
since recall parity with float64 was recorded on the full corpus generators —
see ``bm25.float32_recall_at_10`` in ``BENCH_retrieval.json``) halves the
index's memory traffic; ``float64`` keeps bitwise parity with the scalar
oracle.  Scores always accumulate in a float64 buffer, so the deterministic
tie-break is preserved under either dtype.
"""

from __future__ import annotations

import math
import zlib
from collections import Counter, defaultdict
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import ClassVar, Protocol, runtime_checkable

import numpy as np

from repro.core.errors import ShardUnavailable
from repro.text.tokenizer import basic_tokenize

__all__ = [
    "BM25Parameters",
    "SearchHit",
    "RetrievalBackend",
    "BM25Index",
    "CharNGramIndex",
    "ShardedBackend",
    "register_backend",
    "create_backend",
    "restore_backend",
    "backend_from_documents",
    "reference_search",
    "shard_boundaries",
]


@dataclass(frozen=True)
class BM25Parameters:
    """The two tunable Okapi BM25 parameters (Elasticsearch defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


@dataclass(frozen=True)
class SearchHit:
    """A retrieval result: document (entity) id and its retrieval score."""

    doc_id: str
    score: float


@runtime_checkable
class RetrievalBackend(Protocol):
    """What the entity linker requires of a retrieval engine.

    Implementations must rank by ``(-score, doc_id)`` (ties broken by the
    lexicographically smaller document id), return only strictly positive
    scores, and support the compiled-state round trip used by service
    bundles.
    """

    backend_name: ClassVar[str]

    def add_document(self, doc_id: str, text: str) -> None: ...

    def finalize(self) -> None: ...

    @property
    def is_finalized(self) -> bool: ...

    def __len__(self) -> int: ...

    def __contains__(self, doc_id: str) -> bool: ...

    def search(self, query: str, top_k: int = 10) -> list[SearchHit]: ...

    def search_batch(self, queries: Sequence[str], top_k: int = 10
                     ) -> list[list[SearchHit]]: ...

    def export_state(self) -> dict[str, np.ndarray]: ...

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> RetrievalBackend: ...

    @classmethod
    def shard_state(cls, state: dict[str, np.ndarray], num_shards: int
                    ) -> list[dict[str, np.ndarray]]: ...


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_BACKENDS: dict[str, type] = {}


def register_backend(cls):
    """Register a backend class under its ``backend_name`` (decorator-friendly)."""
    name = getattr(cls, "backend_name", None)
    if not name:
        raise ValueError(f"{cls!r} must define a non-empty backend_name")
    _BACKENDS[name] = cls
    return cls


def create_backend(name: str, **kwargs) -> RetrievalBackend:
    """Instantiate a registered backend by name (kwargs go to its constructor)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown retrieval backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None
    return cls(**kwargs)


def restore_backend(name: str, state: dict[str, np.ndarray]) -> RetrievalBackend:
    """Reconstruct a backend of type ``name`` from exported compiled state."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown retrieval backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None
    return cls.from_state(state)


def backend_from_documents(documents: Iterable[tuple[str, str]], name: str = "bm25",
                           **kwargs) -> RetrievalBackend:
    """Build and finalize a backend over ``(doc_id, text)`` pairs."""
    backend = create_backend(name, **kwargs)
    for doc_id, text in documents:
        backend.add_document(doc_id, text)
    backend.finalize()
    return backend


def _as_str_array(values: Sequence[str]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.str_)


def _doc_ranks(doc_ids: list[str]) -> np.ndarray:
    """Lexicographic rank of each doc id (for the tie-break without strings)."""
    ranks = np.empty(len(doc_ids), dtype=np.int64)
    ranks[np.argsort(np.asarray(doc_ids, dtype=object))] = np.arange(len(doc_ids))
    return ranks


def _normalize_term(term: str) -> str:
    """The single normalization applied to terms entering or querying an index.

    ``basic_tokenize`` already lower-cases, so document-side tokens pass
    through unchanged; user-supplied raw terms (``document_frequency``,
    ``idf``) are folded to the same form here rather than ad hoc at call
    sites.
    """
    return term.lower()


def shard_boundaries(n_docs: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` document-index ranges for ``num_shards`` shards.

    Ranges are balanced to within one document.  ``num_shards`` may exceed
    ``n_docs``; the surplus shards are empty, which every backend's
    ``from_state`` must accept.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return [
        (n_docs * shard // num_shards, n_docs * (shard + 1) // num_shards)
        for shard in range(num_shards)
    ]


def _select_top_hits(candidates: np.ndarray, candidate_scores: np.ndarray,
                     doc_ranks: np.ndarray, doc_ids: list[str],
                     top_k: int) -> list[SearchHit]:
    """Rank candidate documents by ``(-score, doc_id)`` and truncate to ``top_k``.

    This is the protocol's shared tie-break, used by every backend: before
    the lexsort, everything tied with the k-th score is kept so boundary
    ties are broken by doc id exactly as a full sort would break them.
    """
    k = min(top_k, len(candidates))
    if len(candidates) > k:
        kth = np.partition(candidate_scores, len(candidates) - k)[
            len(candidates) - k
        ]
        keep = candidate_scores >= kth
        candidates = candidates[keep]
        candidate_scores = candidate_scores[keep]
    order = np.lexsort((doc_ranks[candidates], -candidate_scores))[:k]
    return [
        SearchHit(doc_id=doc_ids[candidates[i]], score=float(candidate_scores[i]))
        for i in order
    ]


# --------------------------------------------------------------------------- #
# BM25
# --------------------------------------------------------------------------- #
@register_backend
class BM25Index:
    """An inverted index with Okapi BM25 ranking (Eq. 1–2 of the paper).

    ``score(q, e) = sum_w IDF(w) * f(w, e) * (k1 + 1) /
    (f(w, e) + k1 * (1 - b + b * |e| / avg_len))`` with
    ``IDF(w) = ln((N - n(w) + 0.5) / (n(w) + 0.5) + 1)``.

    Documents are added through the dict-based builder API, but retrieval
    runs against a CSR-style compiled form produced lazily by
    :meth:`finalize` (invalidated by :meth:`add_document`):

    * ``_doc_ids`` — document ids in insertion order; a document's position
      in this list is its integer index in every array below.
    * ``_doc_ranks`` — ``int64[n_docs]`` lexicographic rank of each doc id,
      for the deterministic ``(-score, doc_id)`` tie-break without string
      comparisons at query time.
    * ``_term_slots`` — term → slot mapping (terms sorted lexicographically).
    * ``_indptr`` — ``int64[n_terms + 1]`` postings offsets: the postings of
      slot ``t`` live in ``[_indptr[t], _indptr[t + 1])``.
    * ``_posting_docs`` — ``int64[nnz]`` document indices, ascending within
      each term's slice.
    * ``_posting_impacts`` — ``dtype[nnz]`` precomputed per-``(term, doc)``
      impact scores so a query is a pure gather + accumulate.

    ``dtype`` selects the impacts dtype: ``float32`` (the default — recall
    parity with float64 is recorded on the full corpus generators, see
    ``BENCH_retrieval.json``) halves the postings memory traffic;
    ``float64`` is bitwise-identical to the scalar :meth:`score` oracle.
    Scores always accumulate in a float64 buffer, so exact ties (equal
    impacts in both dtypes) keep the same deterministic doc-id tie-break.
    """

    backend_name: ClassVar[str] = "bm25"

    def __init__(self, parameters: BM25Parameters | None = None,
                 dtype: str | np.dtype = np.float32):
        self.parameters = parameters or BM25Parameters()
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        self._doc_term_counts: dict[str, Counter[str]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._postings: dict[str, set[str]] = defaultdict(set)
        self._total_length = 0
        # True for indexes restored from exported state: the builder dicts are
        # gone, so the index is query-only.
        self._frozen = False
        # Compiled (CSR) form, built lazily on first search.
        self._compiled = False
        self._doc_ids: list[str] = []
        self._doc_id_set: frozenset[str] = frozenset()
        self._doc_ranks: np.ndarray | None = None
        self._term_slots: dict[str, int] = {}
        self._indptr: np.ndarray | None = None
        self._posting_docs: np.ndarray | None = None
        self._posting_impacts: np.ndarray | None = None
        self._score_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _require_builder(self, operation: str) -> None:
        """Frozen (restored) indexes have no builder dicts; fail loudly."""
        if self._frozen:
            raise RuntimeError(
                f"{operation} is unavailable on an index restored from exported "
                "state (query-only: the builder-side structures are not serialised)"
            )

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises ``ValueError``."""
        self._require_builder("add_document")
        if doc_id in self._doc_term_counts:
            raise ValueError(f"document {doc_id!r} already indexed")
        terms = basic_tokenize(text)
        counts = Counter(terms)
        self._doc_term_counts[doc_id] = counts
        self._doc_lengths[doc_id] = len(terms)
        self._total_length += len(terms)
        for term in counts:
            self._postings[term].add(doc_id)
        self._compiled = False

    @classmethod
    def build(cls, documents: Iterable[tuple[str, str]],
              parameters: BM25Parameters | None = None,
              dtype: str | np.dtype = np.float32) -> BM25Index:
        """Build an index from ``(doc_id, text)`` pairs."""
        index = cls(parameters, dtype=dtype)
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self._frozen:
            return len(self._doc_ids)
        return len(self._doc_term_counts)

    def __contains__(self, doc_id: str) -> bool:
        if self._frozen:
            return doc_id in self._doc_id_set
        return doc_id in self._doc_term_counts

    @property
    def average_document_length(self) -> float:
        self._require_builder("average_document_length")
        if not self._doc_term_counts:
            return 0.0
        return self._total_length / len(self._doc_term_counts)

    @property
    def is_finalized(self) -> bool:
        """Whether the compiled arrays are current with the builder dicts."""
        return self._compiled

    def document_frequency(self, term: str) -> int:
        """Number of indexed documents containing ``term``."""
        self._require_builder("document_frequency")
        return len(self._postings.get(_normalize_term(term), ()))

    def idf(self, term: str) -> float:
        """Inverse document frequency with the +1 smoothing of Eq. 2."""
        self._require_builder("idf")
        n_docs = len(self._doc_term_counts)
        n_term = self.document_frequency(term)
        return math.log((n_docs - n_term + 0.5) / (n_term + 0.5) + 1.0)

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def finalize(self) -> None:
        """Compile the dict-based postings into the CSR arrays.

        Called lazily by :meth:`search`; calling it eagerly after bulk
        construction moves the cost out of the first query.  Idempotent, and
        invalidated by :meth:`add_document`.
        """
        if self._compiled:
            return
        k1, b = self.parameters.k1, self.parameters.b
        avg_len = self.average_document_length or 1.0

        doc_ids = list(self._doc_term_counts)
        doc_index = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        doc_lengths = np.asarray(
            [self._doc_lengths[doc_id] for doc_id in doc_ids], dtype=np.float64
        )
        ranks = _doc_ranks(doc_ids)

        terms = sorted(self._postings)
        term_slots = {term: slot for slot, term in enumerate(terms)}
        counts_per_term = np.asarray(
            [len(self._postings[term]) for term in terms], dtype=np.int64
        )
        indptr = np.zeros(len(terms) + 1, dtype=np.int64)
        np.cumsum(counts_per_term, out=indptr[1:])

        posting_docs = np.empty(int(indptr[-1]), dtype=np.int64)
        frequencies = np.empty(int(indptr[-1]), dtype=np.float64)
        idf = np.empty(int(indptr[-1]), dtype=np.float64)
        cursor = 0
        for term in terms:
            members = sorted(doc_index[doc_id] for doc_id in self._postings[term])
            term_idf = self.idf(term)
            for doc in members:
                posting_docs[cursor] = doc
                frequencies[cursor] = self._doc_term_counts[doc_ids[doc]][term]
                idf[cursor] = term_idf
                cursor += 1

        # Exactly Eq. 1–2, in the same operation order as the scalar oracle
        # so the accumulated scores are bitwise-identical to ``score()``
        # (under the default float64 dtype).
        norms = 1.0 - b + b * doc_lengths / avg_len
        impacts = (idf * (frequencies * (k1 + 1.0))) / (
            frequencies + k1 * norms[posting_docs]
        )

        self._doc_ids = doc_ids
        self._doc_id_set = frozenset(doc_ids)
        self._doc_ranks = ranks
        self._term_slots = term_slots
        self._indptr = indptr
        self._posting_docs = posting_docs
        self._posting_impacts = impacts.astype(self.dtype, copy=False)
        self._score_buffer = np.zeros(len(doc_ids), dtype=np.float64)
        self._compiled = True

    # ------------------------------------------------------------------ #
    # compiled-state round trip
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict[str, np.ndarray]:
        """The compiled arrays as a flat dict (finalizes first if needed)."""
        self.finalize()
        terms = sorted(self._term_slots, key=self._term_slots.get)
        return {
            "doc_ids": _as_str_array(self._doc_ids),
            "doc_ranks": self._doc_ranks,
            "terms": _as_str_array(terms),
            "indptr": self._indptr,
            "posting_docs": self._posting_docs,
            "posting_impacts": self._posting_impacts,
            "k1": np.asarray(self.parameters.k1),
            "b": np.asarray(self.parameters.b),
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> BM25Index:
        """Rebuild a query-only index from :meth:`export_state` output."""
        impacts = np.asarray(state["posting_impacts"])
        index = cls(
            BM25Parameters(k1=float(state["k1"]), b=float(state["b"])),
            dtype=impacts.dtype,
        )
        index._doc_ids = [str(d) for d in state["doc_ids"]]
        index._doc_id_set = frozenset(index._doc_ids)
        index._doc_ranks = np.asarray(state["doc_ranks"], dtype=np.int64)
        index._term_slots = {str(term): slot for slot, term in enumerate(state["terms"])}
        index._indptr = np.asarray(state["indptr"], dtype=np.int64)
        index._posting_docs = np.asarray(state["posting_docs"], dtype=np.int64)
        index._posting_impacts = impacts
        index._score_buffer = np.zeros(len(index._doc_ids), dtype=np.float64)
        index._frozen = True
        index._compiled = True
        return index

    @classmethod
    def shard_state(cls, state: dict[str, np.ndarray], num_shards: int
                    ) -> list[dict[str, np.ndarray]]:
        """Split a compiled state into ``num_shards`` document-range shards.

        Each shard keeps the full term vocabulary but only the postings of
        its document range; document ids and ranks are literal array slices.
        The per-``(term, doc)`` impacts embed the *global* corpus statistics
        (IDF, average length), so a document's accumulated score inside a
        shard is bitwise-identical to its score in the unsharded index —
        which is what lets :class:`ShardedBackend` merge shard top-k lists
        without re-scoring.
        """
        doc_ids = np.asarray(state["doc_ids"])
        doc_ranks = np.asarray(state["doc_ranks"], dtype=np.int64)
        indptr = np.asarray(state["indptr"], dtype=np.int64)
        posting_docs = np.asarray(state["posting_docs"], dtype=np.int64)
        impacts = np.asarray(state["posting_impacts"])
        n_terms = len(indptr) - 1
        # Which term owns each posting: postings are grouped by term slot, so
        # masking by a doc range keeps the grouping and per-term doc order.
        term_of_posting = np.repeat(
            np.arange(n_terms, dtype=np.int64), np.diff(indptr)
        )
        shards: list[dict[str, np.ndarray]] = []
        for lo, hi in shard_boundaries(len(doc_ids), num_shards):
            mask = (posting_docs >= lo) & (posting_docs < hi)
            counts = np.bincount(term_of_posting[mask], minlength=n_terms)
            shard_indptr = np.zeros(n_terms + 1, dtype=np.int64)
            np.cumsum(counts, out=shard_indptr[1:])
            shards.append({
                "doc_ids": doc_ids[lo:hi],
                "doc_ranks": doc_ranks[lo:hi],
                "terms": state["terms"],
                "indptr": shard_indptr,
                "posting_docs": posting_docs[mask] - lo,
                "posting_impacts": impacts[mask],
                "k1": state["k1"],
                "b": state["b"],
            })
        return shards

    # ------------------------------------------------------------------ #
    # retrieval
    # ------------------------------------------------------------------ #
    def score(self, query: str, doc_id: str) -> float:
        """BM25 score of ``doc_id`` for ``query`` (0 for unindexed documents).

        This scalar path is the reference oracle for the vectorized
        :meth:`search`; the parity tests hold the two to each other.  It
        requires the builder dicts and therefore raises on an index restored
        with :meth:`from_state`.
        """
        self._require_builder("score")
        counts = self._doc_term_counts.get(doc_id)
        if counts is None:
            return 0.0
        k1, b = self.parameters.k1, self.parameters.b
        avg_len = self.average_document_length or 1.0
        doc_len = self._doc_lengths[doc_id]
        total = 0.0
        for term in basic_tokenize(query):
            frequency = counts.get(term, 0)
            if frequency == 0:
                continue
            idf = self.idf(term)
            numerator = frequency * (k1 + 1.0)
            denominator = frequency + k1 * (1.0 - b + b * doc_len / avg_len)
            total += idf * numerator / denominator
        return total

    def search(self, query: str, top_k: int = 10) -> list[SearchHit]:
        """Return the ``top_k`` highest-scoring documents for ``query``.

        Only documents sharing at least one term with the query are scored,
        mirroring how an inverted index narrows the candidate set.  Every
        impact is strictly positive (the +1-smoothed IDF never vanishes), so
        every touched document is a genuine hit.
        """
        if top_k <= 0:
            return []
        query_terms = basic_tokenize(query)
        if not query_terms:
            return []
        self.finalize()

        scores = self._score_buffer
        touched: list[np.ndarray] = []
        # Iterate tokens in query order (duplicates included) so the per-doc
        # float accumulation replays the oracle's additions exactly.
        for term in query_terms:
            slot = self._term_slots.get(term)
            if slot is None:
                continue
            start, stop = self._indptr[slot], self._indptr[slot + 1]
            docs = self._posting_docs[start:stop]
            scores[docs] += self._posting_impacts[start:stop]
            touched.append(docs)
        if not touched:
            return []

        candidates = np.unique(np.concatenate(touched))
        candidate_scores = scores[candidates].copy()
        scores[candidates] = 0.0  # reset the shared buffer for the next query
        return _select_top_hits(
            candidates, candidate_scores, self._doc_ranks, self._doc_ids, top_k
        )

    def search_batch(self, queries: Sequence[str], top_k: int = 10
                     ) -> list[list[SearchHit]]:
        """Search many queries against the compiled index in one pass.

        The compile cost (``search`` self-finalizes on the first query) and
        the score buffer are shared across the batch; results align with
        ``queries``.
        """
        return [self.search(query, top_k=top_k) for query in queries]


# --------------------------------------------------------------------------- #
# character-n-gram embedding backend
# --------------------------------------------------------------------------- #
@register_backend
class CharNGramIndex:
    """Approximate retrieval over hashed character-n-gram embeddings.

    Every document (and query) is embedded into a ``dim``-dimensional count
    vector: each token contributes the buckets of its boundary-marked
    character ``n``-grams plus one whole-token bucket, hashed with the
    platform-independent CRC32.  Vectors are L2-normalised, so retrieval is
    cosine similarity — a dense matrix-vector product against the compiled
    embedding matrix.  Documents sharing no hashed n-gram with the query
    score exactly 0 and are never returned, matching the inverted-index
    contract that only overlapping documents are hits.

    Compared to BM25's exact term matching this tolerates typos, inflections
    and partial mentions; it exists primarily to prove the
    :class:`RetrievalBackend` protocol supports a second, structurally
    different engine, and shares the protocol's deterministic
    ``(-score, doc_id)`` tie-break.
    """

    backend_name: ClassVar[str] = "char_ngram"

    def __init__(self, n: int = 3, dim: int = 512,
                 dtype: str | np.dtype = np.float32):
        if n < 2:
            raise ValueError("n must be at least 2")
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.n = n
        self.dim = dim
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        self._texts: dict[str, str] = {}
        self._frozen = False
        self._compiled = False
        self._doc_ids: list[str] = []
        self._doc_id_set: frozenset[str] = frozenset()
        self._doc_ranks: np.ndarray | None = None
        self._matrix: np.ndarray | None = None  # (n_docs, dim), rows L2-normalised

    # ------------------------------------------------------------------ #
    def _buckets(self, text: str) -> np.ndarray:
        """Hashed n-gram bucket indices of ``text`` (duplicates kept: counts)."""
        buckets: list[int] = []
        for token in basic_tokenize(text):
            marked = f"#{token}#"
            # Whole-token bucket keeps an exact-match signal even for tokens
            # shorter than the n-gram width.
            buckets.append(zlib.crc32(token.encode("utf-8")) % self.dim)
            for i in range(len(marked) - self.n + 1):
                gram = marked[i : i + self.n]
                buckets.append(zlib.crc32(gram.encode("utf-8")) % self.dim)
        return np.asarray(buckets, dtype=np.int64)

    def _embed(self, text: str) -> np.ndarray:
        vector = np.zeros(self.dim, dtype=np.float64)
        buckets = self._buckets(text)
        if buckets.size:
            np.add.at(vector, buckets, 1.0)
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector /= norm
        return vector.astype(self.dtype, copy=False)

    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises ``ValueError``."""
        if self._frozen:
            raise RuntimeError(
                "this index was restored from exported state and is query-only"
            )
        if doc_id in self._texts:
            raise ValueError(f"document {doc_id!r} already indexed")
        self._texts[doc_id] = text
        self._compiled = False

    @classmethod
    def build(cls, documents: Iterable[tuple[str, str]], **kwargs) -> CharNGramIndex:
        """Build an index from ``(doc_id, text)`` pairs."""
        index = cls(**kwargs)
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    def __len__(self) -> int:
        if self._frozen:
            return len(self._doc_ids)
        return len(self._texts)

    def __contains__(self, doc_id: str) -> bool:
        if self._frozen:
            return doc_id in self._doc_id_set
        return doc_id in self._texts

    @property
    def is_finalized(self) -> bool:
        return self._compiled

    # ------------------------------------------------------------------ #
    def finalize(self) -> None:
        """Compile the embedding matrix (idempotent; invalidated by adds)."""
        if self._compiled:
            return
        doc_ids = list(self._texts)
        matrix = np.zeros((len(doc_ids), self.dim), dtype=self.dtype)
        for row, doc_id in enumerate(doc_ids):
            matrix[row] = self._embed(self._texts[doc_id])
        self._doc_ids = doc_ids
        self._doc_id_set = frozenset(doc_ids)
        self._doc_ranks = _doc_ranks(doc_ids)
        self._matrix = matrix
        self._compiled = True

    def export_state(self) -> dict[str, np.ndarray]:
        """The compiled arrays as a flat dict (finalizes first if needed)."""
        self.finalize()
        return {
            "doc_ids": _as_str_array(self._doc_ids),
            "doc_ranks": self._doc_ranks,
            "matrix": self._matrix,
            "n": np.asarray(self.n),
            "dim": np.asarray(self.dim),
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> CharNGramIndex:
        """Rebuild a query-only index from :meth:`export_state` output."""
        matrix = np.asarray(state["matrix"])
        index = cls(n=int(state["n"]), dim=int(state["dim"]), dtype=matrix.dtype)
        index._doc_ids = [str(d) for d in state["doc_ids"]]
        index._doc_id_set = frozenset(index._doc_ids)
        index._doc_ranks = np.asarray(state["doc_ranks"], dtype=np.int64)
        index._matrix = matrix
        index._frozen = True
        index._compiled = True
        return index

    @classmethod
    def shard_state(cls, state: dict[str, np.ndarray], num_shards: int
                    ) -> list[dict[str, np.ndarray]]:
        """Split a compiled state into ``num_shards`` document-range shards.

        Rows of the embedding matrix (and the id/rank arrays) are sliced per
        shard.  Each row's cosine score is an independent dot product and the
        quantisation in :meth:`search` absorbs BLAS blocking noise, so shard
        scores match the unsharded index exactly.
        """
        doc_ids = np.asarray(state["doc_ids"])
        doc_ranks = np.asarray(state["doc_ranks"], dtype=np.int64)
        matrix = np.asarray(state["matrix"])
        return [
            {
                "doc_ids": doc_ids[lo:hi],
                "doc_ranks": doc_ranks[lo:hi],
                "matrix": np.ascontiguousarray(matrix[lo:hi]),
                "n": state["n"],
                "dim": state["dim"],
            }
            for lo, hi in shard_boundaries(len(doc_ids), num_shards)
        ]

    def search(self, query: str, top_k: int = 10) -> list[SearchHit]:
        """Return the ``top_k`` most cosine-similar documents for ``query``."""
        if top_k <= 0:
            return []
        self.finalize()
        if not self._doc_ids:
            return []
        query_vector = self._embed(query)
        if not np.any(query_vector):
            return []
        scores = self._matrix.astype(np.float64, copy=False) @ query_vector.astype(
            np.float64, copy=False
        )
        # BLAS may split the per-row dot products differently depending on row
        # alignment, so even identical documents can disagree in the last ulp.
        # Cosine scores live in [0, 1]; quantizing to 12 decimal digits
        # collapses that summation noise without merging genuinely different
        # similarities, which keeps the (-score, doc_id) tie-break exact.
        scores = np.round(scores, 12)
        candidates = np.nonzero(scores > 0.0)[0]
        if candidates.size == 0:
            return []
        return _select_top_hits(
            candidates, scores[candidates], self._doc_ranks, self._doc_ids, top_k
        )

    def search_batch(self, queries: Sequence[str], top_k: int = 10
                     ) -> list[list[SearchHit]]:
        """Search many queries; results align with ``queries``.

        Delegates to :meth:`search` per query: a fused matrix-matrix product
        would be faster but produces slightly different float sums than the
        sequential path, and the protocol requires the two to agree exactly.
        """
        self.finalize()
        return [self.search(query, top_k=top_k) for query in queries]


# --------------------------------------------------------------------------- #
# sharded execution
# --------------------------------------------------------------------------- #
class _ShardSet:
    """The executor payload of a :class:`ShardedBackend`: shard states plus a
    per-process cache of the restored shard indexes.

    The states (plain array dicts) are what crosses a process boundary; each
    worker restores a shard lazily on first touch and keeps it for the life
    of the pool, so per-task traffic is only queries out and hits back.

    Every worker receives the full shard set and restores whichever shards
    the pool happens to hand it, so a worker's resident set can grow toward
    the whole index over time (bounded by pool size x index size in the
    worst case).  Pinning shard *i* to worker *i* — true shard affinity —
    would bound each worker to one shard; that is the ROADMAP's next step
    for genuinely large indexes.
    """

    def __init__(self, backend_name: str, states: list[dict[str, np.ndarray]]):
        self.backend_name = backend_name
        self.states = states
        self._restored: dict[int, RetrievalBackend] = {}

    def shard(self, index: int) -> RetrievalBackend:
        backend = self._restored.get(index)
        if backend is None:
            backend = restore_backend(self.backend_name, self.states[index])
            self._restored[index] = backend
        return backend

    def __len__(self) -> int:
        return len(self.states)

    def __getstate__(self):
        # Restored shards never travel: each process rebuilds its own.
        return {"backend_name": self.backend_name, "states": self.states}

    def __setstate__(self, state):
        self.backend_name = state["backend_name"]
        self.states = state["states"]
        self._restored = {}


def _search_shard_task(shard_set: _ShardSet, task):
    """Executor task: run one query batch against one shard (any process)."""
    shard_index, queries, top_k = task
    return shard_set.shard(shard_index).search_batch(queries, top_k=top_k)


def _shard_of(task) -> int:
    """Breaker key of a shard-search task (tasks are ``(shard, queries, k)``)."""
    return task[0]


class ShardedBackend:
    """Fan ``search_batch`` out across document-range shards of one index.

    Wraps any registered :class:`RetrievalBackend`: the wrapped index's
    compiled state is split into ``num_shards`` array-slice shards via its
    ``shard_state`` classmethod, each shard is served as an independent
    query-only index, and searches are distributed through a
    :class:`~repro.runtime.SearchExecutor` (``serial`` by default; ``thread``
    or ``process`` for actual parallelism — the shard states cross into
    worker processes once, at pool start-up).

    **Bitwise parity.**  Shards cover disjoint document ranges, so every
    document's score is computed exactly as in the unsharded index; any
    document in the global top-k is necessarily in its own shard's top-k,
    and re-sorting the union of shard top-k lists by ``(-score, doc_id)``
    therefore reproduces the unsharded ranking bit for bit.  The conformance
    suite asserts this for every registered backend at 1, 2 and 7 shards.

    The wrapper is query-only (``add_document`` raises); it exposes the
    *unsharded* compiled state through :meth:`export_state`, so service
    bundles persist the canonical arrays plus a shard plan instead of K
    shard copies.  Like the concrete backends, a ``ShardedBackend`` instance
    may serve one ``search_batch`` at a time; the executor it owns must not
    be shared with other payloads.

    **Fault tolerance.**  With a :class:`~repro.runtime.RuntimePolicy` (the
    default), shard searches run through a
    :class:`~repro.runtime.ResilientExecutor`: each shard gets per-task
    deadlines, bounded retries and its own circuit breaker, and a shard whose
    dispatch still fails (or whose breaker is open) is searched *serially in
    this process* against the same shard state — identical code path, so
    results stay bitwise-identical and only latency degrades.  Only when that
    local fallback fails too does :meth:`search_batch` raise
    :class:`~repro.core.errors.ShardUnavailable`.  Pass ``policy=None`` for
    the bare fan-out (benchmarks measure the wrapper overhead against it).
    """

    backend_name: ClassVar[str] = "sharded"

    def __init__(self, backend: RetrievalBackend, num_shards: int = 2,
                 executor=None, policy="default"):
        if isinstance(backend, ShardedBackend):
            raise TypeError("refusing to shard an already-sharded backend")
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        inner_name = getattr(type(backend), "backend_name", None)
        if not inner_name or inner_name not in _BACKENDS:
            raise ValueError(
                f"{type(backend).__name__} is not a registered backend; "
                "register it so shard workers can restore shards by name"
            )
        if not hasattr(type(backend), "shard_state"):
            raise TypeError(
                f"{type(backend).__name__} does not implement shard_state"
            )
        backend.finalize()
        self._inner = backend
        self.inner_backend_name = inner_name
        self.num_shards = num_shards
        self._state = backend.export_state()
        self._shard_set = _ShardSet(
            inner_name, type(backend).shard_state(self._state, num_shards)
        )
        if executor is None:
            from repro.runtime import SerialExecutor

            executor = SerialExecutor()
        self.executor = executor
        self.executor.configure(self._shard_set)
        if policy == "default":
            from repro.runtime.resilience import RuntimePolicy

            policy = RuntimePolicy()
        self.policy = policy
        if policy is None:
            self._dispatch = self.executor
            self._resilience = None
        else:
            from repro.runtime.resilience import ResilienceStats, ResilientExecutor

            self._resilience = ResilienceStats()
            self._dispatch = ResilientExecutor(
                self.executor, policy, target_of=_shard_of, stats=self._resilience
            )

    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, text: str) -> None:
        raise RuntimeError(
            "ShardedBackend is query-only: rebuild the wrapped index and "
            "re-shard to add documents"
        )

    def finalize(self) -> None:
        """No-op: shards are built from an already-compiled state."""

    @property
    def is_finalized(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._inner

    # ------------------------------------------------------------------ #
    def export_state(self) -> dict[str, np.ndarray]:
        """The wrapped index's *unsharded* compiled state (for bundles)."""
        return self._state

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> ShardedBackend:
        raise NotImplementedError(
            "restore the inner backend with restore_backend(name, state) and "
            "wrap it: ShardedBackend(inner, num_shards, executor)"
        )

    @classmethod
    def shard_state(cls, state: dict[str, np.ndarray], num_shards: int):
        raise NotImplementedError("ShardedBackend states are already sharded")

    # ------------------------------------------------------------------ #
    def search(self, query: str, top_k: int = 10) -> list[SearchHit]:
        return self.search_batch([query], top_k=top_k)[0]

    def search_batch(self, queries: Sequence[str], top_k: int = 10
                     ) -> list[list[SearchHit]]:
        """Search all shards through the executor and merge per-shard top-k."""
        queries = list(queries)
        if not queries or top_k <= 0:
            return [[] for _ in queries]
        tasks = [
            (shard_index, queries, top_k) for shard_index in range(self.num_shards)
        ]
        if self._resilience is None:
            per_shard = self.executor.map(_search_shard_task, tasks)
        else:
            per_shard = self._search_resilient(tasks, queries, top_k)
        merged: list[list[SearchHit]] = []
        for query_index in range(len(queries)):
            union = [
                hit
                for shard_hits in per_shard
                for hit in shard_hits[query_index]
            ]
            union.sort(key=lambda hit: (-hit.score, hit.doc_id))
            merged.append(union[:top_k])
        return merged

    def _search_resilient(self, tasks, queries, top_k) -> list:
        """Dispatch shards through the resilient executor, degrading per shard."""
        futures = [self._dispatch.submit(_search_shard_task, task) for task in tasks]
        per_shard = []
        for task, future in zip(tasks, futures, strict=True):
            try:
                per_shard.append(future.result())
            # repro: allow[REP104] -- degraded path: _search_shard_locally
            # retries serially and raises ShardUnavailable on double failure
            except Exception as error:
                per_shard.append(
                    self._search_shard_locally(task[0], queries, top_k, error)
                )
        return per_shard

    def _search_shard_locally(self, shard_index: int, queries, top_k: int,
                              error: BaseException) -> list:
        """Serial in-process fallback for one shard (bitwise-identical results).

        Restores the shard from the same exported state the workers use and
        runs the same ``search_batch``, so degraded mode changes latency,
        never rankings.
        """
        self._resilience.increment("fallbacks")
        try:
            shard = self._shard_set.shard(shard_index)
            return shard.search_batch(queries, top_k=top_k)
        except Exception as fallback_error:  # noqa: BLE001 - now truly dark
            raise ShardUnavailable(
                f"shard {shard_index} failed via the executor "
                f"({type(error).__name__}: {error}) and the serial in-process "
                f"fallback failed too"
            ) from fallback_error

    def resilience_stats(self) -> dict:
        """Fault counters + per-shard breaker states (empty when bare)."""
        if self._resilience is None:
            return {"counters": {}, "breakers": {}, "breaker_trips": 0}
        return {
            "counters": self._resilience.snapshot(),
            "breakers": {
                str(target): state
                for target, state in sorted(self._dispatch.breaker_states().items())
            },
            "breaker_trips": self._dispatch.breaker_trips(),
        }

    def reset_resilience_stats(self) -> None:
        """Zero the fault counters (breaker states and trip totals persist)."""
        if self._resilience is not None:
            self._resilience.reset()

    def close(self) -> None:
        """Shut down the owned executor (worker pools, if any)."""
        self.executor.close()


def reference_search(index: BM25Index, query: str, top_k: int = 10) -> list[SearchHit]:
    """The seed scalar search: candidate set from postings, one ``score()`` per doc.

    This is the oracle the vectorized :meth:`BM25Index.search` must match
    exactly; the parity tests and the retrieval benchmark baseline both use
    this single definition so the reference cannot drift.
    """
    if top_k <= 0:
        return []
    query_terms = basic_tokenize(query)
    if not query_terms:
        return []
    candidates: set[str] = set()
    for term in query_terms:
        candidates.update(index._postings.get(term, ()))
    scored = [
        SearchHit(doc_id=doc_id, score=index.score(query, doc_id))
        for doc_id in candidates
    ]
    scored = [hit for hit in scored if hit.score > 0.0]
    scored.sort(key=lambda hit: (-hit.score, hit.doc_id))
    return scored[:top_k]
