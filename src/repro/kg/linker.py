"""Cell-mention to knowledge-graph entity linking (Part 1, step 1).

Given a table cell mention, the linker

1. applies the named-entity schema detector: numbers and dates are never
   linked (their linking score is defined to be 0 by the paper);
2. queries the BM25 index with the mention text and returns up to
   ``max_candidates`` entities with their BM25 linking scores ``ls_e``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.kg.bm25 import BM25Index, BM25Parameters
from repro.kg.graph import KnowledgeGraph
from repro.text.ner import EntitySchema, detect_schema

__all__ = ["EntityLink", "LinkerConfig", "EntityLinker"]


@dataclass(frozen=True)
class EntityLink:
    """One candidate link between a cell mention and a KG entity."""

    entity_id: str
    score: float


@dataclass(frozen=True)
class LinkerConfig:
    """Configuration of the entity linker.

    ``max_candidates`` corresponds to the paper's "we retrieved up to 10
    entities from the KG for each cell mention".
    """

    max_candidates: int = 10
    bm25: BM25Parameters = field(default_factory=BM25Parameters)
    link_numbers_and_dates: bool = False

    def __post_init__(self) -> None:
        if self.max_candidates <= 0:
            raise ValueError("max_candidates must be positive")


class EntityLinker:
    """Link table cell mentions to candidate KG entities via BM25 retrieval."""

    def __init__(self, graph: KnowledgeGraph, config: LinkerConfig | None = None,
                 index: BM25Index | None = None):
        self.graph = graph
        self.config = config or LinkerConfig()
        if index is None:
            index = BM25Index.build(
                ((entity.entity_id, entity.document_text()) for entity in graph.entities()),
                parameters=self.config.bm25,
            )
        self.index = index
        # Mentions repeat heavily inside a corpus (same cities, teams, people
        # across tables); memoising the raw retrieval is a large speed-up.
        self._cached_search = lru_cache(maxsize=200_000)(self._search)

    # ------------------------------------------------------------------ #
    def _search(self, mention: str) -> tuple[EntityLink, ...]:
        hits = self.index.search(mention, top_k=self.config.max_candidates)
        return tuple(EntityLink(entity_id=hit.doc_id, score=hit.score) for hit in hits)

    def link(self, mention: str) -> list[EntityLink]:
        """Return candidate entity links for ``mention`` (possibly empty).

        Numbers and dates receive no links, following the paper: "For
        instances where the cell mention corresponds to a number or a date, it
        is inappropriate to link it to the KG.  In such situations, we assign
        a linking score of 0 to the cell."
        """
        if mention is None:
            return []
        mention = str(mention).strip()
        if not mention:
            return []
        if not self.config.link_numbers_and_dates:
            schema = detect_schema(mention)
            if schema in (EntitySchema.NUMBER, EntitySchema.DATE):
                return []
        return list(self._cached_search(mention.lower()))

    def best_link(self, mention: str) -> EntityLink | None:
        """The single highest-scoring link for ``mention``, if any."""
        links = self.link(mention)
        return links[0] if links else None

    def linking_score(self, mention: str) -> float:
        """The cell linking score ``ls_{m}`` = max BM25 score over candidates (Eq. 4)."""
        best = self.best_link(mention)
        return best.score if best is not None else 0.0

    def cache_info(self):
        """Expose retrieval cache statistics (useful in benchmarks)."""
        return self._cached_search.cache_info()
