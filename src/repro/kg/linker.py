"""Cell-mention to knowledge-graph entity linking (Part 1, step 1).

Given a table cell mention, the linker

1. applies the named-entity schema detector: numbers and dates are never
   linked (their linking score is defined to be 0 by the paper);
2. queries the retrieval backend (BM25 by default, Eq. 1–2) with the mention
   text and returns up to ``max_candidates`` entities with their linking
   scores ``ls_e``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from collections.abc import Sequence

from repro.kg.backends import (
    BM25Parameters,
    RetrievalBackend,
    ShardedBackend,
    create_backend,
)
from repro.kg.graph import KnowledgeGraph
from repro.text.ner import EntitySchema, detect_schema

__all__ = ["EntityLink", "LinkerConfig", "EntityLinker"]


@dataclass(frozen=True)
class EntityLink:
    """One candidate link between a cell mention and a KG entity."""

    entity_id: str
    score: float


@dataclass(frozen=True)
class LinkerConfig:
    """Configuration of the entity linker.

    ``max_candidates`` corresponds to the paper's "we retrieved up to 10
    entities from the KG for each cell mention".  ``backend`` names the
    registered :class:`~repro.kg.backends.RetrievalBackend` built over the
    graph's entity documents when no pre-built index is supplied; ``bm25``
    parameterises that backend when it is the BM25 one.

    ``num_shards``/``executor`` are the scale-out plan: with
    ``num_shards > 1`` the index is wrapped in a
    :class:`~repro.kg.backends.ShardedBackend` whose searches fan out
    through the named :class:`~repro.runtime.SearchExecutor` (``serial``,
    ``thread`` or ``process``).  Results are bitwise-identical to the
    unsharded index regardless of the plan, so sharding is purely a
    deployment decision.
    """

    max_candidates: int = 10
    bm25: BM25Parameters = field(default_factory=BM25Parameters)
    link_numbers_and_dates: bool = False
    backend: str = "bm25"
    num_shards: int = 1
    executor: str = "serial"

    def __post_init__(self) -> None:
        if self.max_candidates <= 0:
            raise ValueError("max_candidates must be positive")
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")


class EntityLinker:
    """Link table cell mentions to candidate KG entities via ranked retrieval.

    The linker talks to retrieval exclusively through the
    :class:`~repro.kg.backends.RetrievalBackend` protocol.  Either pass a
    pre-built ``index`` (any backend — this is how serving processes inject
    an index restored from a bundle, and how several linkers share one
    index), or pass a ``graph`` whose entity documents are indexed into a
    freshly created ``config.backend``.

    When ``config.num_shards > 1`` the index is wrapped in a
    :class:`~repro.kg.backends.ShardedBackend`; ``executor`` optionally
    injects a ready :class:`~repro.runtime.SearchExecutor` for the shard
    fan-out (otherwise one is created from ``config.executor`` by name), and
    ``runtime_policy`` forwards a :class:`~repro.runtime.RuntimePolicy` to
    that wrapper (``"default"`` → the stock policy; ``None`` → bare fan-out).
    """

    def __init__(self, graph: KnowledgeGraph | None = None,
                 config: LinkerConfig | None = None,
                 index: RetrievalBackend | None = None,
                 executor=None, runtime_policy="default"):
        self.graph = graph
        self.config = config or LinkerConfig()
        if index is None:
            if graph is None:
                raise ValueError("EntityLinker needs a graph or a pre-built index")
            kwargs = {"parameters": self.config.bm25} if self.config.backend == "bm25" else {}
            index = create_backend(self.config.backend, **kwargs)
            for entity in graph.entities():
                index.add_document(entity.entity_id, entity.document_text())
        # Whether this linker created the sharded wrapper (and therefore owns
        # its executor's worker pool): a pre-wrapped index stays the caller's
        # responsibility to close.
        self._owns_sharded_index = False
        if self.config.num_shards > 1 and not isinstance(index, ShardedBackend):
            if executor is None:
                from repro.runtime import create_executor

                executor = create_executor(self.config.executor)
            index = ShardedBackend(
                index, num_shards=self.config.num_shards, executor=executor,
                policy=runtime_policy,
            )
            self._owns_sharded_index = True
        self.index = index
        # Mentions repeat heavily inside a corpus (same cities, teams, people
        # across tables); memoising the raw retrieval is a large speed-up.
        self._cached_search = lru_cache(maxsize=200_000)(self._search)

    # ------------------------------------------------------------------ #
    def _search(self, mention: str) -> tuple[EntityLink, ...]:
        hits = self.index.search(mention, top_k=self.config.max_candidates)
        return tuple(EntityLink(entity_id=hit.doc_id, score=hit.score) for hit in hits)

    def _retrieval_key(self, mention: str, schema: EntitySchema | None = None
                       ) -> str | None:
        """Normalised cache key for ``mention``, or ``None`` when it must not link.

        Numbers and dates receive no links, following the paper: "For
        instances where the cell mention corresponds to a number or a date, it
        is inappropriate to link it to the KG.  In such situations, we assign
        a linking score of 0 to the cell."
        """
        if mention is None:
            return None
        text = str(mention).strip()
        if not text:
            return None
        if not self.config.link_numbers_and_dates:
            # A supplied schema is only reusable when it was detected on the
            # exact text being linked (stripping can change the detection).
            if schema is None or text != mention:
                schema = detect_schema(text)
            if schema in (EntitySchema.NUMBER, EntitySchema.DATE):
                return None
        return text.lower()

    def link(self, mention: str) -> list[EntityLink]:
        """Return candidate entity links for ``mention`` (possibly empty)."""
        key = self._retrieval_key(mention)
        if key is None:
            return []
        return list(self._cached_search(key))

    def link_batch(self, mentions: Sequence[str],
                   schemas: Sequence[EntitySchema] | None = None
                   ) -> list[list[EntityLink]]:
        """Link many mentions at once; results align with ``mentions``.

        Mentions are normalised and deduplicated before touching the index,
        so a table whose cells repeat the same entity pays for one retrieval.
        ``schemas`` optionally supplies pre-detected schemas aligned with
        ``mentions`` to avoid re-running the number/date detector.  The
        per-mention results are identical to sequential :meth:`link` calls.
        """
        if schemas is not None and len(schemas) != len(mentions):
            raise ValueError("schemas must align with mentions")
        keys = [
            self._retrieval_key(mention, schemas[i] if schemas is not None else None)
            for i, mention in enumerate(mentions)
        ]
        fresh = [key for key in dict.fromkeys(keys) if key is not None]
        # The lru_cache stays the cross-table layer: each distinct key is
        # resolved through it exactly once per batch.
        resolved = {key: self._cached_search(key) for key in fresh}
        return [list(resolved[key]) if key is not None else [] for key in keys]

    def best_link(self, mention: str) -> EntityLink | None:
        """The single highest-scoring link for ``mention``, if any."""
        links = self.link(mention)
        return links[0] if links else None

    def linking_score(self, mention: str) -> float:
        """The cell linking score ``ls_{m}`` = max BM25 score over candidates (Eq. 4)."""
        best = self.best_link(mention)
        return best.score if best is not None else 0.0

    def cache_info(self):
        """Expose retrieval cache statistics (useful in benchmarks)."""
        return self._cached_search.cache_info()

    def cache_clear(self) -> None:
        """Drop the memoised retrievals (cold-cache benchmarking)."""
        self._cached_search.cache_clear()

    def close(self) -> None:
        """Shut down worker pools behind a shard wrap this linker created.

        A no-op unless the linker itself wrapped the index in a
        :class:`~repro.kg.backends.ShardedBackend` (``config.num_shards > 1``
        with an unwrapped index) — injected indexes and executors belong to
        the caller.
        """
        if self._owns_sharded_index and isinstance(self.index, ShardedBackend):
            self.index.close()

    def __enter__(self) -> EntityLinker:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
