"""Okapi BM25 inverted index over knowledge-graph entity documents.

This replaces the Elasticsearch deployment used by the paper.  The scoring
function is exactly Eq. 1–2:

``score(q, e) = sum_w IDF(w) * f(w, e) * (k1 + 1) / (f(w, e) + k1 * (1 - b + b * |e| / avg_len))``

with ``IDF(w) = ln((N - n(w) + 0.5) / (n(w) + 0.5) + 1)``.

Compiled index layout
---------------------

Documents are added through the dict-based builder API, but retrieval runs
against a CSR-style compiled form produced lazily by :meth:`BM25Index.finalize`
(invalidated by :meth:`BM25Index.add_document`):

* ``_doc_ids`` — document ids in insertion order; a document's position in
  this list is its integer index in every array below.
* ``_doc_ranks`` — ``int64[n_docs]``, the lexicographic rank of each doc id,
  used for the deterministic ``(-score, doc_id)`` tie-break without string
  comparisons at query time.
* ``_term_slots`` — term → slot mapping (terms sorted lexicographically).
* ``_indptr`` — ``int64[n_terms + 1]`` postings offsets: the postings of slot
  ``t`` live in ``[_indptr[t], _indptr[t + 1])``.
* ``_posting_docs`` — ``int64[nnz]`` document indices, ascending within each
  term's slice.
* ``_posting_impacts`` — ``float64[nnz]`` precomputed per-``(term, doc)``
  impact scores ``idf(w) * f * (k1 + 1) / (f + k1 * (1 - b + b * |d| / avg))``
  so a query is a pure gather + accumulate with no per-candidate arithmetic.

:meth:`search` accumulates impacts per query token into a dense score buffer
(bitwise-identical to the scalar :meth:`score` oracle, which remains the
reference implementation) and extracts the top-``k`` via ``np.argpartition``
with boundary ties resolved by the ``(-score, doc_id)`` lexsort.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.text.tokenizer import basic_tokenize

__all__ = ["BM25Parameters", "SearchHit", "BM25Index", "reference_search"]


@dataclass(frozen=True)
class BM25Parameters:
    """The two tunable Okapi BM25 parameters (Elasticsearch defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


@dataclass(frozen=True)
class SearchHit:
    """A retrieval result: document (entity) id and its BM25 score."""

    doc_id: str
    score: float


def _normalize_term(term: str) -> str:
    """The single normalization applied to terms entering or querying the index.

    ``basic_tokenize`` already lower-cases, so document-side tokens pass
    through unchanged; user-supplied raw terms (``document_frequency``,
    ``idf``) are folded to the same form here rather than ad hoc at call
    sites.
    """
    return term.lower()


class BM25Index:
    """An inverted index with Okapi BM25 ranking.

    Documents are added with :meth:`add_document` (or in bulk through
    :meth:`build`) and queried with :meth:`search`.  Scores are always
    non-negative; a query with no overlapping terms returns no hits.
    """

    def __init__(self, parameters: BM25Parameters | None = None):
        self.parameters = parameters or BM25Parameters()
        self._doc_term_counts: dict[str, Counter[str]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._postings: dict[str, set[str]] = defaultdict(set)
        self._total_length = 0
        # Compiled (CSR) form, built lazily on first search.
        self._compiled = False
        self._doc_ids: list[str] = []
        self._doc_ranks: np.ndarray | None = None
        self._term_slots: dict[str, int] = {}
        self._indptr: np.ndarray | None = None
        self._posting_docs: np.ndarray | None = None
        self._posting_impacts: np.ndarray | None = None
        self._score_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises ``ValueError``."""
        if doc_id in self._doc_term_counts:
            raise ValueError(f"document {doc_id!r} already indexed")
        terms = basic_tokenize(text)
        counts = Counter(terms)
        self._doc_term_counts[doc_id] = counts
        self._doc_lengths[doc_id] = len(terms)
        self._total_length += len(terms)
        for term in counts:
            self._postings[term].add(doc_id)
        self._compiled = False

    @classmethod
    def build(cls, documents: Iterable[tuple[str, str]],
              parameters: BM25Parameters | None = None) -> "BM25Index":
        """Build an index from ``(doc_id, text)`` pairs."""
        index = cls(parameters)
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._doc_term_counts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_term_counts

    @property
    def average_document_length(self) -> float:
        if not self._doc_term_counts:
            return 0.0
        return self._total_length / len(self._doc_term_counts)

    @property
    def is_finalized(self) -> bool:
        """Whether the compiled arrays are current with the builder dicts."""
        return self._compiled

    def document_frequency(self, term: str) -> int:
        """Number of indexed documents containing ``term``."""
        return len(self._postings.get(_normalize_term(term), ()))

    def idf(self, term: str) -> float:
        """Inverse document frequency with the +1 smoothing of Eq. 2."""
        n_docs = len(self._doc_term_counts)
        n_term = self.document_frequency(term)
        return math.log((n_docs - n_term + 0.5) / (n_term + 0.5) + 1.0)

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def finalize(self) -> None:
        """Compile the dict-based postings into the CSR arrays.

        Called lazily by :meth:`search`; calling it eagerly after bulk
        construction moves the cost out of the first query.  Idempotent, and
        invalidated by :meth:`add_document`.
        """
        if self._compiled:
            return
        k1, b = self.parameters.k1, self.parameters.b
        avg_len = self.average_document_length or 1.0

        doc_ids = list(self._doc_term_counts)
        doc_index = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        doc_lengths = np.asarray(
            [self._doc_lengths[doc_id] for doc_id in doc_ids], dtype=np.float64
        )
        ranks = np.empty(len(doc_ids), dtype=np.int64)
        ranks[np.argsort(np.asarray(doc_ids, dtype=object))] = np.arange(len(doc_ids))

        terms = sorted(self._postings)
        term_slots = {term: slot for slot, term in enumerate(terms)}
        counts_per_term = np.asarray(
            [len(self._postings[term]) for term in terms], dtype=np.int64
        )
        indptr = np.zeros(len(terms) + 1, dtype=np.int64)
        np.cumsum(counts_per_term, out=indptr[1:])

        posting_docs = np.empty(int(indptr[-1]), dtype=np.int64)
        frequencies = np.empty(int(indptr[-1]), dtype=np.float64)
        idf = np.empty(int(indptr[-1]), dtype=np.float64)
        cursor = 0
        for term in terms:
            members = sorted(doc_index[doc_id] for doc_id in self._postings[term])
            term_idf = self.idf(term)
            for doc in members:
                posting_docs[cursor] = doc
                frequencies[cursor] = self._doc_term_counts[doc_ids[doc]][term]
                idf[cursor] = term_idf
                cursor += 1

        # Exactly Eq. 1–2, in the same operation order as the scalar oracle
        # so the accumulated scores are bitwise-identical to ``score()``.
        norms = 1.0 - b + b * doc_lengths / avg_len
        impacts = (idf * (frequencies * (k1 + 1.0))) / (
            frequencies + k1 * norms[posting_docs]
        )

        self._doc_ids = doc_ids
        self._doc_ranks = ranks
        self._term_slots = term_slots
        self._indptr = indptr
        self._posting_docs = posting_docs
        self._posting_impacts = impacts
        self._score_buffer = np.zeros(len(doc_ids), dtype=np.float64)
        self._compiled = True

    # ------------------------------------------------------------------ #
    # retrieval
    # ------------------------------------------------------------------ #
    def score(self, query: str, doc_id: str) -> float:
        """BM25 score of ``doc_id`` for ``query`` (0 for unindexed documents).

        This scalar path is the reference oracle for the vectorized
        :meth:`search`; the parity tests hold the two to each other.
        """
        counts = self._doc_term_counts.get(doc_id)
        if counts is None:
            return 0.0
        k1, b = self.parameters.k1, self.parameters.b
        avg_len = self.average_document_length or 1.0
        doc_len = self._doc_lengths[doc_id]
        total = 0.0
        for term in basic_tokenize(query):
            frequency = counts.get(term, 0)
            if frequency == 0:
                continue
            idf = self.idf(term)
            numerator = frequency * (k1 + 1.0)
            denominator = frequency + k1 * (1.0 - b + b * doc_len / avg_len)
            total += idf * numerator / denominator
        return total

    def search(self, query: str, top_k: int = 10) -> list[SearchHit]:
        """Return the ``top_k`` highest-scoring documents for ``query``.

        Only documents sharing at least one term with the query are scored,
        mirroring how an inverted index narrows the candidate set.  Every
        impact is strictly positive (the +1-smoothed IDF never vanishes), so
        every touched document is a genuine hit.
        """
        if top_k <= 0:
            return []
        query_terms = basic_tokenize(query)
        if not query_terms:
            return []
        self.finalize()

        scores = self._score_buffer
        touched: list[np.ndarray] = []
        # Iterate tokens in query order (duplicates included) so the per-doc
        # float accumulation replays the oracle's additions exactly.
        for term in query_terms:
            slot = self._term_slots.get(term)
            if slot is None:
                continue
            start, stop = self._indptr[slot], self._indptr[slot + 1]
            docs = self._posting_docs[start:stop]
            scores[docs] += self._posting_impacts[start:stop]
            touched.append(docs)
        if not touched:
            return []

        candidates = np.unique(np.concatenate(touched))
        candidate_scores = scores[candidates].copy()
        scores[candidates] = 0.0  # reset the shared buffer for the next query

        k = min(top_k, len(candidates))
        if len(candidates) > k:
            # Keep everything tied with the k-th score so boundary ties are
            # broken by doc id below, exactly as the full sort would.
            kth = np.partition(candidate_scores, len(candidates) - k)[
                len(candidates) - k
            ]
            keep = candidate_scores >= kth
            candidates = candidates[keep]
            candidate_scores = candidate_scores[keep]
        order = np.lexsort((self._doc_ranks[candidates], -candidate_scores))[:k]
        doc_ids = self._doc_ids
        return [
            SearchHit(doc_id=doc_ids[candidates[i]], score=float(candidate_scores[i]))
            for i in order
        ]

    def search_batch(self, queries: Sequence[str], top_k: int = 10
                     ) -> list[list[SearchHit]]:
        """Search many queries against the compiled index in one pass.

        The compile cost (``search`` self-finalizes on the first query) and
        the score buffer are shared across the batch; results align with
        ``queries``.
        """
        return [self.search(query, top_k=top_k) for query in queries]


def reference_search(index: BM25Index, query: str, top_k: int = 10) -> list[SearchHit]:
    """The seed scalar search: candidate set from postings, one ``score()`` per doc.

    This is the oracle the vectorized :meth:`BM25Index.search` must match
    exactly; the parity tests and the retrieval benchmark baseline both use
    this single definition so the reference cannot drift.
    """
    if top_k <= 0:
        return []
    query_terms = basic_tokenize(query)
    if not query_terms:
        return []
    candidates: set[str] = set()
    for term in query_terms:
        candidates.update(index._postings.get(term, ()))
    scored = [
        SearchHit(doc_id=doc_id, score=index.score(query, doc_id))
        for doc_id in candidates
    ]
    scored = [hit for hit in scored if hit.score > 0.0]
    scored.sort(key=lambda hit: (-hit.score, hit.doc_id))
    return scored[:top_k]
