"""Compatibility shim: the BM25 index now lives in :mod:`repro.kg.backends`.

The Okapi BM25 implementation (Eq. 1–2 of the paper) was extracted into the
pluggable retrieval-backend module together with the
:class:`~repro.kg.backends.RetrievalBackend` protocol it implements.  This
module re-exports the historical names so existing imports keep working;
new code should import from :mod:`repro.kg.backends`.
"""

from __future__ import annotations

from repro.kg.backends import (  # noqa: F401
    BM25Index,
    BM25Parameters,
    SearchHit,
    reference_search,
)

__all__ = ["BM25Parameters", "SearchHit", "BM25Index", "reference_search"]
