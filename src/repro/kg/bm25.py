"""Okapi BM25 inverted index over knowledge-graph entity documents.

This replaces the Elasticsearch deployment used by the paper.  The scoring
function is exactly Eq. 1–2:

``score(q, e) = sum_w IDF(w) * f(w, e) * (k1 + 1) / (f(w, e) + k1 * (1 - b + b * |e| / avg_len))``

with ``IDF(w) = ln((N - n(w) + 0.5) / (n(w) + 0.5) + 1)``.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.text.tokenizer import basic_tokenize

__all__ = ["BM25Parameters", "SearchHit", "BM25Index"]


@dataclass(frozen=True)
class BM25Parameters:
    """The two tunable Okapi BM25 parameters (Elasticsearch defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


@dataclass(frozen=True)
class SearchHit:
    """A retrieval result: document (entity) id and its BM25 score."""

    doc_id: str
    score: float


class BM25Index:
    """An inverted index with Okapi BM25 ranking.

    Documents are added with :meth:`add_document` (or in bulk through
    :meth:`build`) and queried with :meth:`search`.  Scores are always
    non-negative; a query with no overlapping terms returns no hits.
    """

    def __init__(self, parameters: BM25Parameters | None = None):
        self.parameters = parameters or BM25Parameters()
        self._doc_term_counts: dict[str, Counter[str]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._postings: dict[str, set[str]] = defaultdict(set)
        self._total_length = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises ``ValueError``."""
        if doc_id in self._doc_term_counts:
            raise ValueError(f"document {doc_id!r} already indexed")
        terms = basic_tokenize(text)
        counts = Counter(terms)
        self._doc_term_counts[doc_id] = counts
        self._doc_lengths[doc_id] = len(terms)
        self._total_length += len(terms)
        for term in counts:
            self._postings[term].add(doc_id)

    @classmethod
    def build(cls, documents: Iterable[tuple[str, str]],
              parameters: BM25Parameters | None = None) -> "BM25Index":
        """Build an index from ``(doc_id, text)`` pairs."""
        index = cls(parameters)
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._doc_term_counts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_term_counts

    @property
    def average_document_length(self) -> float:
        if not self._doc_term_counts:
            return 0.0
        return self._total_length / len(self._doc_term_counts)

    def document_frequency(self, term: str) -> int:
        """Number of indexed documents containing ``term``."""
        return len(self._postings.get(term.lower(), ()))

    def idf(self, term: str) -> float:
        """Inverse document frequency with the +1 smoothing of Eq. 2."""
        n_docs = len(self._doc_term_counts)
        n_term = self.document_frequency(term)
        return math.log((n_docs - n_term + 0.5) / (n_term + 0.5) + 1.0)

    # ------------------------------------------------------------------ #
    # retrieval
    # ------------------------------------------------------------------ #
    def score(self, query: str, doc_id: str) -> float:
        """BM25 score of ``doc_id`` for ``query`` (0 for unindexed documents)."""
        counts = self._doc_term_counts.get(doc_id)
        if counts is None:
            return 0.0
        k1, b = self.parameters.k1, self.parameters.b
        avg_len = self.average_document_length or 1.0
        doc_len = self._doc_lengths[doc_id]
        total = 0.0
        for term in basic_tokenize(query):
            frequency = counts.get(term, 0)
            if frequency == 0:
                continue
            idf = self.idf(term)
            numerator = frequency * (k1 + 1.0)
            denominator = frequency + k1 * (1.0 - b + b * doc_len / avg_len)
            total += idf * numerator / denominator
        return total

    def search(self, query: str, top_k: int = 10) -> list[SearchHit]:
        """Return the ``top_k`` highest-scoring documents for ``query``.

        Only documents sharing at least one term with the query are scored,
        mirroring how an inverted index narrows the candidate set.
        """
        if top_k <= 0:
            return []
        query_terms = basic_tokenize(query)
        if not query_terms:
            return []
        candidates: set[str] = set()
        for term in query_terms:
            candidates.update(self._postings.get(term, ()))
        scored = [
            SearchHit(doc_id=doc_id, score=self.score(query, doc_id))
            for doc_id in candidates
        ]
        scored = [hit for hit in scored if hit.score > 0.0]
        scored.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return scored[:top_k]
