"""A WordPiece-style sub-word tokenizer.

The real BERT tokenizer splits text into words and then greedily matches the
longest sub-word prefixes found in its vocabulary, emitting ``##``-prefixed
continuation pieces.  This implementation does the same, with a vocabulary
learned from the synthetic corpus instead of loaded from a released BERT
checkpoint.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.text.vocab import SpecialTokens, Vocabulary

__all__ = ["basic_tokenize", "WordPieceTokenizer"]

_WORD_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


def basic_tokenize(text: str) -> list[str]:
    """Lower-case and split text into words and isolated punctuation marks."""
    return _WORD_RE.findall(text.lower())


class WordPieceTokenizer:
    """Greedy longest-match-first sub-word tokenizer.

    Parameters
    ----------
    vocabulary:
        Vocabulary holding both whole words and ``##`` continuation pieces.
    max_word_chars:
        Words longer than this are mapped directly to ``[UNK]``.
    """

    def __init__(self, vocabulary: Vocabulary, max_word_chars: int = 32):
        self.vocabulary = vocabulary
        self.max_word_chars = max_word_chars

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    @classmethod
    def train(
        cls,
        texts: Iterable[str],
        vocab_size: int = 4000,
        min_frequency: int = 2,
        specials: SpecialTokens | None = None,
    ) -> WordPieceTokenizer:
        """Learn a sub-word vocabulary from raw texts.

        Whole words above ``min_frequency`` are added first (most frequent
        first); remaining budget is filled with character-level pieces and
        frequent prefixes/suffixes so rare words can still be segmented.
        """
        word_counts: Counter[str] = Counter()
        for text in texts:
            word_counts.update(basic_tokenize(text))

        specials = specials or SpecialTokens()
        budget = vocab_size - len(specials.as_tuple())
        tokens: list[str] = []
        seen: set[str] = set()

        def push(token: str) -> None:
            if token not in seen and len(tokens) < budget:
                seen.add(token)
                tokens.append(token)

        # Character pieces first: they guarantee every word can be segmented
        # without falling back to [UNK].
        char_counts: Counter[str] = Counter()
        for word, count in word_counts.items():
            for index, char in enumerate(word):
                piece = char if index == 0 else f"##{char}"
                char_counts[piece] += count
        for piece, _ in char_counts.most_common():
            push(piece)

        # Then whole words by frequency.
        for word, count in word_counts.most_common():
            if count < min_frequency:
                break
            push(word)

        # Then frequent sub-word prefixes (length 3..6) as continuations.
        affix_counts: Counter[str] = Counter()
        for word, count in word_counts.items():
            for length in range(3, min(len(word), 7)):
                affix_counts[word[:length]] += count
                affix_counts[f"##{word[-length:]}"] += count
        for piece, count in affix_counts.most_common():
            if count < min_frequency:
                break
            push(piece)

        return cls(Vocabulary(tokens, specials=specials))

    # ------------------------------------------------------------------ #
    # tokenisation
    # ------------------------------------------------------------------ #
    def _split_word(self, word: str) -> list[str]:
        if len(word) > self.max_word_chars:
            return [self.vocabulary.specials.unk]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = f"##{candidate}"
                if candidate in self.vocabulary:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [self.vocabulary.specials.unk]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into sub-word pieces."""
        pieces: list[str] = []
        for word in basic_tokenize(text):
            pieces.extend(self._split_word(word))
        return pieces

    def encode(self, text: str, max_length: int | None = None) -> list[int]:
        """Tokenise and convert to ids, optionally truncating to ``max_length``."""
        ids = self.vocabulary.encode(self.tokenize(text))
        if max_length is not None:
            ids = ids[:max_length]
        return ids

    def decode(self, ids: Sequence[int]) -> str:
        """Convert ids back to a readable string (merging ## continuations)."""
        words: list[str] = []
        for token in self.vocabulary.decode(ids):
            if token in self.vocabulary.specials.as_tuple():
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    @property
    def vocab_size(self) -> int:
        return len(self.vocabulary)
