"""Rule-based named-entity schema detection.

The paper uses spaCy for two decisions only:

1. During KG linking, cell mentions recognised as **numbers or dates** are not
   linked (their linking score is set to zero).
2. During candidate-type generation, candidate type entities recognised as
   **PERSON or DATE** are excluded, because such entities do not describe a
   column type well.

This module provides the equivalent coarse schema detection with regular
expressions and a small curated first-name lexicon, which is sufficient for
the synthetic corpora.
"""

from __future__ import annotations

import re
from enum import Enum

__all__ = [
    "EntitySchema",
    "detect_schema",
    "is_numeric_mention",
    "is_date_mention",
    "is_person_mention",
]


class EntitySchema(str, Enum):
    """Coarse named-entity schema categories used by the KG filters."""

    NUMBER = "NUMBER"
    DATE = "DATE"
    PERSON = "PERSON"
    OTHER = "OTHER"


_NUMBER_RE = re.compile(
    r"""^[\s]*[-+]?(
        \d{1,3}(,\d{3})+(\.\d+)?   # 1,234,567.89
        | \d+\.\d+                 # 3.14
        | \.\d+                    # .5
        | \d+                      # 42
    )\s*%?\s*$""",
    re.VERBOSE,
)

_DATE_PATTERNS = [
    re.compile(r"^\s*\d{4}[-/\.]\d{1,2}[-/\.]\d{1,2}\s*$"),          # 1888-11-24
    re.compile(r"^\s*\d{1,2}[-/\.]\d{1,2}[-/\.]\d{2,4}\s*$"),        # 24/11/1888
    re.compile(r"^\s*\d{4}\s*$"),                                     # bare year
    re.compile(
        r"^\s*\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{2,4}\s*$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^\s*(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2},?\s+\d{2,4}\s*$",
        re.IGNORECASE,
    ),
]

# A small lexicon of common given names; enough to recognise the synthetic
# person mentions produced by the KG builder as PERSON.
_GIVEN_NAMES = {
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "peter",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "carol",
    "kevin", "amanda", "brian", "dorothy", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "laura",
    "jeffrey", "sharon", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "amy", "nicholas", "angela", "eric", "shirley", "jonathan", "anna",
    "stephen", "ruth", "larry", "brenda", "justin", "pamela", "scott",
    "nicole", "brandon", "katherine", "benjamin", "samantha", "samuel",
    "christine", "gregory", "emma", "alexander", "catherine", "patrick",
    "virginia", "frank", "rachel", "raymond", "carolyn", "jack", "janet",
    "dennis", "maria", "jerry", "heather", "tyler", "diane", "aaron",
    "olivia", "jose", "julie", "adam", "joyce", "nathan", "victoria",
    "henry", "kelly", "zachary", "christina", "douglas", "lauren", "walter",
    "joan", "oliver", "evelyn", "arthur", "judith", "noah", "megan",
    "wilfred", "walter", "liam", "sophia", "lucas", "grace", "harold",
}

# Surname-like suffix heuristics: "W. Blackburn", "L. James" style mentions.
_INITIAL_SURNAME_RE = re.compile(r"^\s*[A-Z]\.\s*[A-Z][a-z]+\s*$")


def is_numeric_mention(mention: str) -> bool:
    """Return whether a cell mention is purely numeric (incl. percent/commas)."""
    if not mention or not mention.strip():
        return False
    return bool(_NUMBER_RE.match(mention))


def is_date_mention(mention: str) -> bool:
    """Return whether a cell mention looks like a calendar date or bare year."""
    if not mention or not mention.strip():
        return False
    return any(pattern.match(mention) for pattern in _DATE_PATTERNS)


def is_person_mention(mention: str) -> bool:
    """Heuristically recognise person names ("Peter Steele", "W. Blackburn")."""
    if not mention or not mention.strip():
        return False
    stripped = mention.strip()
    if _INITIAL_SURNAME_RE.match(stripped):
        return True
    words = stripped.split()
    if not 1 < len(words) <= 4:
        return False
    if not all(word[0].isupper() and word[1:].islower() for word in words if word.isalpha()):
        return False
    return words[0].lower() in _GIVEN_NAMES


def detect_schema(mention: str) -> EntitySchema:
    """Classify a mention into the coarse named-entity schema.

    The order matters: numbers before dates (a bare ``1987`` is treated as a
    date only if it fails the richer numeric patterns is irrelevant here — the
    paper treats both the same way for linking), then persons, then OTHER.
    """
    if mention is None or not str(mention).strip():
        return EntitySchema.OTHER
    mention = str(mention)
    if is_date_mention(mention) and not _NUMBER_RE.match(mention):
        return EntitySchema.DATE
    if is_numeric_mention(mention):
        return EntitySchema.NUMBER
    if is_date_mention(mention):
        return EntitySchema.DATE
    if is_person_mention(mention):
        return EntitySchema.PERSON
    return EntitySchema.OTHER
