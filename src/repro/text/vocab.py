"""Vocabulary with BERT-style special tokens."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

__all__ = ["SpecialTokens", "Vocabulary"]


@dataclass(frozen=True)
class SpecialTokens:
    """The special tokens used by the MiniBERT encoder and the serialisers."""

    pad: str = "[PAD]"
    unk: str = "[UNK]"
    cls: str = "[CLS]"
    sep: str = "[SEP]"
    mask: str = "[MASK]"

    def as_tuple(self) -> tuple[str, ...]:
        return (self.pad, self.unk, self.cls, self.sep, self.mask)


class Vocabulary:
    """A bidirectional mapping between tokens and integer ids.

    Special tokens always occupy the lowest ids (``[PAD]`` is id 0) so padding
    and masking logic can rely on fixed positions.
    """

    def __init__(self, tokens: Iterable[str] = (), specials: SpecialTokens | None = None):
        self.specials = specials or SpecialTokens()
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in self.specials.as_tuple():
            self._add(token)
        for token in tokens:
            self._add(token)

    # ------------------------------------------------------------------ #
    def _add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def add_token(self, token: str) -> int:
        """Add ``token`` to the vocabulary (idempotent) and return its id."""
        return self._add(token)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    # ------------------------------------------------------------------ #
    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[self.specials.cls]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.specials.sep]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[self.specials.mask]

    def token_to_id(self, token: str) -> int:
        """Return the id of ``token``, falling back to ``[UNK]``."""
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, index: int) -> str:
        """Return the token string for ``index``."""
        return self._id_to_token[index]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map a token sequence to ids (unknowns become ``[UNK]``)."""
        return [self.token_to_id(token) for token in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Map an id sequence back to token strings."""
        return [self.id_to_token(index) for index in ids]

    # ------------------------------------------------------------------ #
    @classmethod
    def build_from_corpus(
        cls,
        token_streams: Iterable[Iterable[str]],
        max_size: int | None = None,
        min_frequency: int = 1,
        specials: SpecialTokens | None = None,
    ) -> Vocabulary:
        """Build a frequency-sorted vocabulary from tokenised documents."""
        counter: Counter[str] = Counter()
        for stream in token_streams:
            counter.update(stream)
        candidates = [
            token
            for token, count in counter.most_common()
            if count >= min_frequency
        ]
        if max_size is not None:
            budget = max_size - len((specials or SpecialTokens()).as_tuple())
            candidates = candidates[: max(budget, 0)]
        return cls(candidates, specials=specials)
