"""Text processing substrate: tokenisation, vocabulary and NER schema detection.

The paper uses the BERT WordPiece tokenizer and the spaCy named-entity schema
(to decide whether a cell mention is a NUMBER/DATE — unsuitable for KG linking
— or whether a candidate type entity is a PERSON/DATE — unsuitable as a column
type).  Both are replaced here by self-contained implementations with the same
interfaces.
"""

from repro.text.vocab import Vocabulary, SpecialTokens
from repro.text.tokenizer import WordPieceTokenizer, basic_tokenize
from repro.text.ner import EntitySchema, detect_schema, is_numeric_mention, is_date_mention

__all__ = [
    "Vocabulary",
    "SpecialTokens",
    "WordPieceTokenizer",
    "basic_tokenize",
    "EntitySchema",
    "detect_schema",
    "is_numeric_mention",
    "is_date_mention",
]
