"""Loss modules used by KGLink's multi-task objective.

Three losses are required by the paper:

* cross entropy for the column-type classification task (Eq. 16);
* the DMLM (distilled masked-language-model) loss that aligns the ``[MASK]``
  representation of the masked table with the ground-truth label
  representation in vocabulary space (Eq. 13–14);
* the adaptive uncertainty-weighted combination of the two (Eq. 17), with
  trainable ``log sigma^2`` parameters following Kendall et al.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor, accumulation_dtype

__all__ = ["CrossEntropyLoss", "DMLMLoss", "UncertaintyWeightedLoss"]


class CrossEntropyLoss(Module):
    """Mean cross entropy over a batch of logits and integer labels."""

    def __init__(self, ignore_index: int = -100, class_weights: np.ndarray | None = None):
        super().__init__()
        self.ignore_index = ignore_index
        # Stored as-is; cross_entropy casts them to the logits' compute dtype.
        self.class_weights = (
            np.asarray(class_weights, dtype=float) if class_weights is not None else None
        )

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(
            logits, targets, ignore_index=self.ignore_index, class_weights=self.class_weights
        )


class DMLMLoss(Module):
    """Distilled masked-language-model loss (paper Eq. 13–14).

    The student logits are the vocabulary-space projection of the ``[MASK]``
    token of the masked table; the teacher distribution is the softmax (with
    temperature ``T``) of the ground-truth table's label-token projection.
    Following Hinton et al., the paper sets ``T = 2``.
    """

    def __init__(self, temperature: float = 2.0):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def teacher_distribution(self, teacher_logits: np.ndarray) -> np.ndarray:
        """Convert raw teacher logits to a temperature-softened distribution.

        Softening runs in the policy's accumulate dtype (gradients never flow
        through the teacher, so the extra precision is free stability).
        """
        teacher_logits = np.asarray(teacher_logits)
        scaled = teacher_logits.astype(accumulation_dtype(teacher_logits.dtype)) / self.temperature
        scaled = scaled - scaled.max(axis=-1, keepdims=True)
        exp = np.exp(scaled)
        return exp / exp.sum(axis=-1, keepdims=True)

    def forward(self, student_logits: Tensor, teacher_logits: np.ndarray) -> Tensor:
        teacher_probs = self.teacher_distribution(teacher_logits)
        return F.kl_div_with_soft_targets(
            student_logits, teacher_probs, temperature=self.temperature
        )


class UncertaintyWeightedLoss(Module):
    """Adaptive combination of two task losses with trainable uncertainties.

    Implements Eq. 17 of the paper:

    ``L_total = 1/(2 sigma_0^2) L_DMLM + 1/(2 sigma_1^2) L_CE + log(sigma_0 sigma_1)``

    The module stores ``log sigma^2`` for numerical stability, exactly as in
    the Kendall et al. formulation, and exposes the current values so the
    Figure 8 experiment can record their training trajectories.
    """

    def __init__(self, initial_log_sigma0_sq: float = 0.0, initial_log_sigma1_sq: float = 0.0):
        super().__init__()
        self.log_sigma0_sq = Parameter(np.asarray([initial_log_sigma0_sq]))
        self.log_sigma1_sq = Parameter(np.asarray([initial_log_sigma1_sq]))

    @property
    def sigma_values(self) -> tuple[float, float]:
        """Return the current ``(log sigma_0^2, log sigma_1^2)`` values."""
        return float(self.log_sigma0_sq.data[0]), float(self.log_sigma1_sq.data[0])

    def forward(self, dmlm_loss: Tensor, classification_loss: Tensor) -> Tensor:
        precision0 = (-self.log_sigma0_sq).exp() * 0.5
        precision1 = (-self.log_sigma1_sq).exp() * 0.5
        regulariser = (self.log_sigma0_sq + self.log_sigma1_sq) * 0.5
        combined = (
            precision0 * dmlm_loss
            + precision1 * classification_loss
            + regulariser
        )
        return combined.sum()


class FixedWeightLoss(Module):
    """Non-adaptive combination used for the Figure 8(a) sensitivity sweep.

    ``L_total = 1/(2 sigma_0^2) L_DMLM + 1/(2 sigma_1^2) L_CE`` with the two
    ``log sigma^2`` values held constant rather than learned.
    """

    def __init__(self, log_sigma0_sq: float, log_sigma1_sq: float):
        super().__init__()
        self._w0 = 0.5 * float(np.exp(-log_sigma0_sq))
        self._w1 = 0.5 * float(np.exp(-log_sigma1_sq))
        self.log_sigma0_sq = log_sigma0_sq
        self.log_sigma1_sq = log_sigma1_sq

    @property
    def sigma_values(self) -> tuple[float, float]:
        return self.log_sigma0_sq, self.log_sigma1_sq

    def forward(self, dmlm_loss: Tensor, classification_loss: Tensor) -> Tensor:
        return dmlm_loss * self._w0 + classification_loss * self._w1


__all__.append("FixedWeightLoss")
