"""Save and load model weights as compressed ``.npz`` archives.

Checkpoints record the dtype policy they were written under in a reserved
``__repro_meta__.*`` namespace (array names cannot collide with parameter
names, which never start with a double underscore).  On load the metadata is
stripped from the returned state dict and the arrays can be cast:

* :func:`load_state_dict` returns the arrays as saved by default, or cast to
  an explicit dtype / the active policy's compute dtype on request;
* :meth:`~repro.nn.layers.Module.load_state_dict` always casts to each
  parameter's own dtype, so a float64 checkpoint loads into a float32 model
  (and vice versa) without any caller-side conversion.

Checkpoints written before the metadata existed are handled by a migration
shim mirroring the packed-QKV upgrade: a missing ``__repro_meta__`` namespace
marks a legacy archive, which is treated as float64 (the only dtype the stack
produced back then).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import get_dtype_policy

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_module",
    "load_module",
    "checkpoint_metadata",
]

_META_PREFIX = "__repro_meta__."
#: Dtype assumed for archives written before metadata was recorded.
_LEGACY_DTYPE = "float64"


def _resolve(path: str | os.PathLike) -> Path:
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_state_dict(state: dict[str, np.ndarray], path: str | os.PathLike) -> Path:
    """Write a state dict to ``path`` (``.npz``); return the resolved path.

    The active dtype policy is recorded alongside the arrays so future loads
    know what the checkpoint was trained in.
    """
    for key in state:
        if key.startswith(_META_PREFIX):
            raise ValueError(f"state dict keys must not use the reserved prefix: {key!r}")
    policy = get_dtype_policy()
    floats = [value.dtype for value in state.values() if np.issubdtype(value.dtype, np.floating)]
    # The dominant parameter dtype is what load-time casting cares about; fall
    # back to the policy for (pathological) all-integer state dicts.
    compute = str(max(set(floats), key=floats.count)) if floats else str(policy.compute)
    meta = {
        f"{_META_PREFIX}compute_dtype": np.asarray(compute),
        f"{_META_PREFIX}accumulate_dtype": np.asarray(str(policy.accumulate)),
        f"{_META_PREFIX}format_version": np.asarray(1),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state, **meta)
    # numpy appends .npz if it is missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def checkpoint_metadata(path: str | os.PathLike) -> dict[str, str | int]:
    """Metadata recorded in a checkpoint (dtype policy, format version).

    Legacy archives without metadata report ``format_version`` 0 and the
    float64 dtypes the stack used at the time.
    """
    with np.load(_resolve(path)) as archive:
        meta = {
            key[len(_META_PREFIX):]: archive[key][()]
            for key in archive.files
            if key.startswith(_META_PREFIX)
        }
    if not meta:
        return {
            "compute_dtype": _LEGACY_DTYPE,
            "accumulate_dtype": _LEGACY_DTYPE,
            "format_version": 0,
        }
    return {
        "compute_dtype": str(meta.get("compute_dtype", _LEGACY_DTYPE)),
        "accumulate_dtype": str(meta.get("accumulate_dtype", _LEGACY_DTYPE)),
        "format_version": int(meta.get("format_version", 0)),
    }


def load_state_dict(path: str | os.PathLike, cast=None) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`.

    Parameters
    ----------
    path:
        Archive location (``.npz`` suffix optional, as for saving).
    cast:
        ``None`` returns the floating arrays in their stored dtype; the string
        ``"policy"`` casts them to the active policy's compute dtype; any
        numpy dtype casts to that dtype.  Integer arrays are never cast.
    """
    with np.load(_resolve(path)) as archive:
        state = {
            key: archive[key]
            for key in archive.files
            if not key.startswith(_META_PREFIX)
        }
    if cast is None:
        return state
    target = get_dtype_policy().compute if cast == "policy" else np.dtype(cast)
    return {
        key: value.astype(target) if np.issubdtype(value.dtype, np.floating) else value
        for key, value in state.items()
    }


def save_module(module: Module, path: str | os.PathLike) -> Path:
    """Persist a module's parameters to disk."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters into an already-constructed module and return it.

    Cross-policy loads are handled by ``Module.load_state_dict``, which casts
    every array to the dtype of the parameter it feeds.
    """
    module.load_state_dict(load_state_dict(path))
    return module
