"""Save and load model weights as compressed ``.npz`` archives."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_module"]


def save_state_dict(state: dict[str, np.ndarray], path: str | os.PathLike) -> Path:
    """Write a state dict to ``path`` (``.npz``); return the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    # numpy appends .npz if it is missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str | os.PathLike) -> Path:
    """Persist a module's parameters to disk."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters into an already-constructed module and return it."""
    module.load_state_dict(load_state_dict(path))
    return module
