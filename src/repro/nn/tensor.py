"""Reverse-mode autodiff tensor built on numpy.

The design follows the classic define-by-run pattern: every operation builds a
node in an implicit computation graph by recording its parent tensors and a
closure that accumulates gradients into them.  Calling :meth:`Tensor.backward`
on a scalar (or with an explicit output gradient) runs a topological sort of
the graph and applies the closures in reverse order.

Under :func:`no_grad` (or when no input requires a gradient) operations take a
fast path that skips graph bookkeeping entirely — no backward closure is
created and no parent tuple is recorded — so inference passes allocate nothing
beyond the output arrays.

Only the operations needed by the transformer encoders and the KGLink training
objective are implemented, but they are implemented with full broadcasting
support so the layers read naturally.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "DtypePolicy",
    "FLOAT32_POLICY",
    "FLOAT64_POLICY",
    "get_dtype_policy",
    "set_dtype_policy",
    "dtype_policy",
    "accumulation_dtype",
    "get_default_dtype",
    "set_default_dtype",
]

# Switch mirroring ``torch.no_grad``: while disabled, operations do not
# record the computation graph, which makes inference cheap.  Thread-local
# (like torch's grad mode) so a serving thread running inference under
# ``no_grad`` cannot race a training thread's graph construction — with a
# process-wide flag, two overlapping ``no_grad`` blocks on different
# threads can interleave save/restore and leave gradients off for good.


class _GradMode(threading.local):
    enabled = True


_GRAD_MODE = _GradMode()

_ALLOWED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class DtypePolicy:
    """A pair of floating dtypes governing how the nn stack computes.

    ``compute`` is the dtype tensors are created with and elementwise work
    (matmuls, exp/tanh, activations) runs in; ``accumulate`` is the dtype
    long reductions are carried out in before being cast back to ``compute``.
    The numerically delicate reductions — softmax / log-sum-exp denominators,
    layer-norm moments, loss sums and Adam second moments — honour
    ``accumulate`` so the default ``float32``/``float64`` policy keeps the
    model within tolerance of a full-float64 run while doing the expensive
    elementwise work in float32.

    Instances are immutable; install one globally with
    :func:`set_dtype_policy` or temporarily with the :func:`dtype_policy`
    context manager.  :data:`FLOAT64_POLICY` is the escape hatch used by the
    parity oracles (everything in float64, the pre-policy behaviour).
    """

    __slots__ = ("compute", "accumulate")

    def __init__(self, compute="float32", accumulate="float64"):
        compute = np.dtype(compute)
        accumulate = np.dtype(accumulate)
        for role, resolved in (("compute", compute), ("accumulate", accumulate)):
            if resolved not in _ALLOWED_DTYPES:
                raise ValueError(
                    f"{role} dtype must be float32 or float64, got {resolved}"
                )
        if np.promote_types(compute, accumulate) != accumulate:
            raise ValueError(
                f"accumulate dtype {accumulate} must be at least as precise as "
                f"compute dtype {compute}"
            )
        object.__setattr__(self, "compute", compute)
        object.__setattr__(self, "accumulate", accumulate)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("DtypePolicy is immutable")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DtypePolicy)
            and self.compute == other.compute
            and self.accumulate == other.accumulate
        )

    def __hash__(self) -> int:
        return hash((self.compute, self.accumulate))

    def __repr__(self) -> str:
        return f"DtypePolicy(compute={self.compute}, accumulate={self.accumulate})"


#: Default policy: float32 elementwise work, float64 accumulation.
FLOAT32_POLICY = DtypePolicy(np.float32, np.float64)
#: Escape hatch for the parity oracles: everything in float64.
FLOAT64_POLICY = DtypePolicy(np.float64, np.float64)

_POLICY = FLOAT32_POLICY


def get_dtype_policy() -> DtypePolicy:
    """The policy new tensors and nn reductions currently follow."""
    return _POLICY


def set_dtype_policy(policy: DtypePolicy) -> DtypePolicy:
    """Install ``policy`` globally; returns the previous policy.

    Existing tensors are unaffected; only tensors created afterwards use the
    new compute dtype (op outputs inherit the dtype of their inputs, so a
    model built under one policy keeps running in it after a switch).
    """
    global _POLICY
    if not isinstance(policy, DtypePolicy):
        raise TypeError(f"expected a DtypePolicy, got {type(policy).__name__}")
    previous = _POLICY
    _POLICY = policy
    return previous


@contextlib.contextmanager
def dtype_policy(policy: DtypePolicy):
    """Temporarily install ``policy`` (e.g. ``FLOAT64_POLICY`` for oracles)."""
    previous = set_dtype_policy(policy)
    try:
        yield policy
    finally:
        set_dtype_policy(previous)


def accumulation_dtype(dtype) -> np.dtype:
    """Dtype reductions over arrays of ``dtype`` should accumulate in.

    Never narrower than the input dtype, so a float64 model accumulates in
    float64 even under a hypothetical all-float32 policy.
    """
    return np.promote_types(dtype, _POLICY.accumulate)


def is_grad_enabled() -> bool:
    """Return whether new operations record gradients in this thread."""
    return _GRAD_MODE.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode).

    The switch is per-thread: disabling gradients on a serving thread does
    not affect a concurrently training one.
    """
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def get_default_dtype() -> np.dtype:
    """The floating dtype new tensors are created with (= policy compute dtype)."""
    return _POLICY.compute


def set_default_dtype(dtype) -> np.dtype:
    """Set the global compute dtype (``float32`` or ``float64``).

    Compatibility wrapper over :func:`set_dtype_policy` from when float32 was
    opt-in: installs a policy with the requested compute dtype and float64
    accumulation, and returns the previous *compute* dtype so existing
    save/restore call sites keep working::

        previous = set_default_dtype(np.float64)
        try:
            ...
        finally:
            set_default_dtype(previous)
    """
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {resolved}")
    previous = _POLICY.compute
    set_dtype_policy(FLOAT64_POLICY if resolved == np.float64 else FLOAT32_POLICY)
    return previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (inverse of broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    compute = _POLICY.compute
    if isinstance(value, np.ndarray):
        return value if value.dtype == compute else value.astype(compute)
    return np.asarray(value, dtype=compute)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array of the default floating dtype
        (see :func:`set_default_dtype`).
    requires_grad:
        When true, gradients flowing through operations involving this tensor
        are accumulated into :attr:`grad` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad) and _GRAD_MODE.enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> Tensor:
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor._result(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result(data: np.ndarray) -> Tensor:
        """Wrap an op result without dtype conversion.

        Outputs inherit their dtype from the numpy computation, so a float32
        model keeps producing float32 even after the global default is
        restored to float64.
        """
        out = Tensor.__new__(Tensor)
        out.data = data
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        out.name = None
        return out

    def _ensure(self, other) -> Tensor:
        if isinstance(other, Tensor):
            return other
        # Scalar/array operands adopt this tensor's dtype (weak-scalar
        # semantics) instead of the global default.
        return Tensor._result(np.asarray(other, dtype=self.data.dtype))

    def _make_child(
        self,
        data: np.ndarray,
        parents: Sequence[Tensor],
        backward: Callable[[np.ndarray], None],
    ) -> Tensor:
        child = Tensor._result(data)
        # Call sites guard this already (to skip closure creation entirely on
        # the inference fast path); the re-check keeps the old contract — an
        # unguarded op loses only the fast path, never tracks grads wrongly.
        if _GRAD_MODE.enabled and any(p.requires_grad for p in parents):
            child.requires_grad = True
            child._parents = tuple(parents)
            child._backward = backward
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> Tensor:
        other = self._ensure(other)
        out_data = self.data + other.data
        if not (_GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make_child(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> Tensor:
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(-self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_child(-self.data, (self,), backward)

    def __sub__(self, other) -> Tensor:
        return self + (-self._ensure(other))

    def __rsub__(self, other) -> Tensor:
        return self._ensure(other) + (-self)

    def __mul__(self, other) -> Tensor:
        other = self._ensure(other)
        out_data = self.data * other.data
        if not (_GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make_child(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> Tensor:
        other = self._ensure(other)
        out_data = self.data / other.data
        if not (_GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
            )

        return self._make_child(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> Tensor:
        return self._ensure(other) / self

    def __pow__(self, exponent: float) -> Tensor:
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other) -> Tensor:
        other = self._ensure(other)
        out_data = self.data @ other.data
        if not (_GRAD_MODE.enabled and (self.requires_grad or other.requires_grad)):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return self._make_child(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # reductions and shape manipulation
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> Tensor:
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            grad_expanded = grad
            if axis is not None and not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad_expanded, self.data.shape).copy())

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> Tensor:
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> Tensor:
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            grad_expanded = grad
            out_expanded = out_data
            if axis is not None and not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
                out_expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad_expanded)

        return self._make_child(out_data, (self,), backward)

    def reshape(self, *shape) -> Tensor:
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make_child(out_data, (self,), backward)

    def transpose(self, *axes) -> Tensor:
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make_child(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> Tensor:
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def chunk(self, chunks: int, axis: int = -1) -> list[Tensor]:
        """Split into ``chunks`` equal views along ``axis``.

        Cheaper than repeated ``__getitem__`` for the packed-QKV use case:
        each chunk's backward writes its slice into a zeros buffer directly
        instead of going through ``np.add.at`` with a fancy index.
        """
        axis = axis % self.data.ndim
        size = self.data.shape[axis]
        if size % chunks != 0:
            raise ValueError(f"axis of size {size} is not divisible into {chunks} chunks")
        step = size // chunks
        track = _GRAD_MODE.enabled and self.requires_grad
        outputs: list[Tensor] = []
        for start in range(0, size, step):
            index = [slice(None)] * self.data.ndim
            index[axis] = slice(start, start + step)
            index = tuple(index)
            piece = self.data[index]
            if not track:
                outputs.append(Tensor._result(piece))
                continue

            def backward(grad: np.ndarray, index=index) -> None:
                # Write the slice into the accumulator directly instead of
                # materialising a full-size zeros buffer per chunk.
                if not self.requires_grad:
                    return
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                self.grad[index] += grad

            outputs.append(self._make_child(piece, (self,), backward))
        return outputs

    def __getitem__(self, index) -> Tensor:
        out_data = self.data[index]
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> Tensor:
        out_data = np.exp(self.data)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> Tensor:
        out_data = np.log(self.data)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> Tensor:
        return self**0.5

    def tanh(self) -> Tensor:
        out_data = np.tanh(self.data)
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> Tensor:
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(np.maximum(self.data, 0.0))
        mask = (self.data > 0).astype(self.data.dtype)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> Tensor:
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not (_GRAD_MODE.enabled and self.requires_grad):
            return Tensor._result(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # graph traversal
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  When
            omitted the tensor must be a scalar and a gradient of one is used.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        ordering: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: Tensor) -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    ordering.append(current)
                    stack.pop()

        visit(self)

        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> Tensor:
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> Tensor:
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, scale: float = 1.0, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> Tensor:
        if rng is None:
            # Deterministic by default: an unseeded generator here would make
            # weight init irreproducible run-to-run (REP105).
            rng = np.random.default_rng(0)
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    @staticmethod
    def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
        tensors = list(tensors)
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        child = Tensor._result(out_data)
        if not (_GRAD_MODE.enabled and any(t.requires_grad for t in tensors)):
            return child
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:], strict=True):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        child.requires_grad = True
        child._parents = tuple(tensors)
        child._backward = backward
        return child

    @staticmethod
    def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
        tensors = list(tensors)
        out_data = np.stack([t.data for t in tensors], axis=axis)
        child = Tensor._result(out_data)
        if not (_GRAD_MODE.enabled and any(t.requires_grad for t in tensors)):
            return child

        def backward(grad: np.ndarray) -> None:
            moved = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, moved, strict=True):
                tensor._accumulate(piece)

        child.requires_grad = True
        child._parents = tuple(tensors)
        child._backward = backward
        return child
