"""A small numpy-based neural-network framework with reverse-mode autodiff.

This package replaces PyTorch for the purposes of the KGLink reproduction.  It
provides exactly what the paper's deep-learning component needs:

* :class:`~repro.nn.tensor.Tensor` — a define-by-run autograd tensor wrapping a
  numpy array.
* :class:`~repro.nn.tensor.DtypePolicy` — the global compute/accumulate dtype
  pair (float32 compute with float64 accumulation by default;
  :data:`~repro.nn.tensor.FLOAT64_POLICY` is the full-precision escape hatch).
* :mod:`~repro.nn.functional` — differentiable operations (softmax, gelu,
  layer norm, dropout, cross entropy, ...).
* :mod:`~repro.nn.layers` — ``Module`` and the standard layers used by the
  transformer encoders (``Linear``, ``Embedding``, ``LayerNorm``,
  ``MultiHeadSelfAttention``, ``TransformerEncoderLayer``).
* :mod:`~repro.nn.optim` — ``AdamW`` with linear learning-rate decay, matching
  the optimiser settings in the paper's experimental section.
* :mod:`~repro.nn.losses` — cross entropy, the DMLM distillation loss and the
  uncertainty-weighted combined loss of Kendall et al. used by KGLink.
* :mod:`~repro.nn.serialization` — state-dict save/load helpers.
"""

from repro.nn.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    DtypePolicy,
    FLOAT32_POLICY,
    FLOAT64_POLICY,
    get_dtype_policy,
    set_dtype_policy,
    dtype_policy,
    accumulation_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn import functional
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadSelfAttention,
    Parameter,
    Sequential,
    TransformerEncoderLayer,
)
from repro.nn.losses import (
    CrossEntropyLoss,
    DMLMLoss,
    UncertaintyWeightedLoss,
)
from repro.nn.optim import SGD, AdamW, LinearDecaySchedule, ConstantSchedule
from repro.nn.serialization import checkpoint_metadata, load_state_dict, save_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "DtypePolicy",
    "FLOAT32_POLICY",
    "FLOAT64_POLICY",
    "get_dtype_policy",
    "set_dtype_policy",
    "dtype_policy",
    "accumulation_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "functional",
    "Module",
    "ModuleList",
    "Sequential",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "CrossEntropyLoss",
    "DMLMLoss",
    "UncertaintyWeightedLoss",
    "SGD",
    "AdamW",
    "LinearDecaySchedule",
    "ConstantSchedule",
    "save_state_dict",
    "load_state_dict",
    "checkpoint_metadata",
]
