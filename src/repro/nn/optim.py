"""Optimisers and learning-rate schedules.

The paper fine-tunes with AdamW (eps = 1e-6, initial learning rate 3e-5) and a
linear decay without warm-up; both are provided here, together with plain SGD
used by a couple of baselines and unit tests.

Under the default :class:`~repro.nn.tensor.DtypePolicy` parameters (and hence
first moments / momentum buffers) are float32 while AdamW's second moments are
kept in the policy's accumulate dtype (float64): ``v`` is a long exponential
sum of squared gradients whose float32 rounding visibly perturbs the effective
step size, whereas ``m`` tracks the gradient magnitude itself.  Optimiser
state survives checkpointing via :meth:`Optimizer.state_dict` /
:meth:`Optimizer.load_state_dict`, which restore each buffer in its
policy-mandated dtype regardless of the dtype it was saved in.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.nn.layers import Parameter
from repro.nn.tensor import accumulation_dtype

__all__ = ["Optimizer", "SGD", "AdamW", "LinearDecaySchedule", "ConstantSchedule", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in-place; return the pre-clip norm.

    The squared-norm reduction accumulates in the policy's accumulate dtype.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(
        np.sqrt(
            sum(
                float(np.square(p.grad).sum(dtype=accumulation_dtype(p.grad.dtype)))
                for p in params
            )
        )
    )
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser tracking a parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing --------------------------------------------------- #
    def _state_buffers(self) -> dict[str, tuple[list[np.ndarray], str | None]]:
        """Mapping from buffer-list name to ``(buffers, dtype_rule)``.

        ``dtype_rule`` of ``None`` means "match the parameter's dtype";
        ``"accumulate"`` means the policy's accumulation dtype for that
        parameter.  Sub-classes override this to expose their state.
        """
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``{name: array}`` mapping of the optimiser's mutable state."""
        state: dict[str, np.ndarray] = {"lr": np.asarray(self.lr)}
        for name, (buffers, _) in self._state_buffers().items():
            for index, buffer in enumerate(buffers):
                state[f"{name}.{index}"] = buffer.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict`.

        Buffers are cast on load: dtype-mandated buffers (e.g. AdamW second
        moments) to their policy dtype, the rest to the dtype of the parameter
        they belong to — so checkpoints load across dtype policies.
        """
        self.lr = float(state["lr"])
        for name, (buffers, dtype_rule) in self._state_buffers().items():
            for index, param in enumerate(self.parameters):
                key = f"{name}.{index}"
                if key not in state:
                    raise KeyError(f"optimizer state is missing {key!r}")
                if dtype_rule == "accumulate":
                    dtype = accumulation_dtype(param.data.dtype)
                else:
                    dtype = param.data.dtype
                value = np.asarray(state[key], dtype=dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: expected {param.data.shape}, "
                        f"got {value.shape}"
                    )
                buffers[index] = value.copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _state_buffers(self) -> dict[str, tuple[list[np.ndarray], str | None]]:
        return {"velocity": (self._velocity, None)}

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity, strict=True):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update


class AdamW(Optimizer):
    """AdamW with decoupled weight decay (Loshchilov & Hutter).

    Default hyper-parameters follow the paper's experimental settings:
    ``eps=1e-6`` and an initial learning rate of ``3e-5`` are supplied by the
    trainers; the defaults here are the usual Adam values.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        # Second moments accumulate squared gradients over the whole run, so
        # they live in the policy's accumulate dtype (float64 by default).
        self._v = [
            np.zeros(p.data.shape, dtype=accumulation_dtype(p.data.dtype))
            for p in self.parameters
        ]

    def _state_buffers(self) -> dict[str, tuple[list[np.ndarray], str | None]]:
        return {"m": (self._m, None), "v": (self._v, "accumulate")}

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        state["step"] = np.asarray(self._step)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._step = int(state.get("step", 0))

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v, strict=True):
            if param.grad is None:
                continue
            grad = param.grad
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * np.square(grad, dtype=v.dtype)
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            denom = np.sqrt(v_hat).astype(param.data.dtype, copy=False) + self.eps
            param.data -= self.lr * m_hat / denom


class ConstantSchedule:
    """A learning-rate schedule that never changes the rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def step(self) -> float:
        return self.optimizer.lr


class LinearDecaySchedule:
    """Linearly decay the learning rate from its initial value to zero.

    Matches the paper: "The learning rate was linearly decayed without
    warm-up."
    """

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._current_step = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._current_step = min(self._current_step + 1, self.total_steps)
        fraction = 1.0 - self._current_step / self.total_steps
        new_lr = max(self.min_lr, self.base_lr * fraction)
        self.optimizer.lr = new_lr
        return new_lr
