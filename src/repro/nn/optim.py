"""Optimisers and learning-rate schedules.

The paper fine-tunes with AdamW (eps = 1e-6, initial learning rate 3e-5) and a
linear decay without warm-up; both are provided here, together with plain SGD
used by a couple of baselines and unit tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "AdamW", "LinearDecaySchedule", "ConstantSchedule", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in-place; return the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimiser tracking a parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update


class AdamW(Optimizer):
    """AdamW with decoupled weight decay (Loshchilov & Hutter).

    Default hyper-parameters follow the paper's experimental settings:
    ``eps=1e-6`` and an initial learning rate of ``3e-5`` are supplied by the
    trainers; the defaults here are the usual Adam values.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class ConstantSchedule:
    """A learning-rate schedule that never changes the rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def step(self) -> float:
        return self.optimizer.lr


class LinearDecaySchedule:
    """Linearly decay the learning rate from its initial value to zero.

    Matches the paper: "The learning rate was linearly decayed without
    warm-up."
    """

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._current_step = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._current_step = min(self._current_step + 1, self.total_steps)
        fraction = 1.0 - self._current_step / self.total_steps
        new_lr = max(self.min_lr, self.base_lr * fraction)
        self.optimizer.lr = new_lr
        return new_lr
