"""Differentiable functional operations used by the transformer layers.

Each function takes and returns :class:`~repro.nn.tensor.Tensor` objects and
participates in the autograd graph.  Fused implementations (softmax, layer
norm, cross entropy) are provided because composing them from primitives would
be substantially slower and numerically less stable.

When gradients are disabled (:func:`~repro.nn.tensor.no_grad`) or no input
requires them, every function returns a plain tensor without creating a
backward closure or recording parents, and all computations run in the dtype
of their inputs (so a float32 model stays float32 end to end).

Under the default :class:`~repro.nn.tensor.DtypePolicy` the numerically
delicate reductions — softmax and log-sum-exp denominators, layer-norm
moments, and the loss sums — accumulate in the policy's ``accumulate`` dtype
(float64) and are cast back to the compute dtype before the expensive
elementwise work, so a float32 model keeps float64-grade stability where it
matters without paying float64 elementwise cost.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, _unbroadcast, accumulation_dtype, is_grad_enabled

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "tanh",
    "dropout",
    "layer_norm",
    "embedding_lookup",
    "cross_entropy",
    "kl_div_with_soft_targets",
    "linear",
    "masked_fill",
    "scaled_dot_product_attention",
]

# Python float so it stays a "weak" scalar and never promotes float32 arrays.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def _needs_grad(parents) -> bool:
    return is_grad_enabled() and any(p.requires_grad for p in parents)


def _child(data: np.ndarray, parents, backward) -> Tensor:
    """Build an output tensor wired into the autograd graph.

    Call sites check :func:`_needs_grad` first so no backward closure is even
    created on the inference fast path; the re-check here keeps the wiring
    correct should a future op forget the guard.
    """
    out = Tensor._result(data)
    if _needs_grad(parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (denominator in accumulate dtype)."""
    dtype = x.data.dtype
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=axis, keepdims=True, dtype=accumulation_dtype(dtype))
    out_data = exp / denom.astype(dtype, copy=False)
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return _child(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (log-sum-exp in accumulate dtype)."""
    dtype = x.data.dtype
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    sum_exp = np.exp(shifted).sum(axis=axis, keepdims=True, dtype=accumulation_dtype(dtype))
    out_data = shifted - np.log(sum_exp).astype(dtype, copy=False)
    if not _needs_grad((x,)):
        return Tensor._result(out_data)
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return _child(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT).

    The cubic term is computed as ``x*x*x`` and the pipeline runs in-place on
    two scratch buffers: numpy's float ``**`` falls back to ``pow`` (~60x
    slower than multiplication), and the naive expression allocates six
    temporaries per call, which dominated the encoder's FFN cost.
    """
    data = x.data
    inner = data * data
    inner *= data
    inner *= 0.044715
    inner += data
    inner *= _GELU_C
    tanh_inner = np.tanh(inner, out=inner)
    out_data = tanh_inner + 1.0
    out_data *= data
    out_data *= 0.5
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        sech2 = 1.0 - tanh_inner * tanh_inner
        d_inner = _GELU_C * (1.0 + 3 * 0.044715 * (data * data))
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * data * sech2 * d_inner
        x._accumulate(grad * local)

    return _child(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: active only during training."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.data.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return _child(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension (moments in accumulate dtype)."""
    dtype = x.data.dtype
    acc = accumulation_dtype(dtype)
    mean = x.data.mean(axis=-1, keepdims=True, dtype=acc).astype(dtype, copy=False)
    if not _needs_grad((x, weight, bias)):
        # In-place pipeline reusing the centered buffer (``np.var`` would
        # re-centre internally); the grad path below keeps the ``normalised``
        # intermediate alive for the backward closure.
        out_data = x.data - mean
        var = (out_data * out_data).mean(axis=-1, keepdims=True, dtype=acc)
        out_data *= (1.0 / np.sqrt(var + eps)).astype(dtype, copy=False)
        out_data *= weight.data
        out_data += bias.data
        return Tensor._result(out_data)
    centered = x.data - mean
    var = (centered * centered).mean(axis=-1, keepdims=True, dtype=acc)
    inv_std = (1.0 / np.sqrt(var + eps)).astype(dtype, copy=False)
    normalised = centered
    normalised *= inv_std
    out_data = normalised * weight.data
    out_data += bias.data

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            weight._accumulate((grad * normalised).sum(axis=axes))
        if bias.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            g = grad * weight.data
            mean_g = g.mean(axis=-1, keepdims=True, dtype=acc).astype(dtype, copy=False)
            mean_gx = (
                (g * normalised).mean(axis=-1, keepdims=True, dtype=acc)
                .astype(dtype, copy=False)
            )
            x._accumulate(inv_std * (g - mean_g - normalised * mean_gx))

    return _child(out_data, (x, weight, bias), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by integer ``indices`` (any shape)."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]
    if not _needs_grad((weight,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
        weight._accumulate(full)

    return _child(out_data, (weight,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int = -100,
    class_weights: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` ``(N, C)`` and integer targets ``(N,)``.

    Targets equal to ``ignore_index`` do not contribute to the loss.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits of shape (N, C)")
    valid = targets != ignore_index
    n_valid = max(int(valid.sum()), 1)

    dtype = logits.data.dtype
    acc = accumulation_dtype(dtype)
    shifted = logits.data - logits.data.max(axis=-1, keepdims=True)
    sum_exp = np.exp(shifted).sum(axis=-1, keepdims=True, dtype=acc)
    log_probs = shifted - np.log(sum_exp).astype(dtype, copy=False)

    safe_targets = np.where(valid, targets, 0)
    picked = log_probs[np.arange(len(targets)), safe_targets]
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=dtype)
        weights = np.where(valid, class_weights[safe_targets], 0.0)
    else:
        weights = valid.astype(dtype)
    # Loss reduction in the accumulate dtype: the per-row terms are computed
    # in the compute dtype, the sum (and the resulting scalar) in float64.
    total_weight = max(float(weights.sum(dtype=acc)), 1e-12)
    loss_value = -float((picked.astype(acc, copy=False) * weights).sum()) / total_weight

    if not _needs_grad((logits,)):
        out = Tensor._result(np.asarray(loss_value))
        out.name = f"cross_entropy(n={n_valid})"
        return out

    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=logits.data.dtype).reshape(())
        d_logits = probs * weights[:, None]
        d_logits[np.arange(len(targets)), safe_targets] -= weights
        d_logits /= total_weight
        logits._accumulate(g * d_logits)

    out = _child(np.asarray(loss_value), (logits,), backward)
    # Expose the number of contributing rows so callers can weight batches.
    out.name = f"cross_entropy(n={n_valid})"
    return out


def kl_div_with_soft_targets(
    student_logits: Tensor, teacher_probs: np.ndarray, temperature: float = 1.0
) -> Tensor:
    """Soft cross-entropy ``-sum(p_teacher * log p_student)`` averaged over rows.

    This is the DMLM objective of the paper (Eq. 13): the teacher distribution
    comes from the ground-truth table encoding, the student distribution from
    the masked table encoding.  Gradients flow only into the student logits.
    """
    teacher_probs = np.asarray(teacher_probs, dtype=student_logits.data.dtype)
    if student_logits.data.shape != teacher_probs.shape:
        raise ValueError("student logits and teacher probabilities must have the same shape")

    dtype = student_logits.data.dtype
    acc = accumulation_dtype(dtype)
    scaled = student_logits.data / temperature
    shifted = scaled - scaled.max(axis=-1, keepdims=True)
    sum_exp = np.exp(shifted).sum(axis=-1, keepdims=True, dtype=acc)
    log_probs = shifted - np.log(sum_exp).astype(dtype, copy=False)
    n_rows = max(student_logits.data.shape[0], 1)
    loss_value = -float((teacher_probs * log_probs).sum(dtype=acc)) / n_rows

    if not _needs_grad((student_logits,)):
        return Tensor._result(np.asarray(loss_value))

    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=student_logits.data.dtype).reshape(())
        row_mass = teacher_probs.sum(axis=-1, keepdims=True)
        d_logits = (probs * row_mass - teacher_probs) / (temperature * n_rows)
        student_logits._accumulate(g * d_logits)

    return _child(np.asarray(loss_value), (student_logits,), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused affine map ``y = x W^T + b`` as a single autograd node.

    Collapses the ``transpose -> matmul -> add`` chain of Tensor ops (three
    nodes, a broadcast bias copy, and a batched 3-D matmul) into one node
    backed by a single 2-D GEMM with an in-place bias add.
    """
    data = x.data
    w = weight.data
    flat = data.reshape(-1, data.shape[-1]) if data.ndim != 2 else data
    out_flat = flat @ w.T
    if bias is not None:
        out_flat += bias.data
    out_data = (
        out_flat.reshape(*data.shape[:-1], w.shape[0]) if data.ndim != 2 else out_flat
    )
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _needs_grad(parents):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(-1, w.shape[0])
        if x.requires_grad:
            x._accumulate((grad_flat @ w).reshape(data.shape))
        if weight.requires_grad:
            weight._accumulate(grad_flat.T @ flat)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0))

    return _child(out_data, parents, backward)


def scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attention_mask: np.ndarray | None = None,
    attention_bias: Tensor | np.ndarray | None = None,
    dropout_p: float = 0.0,
    training: bool = False,
    rng: np.random.Generator | None = None,
    scale: float | None = None,
    mask_value: float = -1e9,
) -> Tensor:
    """Fused attention: scale → bias → mask → softmax → dropout → weighted sum.

    Computes ``softmax(q @ k^T * scale + bias, masked) @ v`` as a **single**
    autograd node with a hand-derived backward, instead of the chain of ~8
    primitive ops it replaces.  The numpy operations are applied in exactly
    the order of the unfused chain, so forward values are bitwise identical;
    what is saved is the graph bookkeeping (one closure instead of eight) and
    the intermediate ``(batch, heads, seq, seq)`` allocations of the
    element-wise ops (the broadcast ``masked_fill`` copy in particular).

    Parameters mirror the unfused path in
    :class:`~repro.nn.layers.MultiHeadSelfAttention`:

    * ``attention_mask`` — optional ``(batch, seq)`` boolean padding mask with
      ``True`` = keep; blocked key positions receive ``mask_value`` before the
      softmax, so their weights underflow to exactly zero.
    * ``attention_bias`` — optional additive bias broadcastable to the score
      shape ``(batch, heads, seq_q, seq_k)``; gradients flow into it when it
      is a :class:`Tensor` that requires grad.
    * ``dropout_p``/``training``/``rng`` — inverted dropout on the attention
      weights, drawing its mask from ``rng`` exactly like :func:`dropout`.
    * ``scale`` — defaults to ``1/sqrt(head_dim)``.
    """
    if q.data.shape[-1] != k.data.shape[-1]:
        raise ValueError("q and k must share the head dimension")
    if scale is None:
        scale = 1.0 / float(np.sqrt(q.data.shape[-1]))
    dtype = q.data.dtype

    bias_tensor = attention_bias if isinstance(attention_bias, Tensor) else None
    bias_data = None
    if attention_bias is not None:
        bias_data = bias_tensor.data if bias_tensor is not None else np.asarray(attention_bias)

    # Forward — the elementwise ops are applied in the same order as the
    # unfused chain (so values are bitwise identical) but run IN PLACE on the
    # freshly allocated score buffer: the unfused path materialises a new
    # (batch, heads, seq, seq) array per op, and that allocation traffic —
    # not the arithmetic — dominated the attention cost.
    scores = q.data @ np.swapaxes(k.data, -1, -2)
    scores *= np.asarray(scale, dtype=dtype)
    if bias_data is not None:
        scores += bias_data
    blocked = None
    if attention_mask is not None:
        mask = np.asarray(attention_mask, dtype=bool)
        if not mask.all():
            blocked = ~mask[:, None, None, :]
            np.copyto(scores, np.asarray(mask_value, dtype=dtype), where=blocked)
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    denom = scores.sum(axis=-1, keepdims=True, dtype=accumulation_dtype(dtype))
    scores /= denom.astype(dtype, copy=False)
    weights = scores

    drop_mask = None
    dropped = weights
    if training and dropout_p > 0.0:
        if rng is None:
            raise ValueError("dropout_p > 0 in training mode requires an rng")
        keep = 1.0 - dropout_p
        drop_mask = (rng.random(weights.shape) < keep).astype(dtype) / keep
        dropped = weights * drop_mask
    out_data = dropped @ v.data

    parents = (q, k, v) if bias_tensor is None else (q, k, v, bias_tensor)
    if not _needs_grad(parents):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        if v.requires_grad:
            grad_v = np.swapaxes(dropped, -1, -2) @ grad
            v._accumulate(_unbroadcast(grad_v, v.data.shape))
        d_dropped = grad @ np.swapaxes(v.data, -1, -2)
        d_weights = d_dropped * drop_mask if drop_mask is not None else d_dropped
        # Softmax backward.  Blocked positions of a partially-masked row have
        # weight exactly 0, so their score gradient vanishes on its own; a
        # FULLY-masked row degenerates to uniform weights, so zero it
        # explicitly — matching masked_fill's unconditional grad blocking.
        dot = (d_weights * weights).sum(axis=-1, keepdims=True)
        d_scores = weights * (d_weights - dot)
        if blocked is not None:
            np.copyto(d_scores, 0.0, where=blocked)
        if bias_tensor is not None and bias_tensor.requires_grad:
            bias_tensor._accumulate(_unbroadcast(d_scores, bias_tensor.data.shape))
        if q.requires_grad:
            grad_q = (d_scores @ k.data) * scale
            q._accumulate(_unbroadcast(grad_q, q.data.shape))
        if k.requires_grad:
            grad_k = (np.swapaxes(d_scores, -1, -2) @ q.data) * scale
            k._accumulate(_unbroadcast(grad_k, k.data.shape))

    return _child(out_data, parents, backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace positions where ``mask`` is true with ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.asarray(value, dtype=x.data.dtype), x.data)
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.where(mask, 0.0, grad))

    return _child(out_data, (x,), backward)
