"""Differentiable functional operations used by the transformer layers.

Each function takes and returns :class:`~repro.nn.tensor.Tensor` objects and
participates in the autograd graph.  Fused implementations (softmax, layer
norm, cross entropy) are provided because composing them from primitives would
be substantially slower and numerically less stable.

When gradients are disabled (:func:`~repro.nn.tensor.no_grad`) or no input
requires them, every function returns a plain tensor without creating a
backward closure or recording parents, and all computations run in the dtype
of their inputs (so a float32 model stays float32 end to end).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "tanh",
    "dropout",
    "layer_norm",
    "embedding_lookup",
    "cross_entropy",
    "kl_div_with_soft_targets",
    "masked_fill",
]

# Python float so it stays a "weak" scalar and never promotes float32 arrays.
_GELU_C = float(np.sqrt(2.0 / np.pi))


def _needs_grad(parents) -> bool:
    return is_grad_enabled() and any(p.requires_grad for p in parents)


def _child(data: np.ndarray, parents, backward) -> Tensor:
    """Build an output tensor wired into the autograd graph.

    Call sites check :func:`_needs_grad` first so no backward closure is even
    created on the inference fast path; the re-check here keeps the wiring
    correct should a future op forget the guard.
    """
    out = Tensor._result(data)
    if _needs_grad(parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return _child(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    if not _needs_grad((x,)):
        return Tensor._result(out_data)
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return _child(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""
    inner = _GELU_C * (x.data + 0.044715 * x.data**3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + tanh_inner)
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        sech2 = 1.0 - tanh_inner**2
        d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x.data**2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
        x._accumulate(grad * local)

    return _child(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: active only during training."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.data.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return _child(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalised = (x.data - mean) * inv_std
    out_data = normalised * weight.data + bias.data
    if not _needs_grad((x, weight, bias)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            weight._accumulate((grad * normalised).sum(axis=axes))
        if bias.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            g = grad * weight.data
            mean_g = g.mean(axis=-1, keepdims=True)
            mean_gx = (g * normalised).mean(axis=-1, keepdims=True)
            x._accumulate(inv_std * (g - mean_g - normalised * mean_gx))

    return _child(out_data, (x, weight, bias), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by integer ``indices`` (any shape)."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]
    if not _needs_grad((weight,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
        weight._accumulate(full)

    return _child(out_data, (weight,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int = -100,
    class_weights: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` ``(N, C)`` and integer targets ``(N,)``.

    Targets equal to ``ignore_index`` do not contribute to the loss.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits of shape (N, C)")
    valid = targets != ignore_index
    n_valid = max(int(valid.sum()), 1)

    shifted = logits.data - logits.data.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_norm

    safe_targets = np.where(valid, targets, 0)
    picked = log_probs[np.arange(len(targets)), safe_targets]
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=logits.data.dtype)
        weights = np.where(valid, class_weights[safe_targets], 0.0)
    else:
        weights = valid.astype(logits.data.dtype)
    total_weight = max(weights.sum(), 1e-12)
    loss_value = -(picked * weights).sum() / total_weight

    if not _needs_grad((logits,)):
        out = Tensor._result(np.asarray(loss_value))
        out.name = f"cross_entropy(n={n_valid})"
        return out

    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=logits.data.dtype).reshape(())
        d_logits = probs * weights[:, None]
        d_logits[np.arange(len(targets)), safe_targets] -= weights
        d_logits /= total_weight
        logits._accumulate(g * d_logits)

    out = _child(np.asarray(loss_value), (logits,), backward)
    # Expose the number of contributing rows so callers can weight batches.
    out.name = f"cross_entropy(n={n_valid})"
    return out


def kl_div_with_soft_targets(
    student_logits: Tensor, teacher_probs: np.ndarray, temperature: float = 1.0
) -> Tensor:
    """Soft cross-entropy ``-sum(p_teacher * log p_student)`` averaged over rows.

    This is the DMLM objective of the paper (Eq. 13): the teacher distribution
    comes from the ground-truth table encoding, the student distribution from
    the masked table encoding.  Gradients flow only into the student logits.
    """
    teacher_probs = np.asarray(teacher_probs, dtype=student_logits.data.dtype)
    if student_logits.data.shape != teacher_probs.shape:
        raise ValueError("student logits and teacher probabilities must have the same shape")

    scaled = student_logits.data / temperature
    shifted = scaled - scaled.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_norm
    n_rows = max(student_logits.data.shape[0], 1)
    loss_value = -(teacher_probs * log_probs).sum() / n_rows

    if not _needs_grad((student_logits,)):
        return Tensor._result(np.asarray(loss_value))

    probs = np.exp(log_probs)

    def backward(grad: np.ndarray) -> None:
        g = np.asarray(grad, dtype=student_logits.data.dtype).reshape(())
        row_mass = teacher_probs.sum(axis=-1, keepdims=True)
        d_logits = (probs * row_mass - teacher_probs) / (temperature * n_rows)
        student_logits._accumulate(g * d_logits)

    return _child(np.asarray(loss_value), (student_logits,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace positions where ``mask`` is true with ``value`` (no grad there)."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, np.asarray(value, dtype=x.data.dtype), x.data)
    if not _needs_grad((x,)):
        return Tensor._result(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.where(mask, 0.0, grad))

    return _child(out_data, (x,), backward)
