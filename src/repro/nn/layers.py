"""Neural-network modules used to build the transformer encoders.

The module system mirrors the familiar PyTorch API closely enough that the
model code in :mod:`repro.plm` and :mod:`repro.core` reads naturally:
``Module`` tracks parameters and sub-modules recursively, supports
``state_dict`` / ``load_state_dict`` and a ``train()`` / ``eval()`` switch.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = [
    "Parameter",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


def _child_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent child stream that does not consume draws from ``rng``.

    Spawning keeps weight initialisation bitwise identical to code that does
    not create the child, while still giving every dropout its own stream.
    """
    try:
        return rng.spawn(1)[0]
    except (AttributeError, TypeError, ValueError):  # generator without a seed sequence
        return np.random.default_rng(int(rng.integers(0, 2**63)))


class Module:
    """Base class for all layers and models.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for parameter iteration and
    state-dict (de)serialisation.
    """

    def __init__(self) -> None:
        self.training = True

    # -- attribute discovery ------------------------------------------- #
    def _children(self) -> Iterator[tuple[str, Module]]:
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value

    def _direct_parameters(self) -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                yield key, value

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for key, param in self._direct_parameters():
            yield (f"{prefix}{key}", param)
        for key, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters as a flat list."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module."""
        return int(sum(p.data.size for p in self.parameters()))

    # -- training mode -------------------------------------------------- #
    def train(self, mode: bool = True) -> Module:
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for _, child in self._children():
            child.train(mode)
        return self

    def eval(self) -> Module:
        """Switch to evaluation mode (dropout disabled)."""
        return self.train(False)

    # -- gradients ------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- dtype ----------------------------------------------------------- #
    def to(self, dtype) -> Module:
        """Cast every parameter to ``dtype`` in place (grads are dropped).

        The escape hatch out of the global dtype policy for a single model:
        ``model.to(np.float64)`` turns an existing float32 model into the
        float64 parity oracle without touching the policy, because op outputs
        inherit the dtype of their inputs.
        """
        resolved = np.dtype(dtype)
        if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {resolved}")
        for param in self.parameters():
            param.data = param.data.astype(resolved, copy=False)
            param.grad = None
        return self

    # -- state dict ------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Return a flat mapping from parameter names to numpy arrays."""
        return {name: param.data.copy() for name, param in self.named_parameters(prefix)}

    def _upgrade_state_dict(self, state: dict[str, np.ndarray], prefix: str) -> None:
        """Hook: migrate legacy checkpoint keys in ``state`` in place.

        Sub-classes whose parameter layout changed override this to rewrite
        old keys (prefixed with ``prefix``) into the current layout, so saved
        checkpoints keep loading.  The default is a no-op.
        """

    def _apply_state_dict_upgrades(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        self._upgrade_state_dict(state, prefix)
        for key, child in self._children():
            child._apply_state_dict_upgrades(state, f"{prefix}{key}.")

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from a mapping produced by :meth:`state_dict`."""
        state = dict(state)
        self._apply_state_dict_upgrades(state)
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)!r}, "
                f"unexpected={sorted(unexpected)!r}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # -- call protocol --------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules that is properly registered for recursion."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._modules: list[Module] = list(modules)
        for index, module in enumerate(self._modules):
            setattr(self, f"item_{index}", module)

    def append(self, module: Module) -> None:
        setattr(self, f"item_{len(self._modules)}", module)
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Linear(Module):
    """Affine transformation ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Parameter(rng.normal(0.0, scale, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    @classmethod
    def _from_weights(cls, weight: np.ndarray, bias: np.ndarray | None = None) -> Linear:
        """Wrap pre-computed arrays without drawing an initialisation."""
        layer = cls.__new__(cls)
        Module.__init__(layer)
        layer.weight = Parameter(weight)
        layer.bias = Parameter(bias) if bias is not None else None
        layer.out_features, layer.in_features = layer.weight.data.shape
        return layer

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if not is_grad_enabled():
            # Inference fast path: let the gather itself do the bounds check
            # instead of paying an O(n) min/max scan per lookup.  (Indices in
            # [-num_embeddings, -1] wrap like numpy's; the training path
            # below still rejects them with the friendly error.)
            try:
                return F.embedding_lookup(self.weight, indices)
            except IndexError as exc:
                raise IndexError(
                    f"embedding index out of range [0, {self.num_embeddings})"
                ) from exc
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, seed: int = 0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention with optional masking.

    Supports an additive attention bias (used by the DeBERTa-style relative
    position variant) and a padding mask of shape ``(batch, seq)``.

    Q, K and V are produced by a single packed ``(hidden, 3*hidden)``
    projection (one matmul instead of three); checkpoints saved with the
    older separate ``query``/``key``/``value`` layout are migrated on load.
    The attention core runs through the fused
    :func:`~repro.nn.functional.scaled_dot_product_attention` node by
    default; setting :attr:`fused` to false selects the original chain of
    primitive ops, kept as a parity oracle.
    """

    def __init__(self, hidden_size: int, num_heads: int, dropout: float = 0.1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.fused = True
        # Draw the three projections exactly as the unpacked layout did (same
        # rng consumption, same per-projection fan-in/fan-out scale), then
        # pack them row-wise, so models seeded identically stay bitwise
        # identical to the previous layout.
        scale = np.sqrt(2.0 / (hidden_size + hidden_size))
        packed = np.concatenate(
            [rng.normal(0.0, scale, size=(hidden_size, hidden_size)) for _ in range(3)],
            axis=0,
        )
        self.qkv = Linear._from_weights(packed, np.zeros(3 * hidden_size))
        self.output = Linear(hidden_size, hidden_size, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=_child_rng(rng))

    def _upgrade_state_dict(self, state: dict[str, np.ndarray], prefix: str) -> None:
        # Checkpoints from before the packed-QKV layout store three separate
        # projections; pack them on load so saved models keep working.
        names = ("query", "key", "value")
        weight_keys = [f"{prefix}{name}.weight" for name in names]
        if f"{prefix}qkv.weight" in state or not all(key in state for key in weight_keys):
            return
        state[f"{prefix}qkv.weight"] = np.concatenate(
            [state.pop(key) for key in weight_keys], axis=0
        )
        bias_keys = [f"{prefix}{name}.bias" for name in names]
        if all(key in state for key in bias_keys):
            state[f"{prefix}qkv.bias"] = np.concatenate(
                [state.pop(key) for key in bias_keys], axis=0
            )

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _unfused_attention(
        self,
        q: Tensor,
        k: Tensor,
        v: Tensor,
        attention_mask: np.ndarray | None,
        attention_bias: Tensor | None,
    ) -> Tensor:
        """Reference attention core: the original chain of primitive ops."""
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / float(np.sqrt(self.head_dim)))
        if attention_bias is not None:
            scores = scores + attention_bias
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            # mask: (batch, seq) with True = keep.  Broadcast to (batch, 1, 1, seq).
            blocked = ~mask[:, None, None, :]
            scores = F.masked_fill(scores, np.broadcast_to(blocked, scores.shape), -1e9)

        weights = F.softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        return weights @ v

    def forward(
        self,
        x: Tensor,
        attention_mask: np.ndarray | None = None,
        attention_bias: Tensor | None = None,
    ) -> Tensor:
        batch, seq, _ = x.shape
        q_proj, k_proj, v_proj = self.qkv(x).chunk(3, axis=-1)
        q = self._split_heads(q_proj, batch, seq)
        k = self._split_heads(k_proj, batch, seq)
        v = self._split_heads(v_proj, batch, seq)

        if self.fused:
            context = F.scaled_dot_product_attention(
                q, k, v,
                attention_mask=attention_mask,
                attention_bias=attention_bias,
                dropout_p=self.attn_dropout.p,
                training=self.training,
                rng=self.attn_dropout._rng,
            )
        else:
            context = self._unfused_attention(q, k, v, attention_mask, attention_bias)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden_size)
        return self.output(context)


class TransformerEncoderLayer(Module):
    """Post-norm transformer encoder block (as in the original BERT)."""

    def __init__(self, hidden_size: int, num_heads: int, intermediate_size: int,
                 dropout: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention = MultiHeadSelfAttention(hidden_size, num_heads, dropout, rng=rng)
        self.attention_norm = LayerNorm(hidden_size)
        self.ffn_in = Linear(hidden_size, intermediate_size, rng=rng)
        self.ffn_out = Linear(intermediate_size, hidden_size, rng=rng)
        self.ffn_norm = LayerNorm(hidden_size)
        self.dropout = Dropout(dropout, rng=_child_rng(rng))

    def forward(
        self,
        x: Tensor,
        attention_mask: np.ndarray | None = None,
        attention_bias: Tensor | None = None,
    ) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask, attention_bias=attention_bias)
        x = self.attention_norm(x + self.dropout(attended))
        hidden = F.gelu(self.ffn_in(x))
        x = self.ffn_norm(x + self.dropout(self.ffn_out(hidden)))
        return x
