"""A minimal HTTP/1.1 layer on asyncio streams — stdlib only, by design.

The gateway needs exactly four things from HTTP: parse a request, write a
response, keep connections alive, and refuse oversized payloads.  Pulling in
an ASGI stack for that would add the repo's first serving dependency, so this
module implements the narrow slice directly on ``asyncio`` streams:

* :func:`read_request` / :func:`write_response` — the server side.  Requests
  are limited (header block and body size) and malformed input raises
  :class:`HttpError` with the status the handler should answer with;
* :class:`HttpRequest` / :class:`HttpResponse` — plain dataclasses with JSON
  helpers; header names are lower-cased at the parser so lookups are
  case-insensitive the way HTTP requires;
* :class:`HttpConnection` / :func:`http_request` — the matching client, used
  by the tests, the load generator (``benchmarks/bench_serving.py``) and the
  example.  ``HttpConnection`` keeps its socket open across requests so a
  closed-loop client measures the gateway, not connection setup.

Unsupported generality is rejected loudly rather than half-implemented:
chunked request bodies get ``411 Length Required`` (the gateway's clients
always know their payload size), and anything that does not parse as
HTTP/1.x gets ``400``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "write_response",
    "HttpConnection",
    "http_request",
]

#: Upper bound on the request line + header block, in bytes.
MAX_HEADER_BYTES = 32 * 1024

#: Default upper bound on a request body, in bytes (the gateway config can
#: lower it).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure with the HTTP status the peer should see."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request.  Header names are lower-cased."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """Decode the body as JSON (raises :class:`HttpError` 400 on junk)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from error


@dataclass
class HttpResponse:
    """One response to serialise.  ``headers`` may add/override anything."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_json(cls, payload: Any, status: int = 200,
                  headers: Mapping[str, str] | None = None) -> HttpResponse:
        return cls(
            status=status,
            body=json.dumps(payload).encode("utf-8"),
            content_type="application/json",
            headers=dict(headers or {}),
        )

    @classmethod
    def from_text(cls, text: str, status: int = 200,
                  content_type: str = "text/plain; charset=utf-8") -> HttpResponse:
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type)

    def json(self) -> Any:
        """Decode the body as JSON (client-side convenience)."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")


async def _read_head(reader: asyncio.StreamReader) -> bytes | None:
    """The request line + headers, or ``None`` on a clean EOF between requests."""
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # peer closed an idle keep-alive connection
        raise HttpError(400, "connection closed mid-request") from error
    except asyncio.LimitOverrunError as error:
        raise HttpError(413, "header block exceeds the size limit") from error


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str], dict[str, str]]:
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as error:
        raise HttpError(400, "malformed request line") from error
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    return method.upper(), parts.path or "/", query, headers


async def read_request(reader: asyncio.StreamReader,
                       max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
                       ) -> HttpRequest | None:
    """Parse one request; ``None`` means the peer closed the idle connection.

    Raises :class:`HttpError` for anything malformed or over limit — the
    server answers with the error's status and closes the connection.
    """
    head = await _read_head(reader)
    if head is None:
        return None
    method, path, query, headers = _parse_head(head)
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked request bodies are not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as error:
            raise HttpError(400, "malformed Content-Length") from error
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"request body exceeds {max_body_bytes} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise HttpError(400, "connection closed mid-body") from error
    return HttpRequest(method=method, path=path, query=query,
                       headers=headers, body=body)


async def write_response(writer: asyncio.StreamWriter, response: HttpResponse,
                         keep_alive: bool = True) -> None:
    headers = {
        "content-type": response.content_type,
        "content-length": str(len(response.body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    headers.update({name.lower(): value
                    for name, value in response.headers.items()})
    head = [f"HTTP/1.1 {response.status} {response.reason}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


# --------------------------------------------------------------------------- #
# the matching client
# --------------------------------------------------------------------------- #
class HttpConnection:
    """A keep-alive client connection (tests, example, load generator)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, host: str, port: int, *,
                   connect_timeout_s: float = 5.0) -> HttpConnection:
        # A bounded dial (REP106): a gateway that is wedged mid-start must
        # fail the client fast, not hang its event loop on connect.
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=connect_timeout_s
        )
        return cls(reader, writer)

    async def request(self, method: str, path: str, *,
                      json_body: Any = None,
                      headers: Mapping[str, str] | None = None) -> HttpResponse:
        body = b"" if json_body is None else json.dumps(json_body).encode("utf-8")
        out = {
            "host": "gateway",
            "content-length": str(len(body)),
        }
        if json_body is not None:
            out["content-type"] = "application/json"
        out.update({name.lower(): value for name, value in (headers or {}).items()})
        head = [f"{method.upper()} {path} HTTP/1.1"]
        head.extend(f"{name}: {value}" for name, value in out.items())
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        self._writer.write(body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> HttpResponse:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        _, status, *_ = lines[0].split(" ", 2)
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0"))
        if length:
            body = await self._reader.readexactly(length)
        return HttpResponse(
            status=int(status), body=body,
            content_type=headers.get("content-type", ""), headers=headers,
        )

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass

    async def __aenter__(self) -> HttpConnection:
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


async def http_request(host: str, port: int, method: str, path: str, *,
                       json_body: Any = None,
                       headers: Mapping[str, str] | None = None) -> HttpResponse:
    """One-shot convenience: open, request, close."""
    async with await HttpConnection.open(host, port) as connection:
        return await connection.request(method, path, json_body=json_body,
                                        headers=headers)
