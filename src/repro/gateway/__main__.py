"""Run a gateway process from a saved service bundle.

Usage::

    python -m repro.gateway --bundle bundle/ --port 8080 --processes 2

The process serves until ``SIGTERM``/``SIGINT``, then drains gracefully:
intake stops, admitted requests are answered, in-flight batches finish, and
the service (with its worker pools) is closed.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.gateway.app import Gateway, GatewayConfig
from repro.serve import AnnotationService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--bundle", required=True,
                        help="saved ServiceBundle directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="requests coalesced per micro-batch "
                             "(default: the service's max_batch)")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="micro-batch coalescing window")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="admission bound; beyond it requests are shed "
                             "oldest-deadline-first")
    parser.add_argument("--max-concurrent-batches", type=int, default=2)
    parser.add_argument("--default-deadline-ms", type=float, default=None,
                        help="deadline for requests without an X-Deadline-Ms "
                             "header (default: the service policy's timeout)")
    parser.add_argument("--processes", type=int, default=0,
                        help="Part-1 prepare process-pool size")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="prepared-table LRU bound (0 disables)")
    parser.add_argument("--service-max-batch", type=int, default=16,
                        help="PLM micro-batch size inside the service")
    return parser


async def _serve(service: AnnotationService, config: GatewayConfig) -> None:
    gateway = Gateway(service, config)
    await gateway.start()
    print(f"gateway serving http://{config.host}:{gateway.port} "
          f"(queue={config.max_queue}, max_wait={config.max_wait_ms}ms) — "
          "SIGTERM drains gracefully", flush=True)
    await gateway.serve_forever(install_signals=True, close_service=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    service = AnnotationService.load(
        args.bundle, max_batch=args.service_max_batch,
        cache_size=args.cache_size, processes=args.processes,
    )
    config = GatewayConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        max_concurrent_batches=args.max_concurrent_batches,
        default_deadline_ms=args.default_deadline_ms,
    )
    try:
        asyncio.run(_serve(service, config))
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        pass
    finally:
        service.close()  # idempotent; covers startup failures before drain
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
