"""Overload-safe async serving gateway (stdlib asyncio, zero dependencies).

``repro.gateway`` is the network front door of the serving stack: an
asyncio HTTP tier that micro-batches concurrent requests into
:meth:`~repro.serve.service.AnnotationService.annotate_batch` calls, applies
admission control (bounded intake, oldest-deadline-first shedding, a
concurrency limiter), propagates per-request deadlines (``X-Deadline-Ms``)
down into the resilience layer's budgets, maps the typed error taxonomy of
:mod:`repro.core.errors` onto HTTP statuses, and drains gracefully on
``SIGTERM`` — every accepted request is answered with predictions or a typed
error, never dropped.

Start one from a saved bundle::

    python -m repro.gateway --bundle bundle/ --port 8080

or embed it::

    from repro.gateway import Gateway, GatewayConfig

    async with Gateway(service, GatewayConfig(port=0)) as gateway:
        ...  # http://127.0.0.1:{gateway.port}/annotate

Endpoints: ``POST /annotate`` (one table object or a list), ``GET /healthz``,
``GET /stats``, ``GET /metrics`` (Prometheus text).
"""

from repro.gateway.admission import (
    DEADLINE_HEADER,
    AdmissionQueue,
    Deadline,
    PendingRequest,
)
from repro.gateway.app import Gateway, GatewayConfig, status_for
from repro.gateway.batcher import MicroBatcher
from repro.gateway.http import (
    HttpConnection,
    HttpError,
    HttpRequest,
    HttpResponse,
    http_request,
)

__all__ = [
    "Gateway",
    "GatewayConfig",
    "status_for",
    "AdmissionQueue",
    "Deadline",
    "PendingRequest",
    "DEADLINE_HEADER",
    "MicroBatcher",
    "HttpConnection",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "http_request",
]
