"""The micro-batcher: coalesce admitted requests into ``annotate_batch`` calls.

One consumer task drains the :class:`~repro.gateway.admission.AdmissionQueue`
under the coalescing policy (up to ``max_batch`` tables per call, waiting at
most ``max_wait_s`` after the first arrival) and dispatches each batch to the
blocking :meth:`~repro.serve.service.AnnotationService.annotate_batch` on a
thread-pool executor, so the event loop keeps accepting traffic while the PLM
runs.  ``max_concurrent_batches`` bounds how many batches may be in flight at
once — the gateway's concurrency limiter; everything beyond it waits in the
admission queue where the shedding policy can see it.

Deadline handling inside a batch:

* the batch's *budget* handed to the service is the **largest** remaining
  budget across its members — an almost-expired rider must not kill the
  batch for everyone else (its own expiry is enforced per-request at the
  response edge by the gateway handler);
* a batch that fails fails *loudly*: the typed error is fanned out to every
  member's future, so an accepted request always resolves — result or typed
  error, never silence.  The chaos suite pins exactly that invariant.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections.abc import Callable

from repro.data.table import Table

from repro.gateway.admission import AdmissionQueue, PendingRequest

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce queued requests and fan results back out to their futures.

    Parameters
    ----------
    annotate:
        Blocking batch function ``(tables, budget_s | None) -> predictions``
        (normally ``service.annotate_batch``).  Runs on the loop's default
        thread-pool executor.
    queue:
        The admission queue to drain.
    max_batch:
        Maximum number of *requests* coalesced into one call (a multi-table
        request rides as one unit; the service micro-batches tables
        internally by its own ``max_batch`` either way).
    max_wait_s:
        How long to hold the first request of a batch while more arrive.
    max_concurrent_batches:
        Concurrency limiter: batches dispatched but not yet resolved.
    """

    def __init__(self, annotate: Callable[[list[Table], float | None], list[list[str]]],
                 queue: AdmissionQueue, *, max_batch: int = 16,
                 max_wait_s: float = 0.005, max_concurrent_batches: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_concurrent_batches < 1:
            raise ValueError("max_concurrent_batches must be at least 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self._annotate = annotate
        self._queue = queue
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._slots = asyncio.Semaphore(max_concurrent_batches)
        self._tasks: set[asyncio.Task] = set()
        # Telemetry for /stats: how well is coalescing actually working?
        self.batches = 0
        self.batched_tables = 0
        self.batch_errors = 0
        self.max_coalesced = 0

    # ------------------------------------------------------------------ #
    @property
    def mean_batch_size(self) -> float:
        return self.batched_tables / self.batches if self.batches else 0.0

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "batched_tables": self.batched_tables,
            "batch_errors": self.batch_errors,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_batch_size": self.max_coalesced,
        }

    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        """Drain the queue until it is closed *and* empty, then join batches.

        This is the graceful-drain path: ``queue.close()`` stops intake,
        this loop keeps dispatching whatever was already admitted, and
        ``run()`` only returns once every in-flight batch has resolved its
        futures — no accepted request is abandoned by shutdown.
        """
        while True:
            batch = await self._queue.take(self.max_batch, self.max_wait_s)
            if not batch:
                break
            await self._slots.acquire()
            task = asyncio.create_task(self._run_batch(batch))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def _run_batch(self, batch: list[PendingRequest]) -> None:
        try:
            tables = [table for pending in batch for table in pending.tables]
            budget_s = self._batch_budget_s(batch)
            loop = asyncio.get_running_loop()
            try:
                results = await loop.run_in_executor(
                    None, self._annotate, tables, budget_s
                )
                self.batches += 1
                self.batched_tables += len(tables)
                self.max_coalesced = max(self.max_coalesced, len(tables))
            # repro: allow[REP104] -- the error is fanned out to every
            # member's future via pending.fail, which re-raises at await sites
            except BaseException as error:
                self.batch_errors += 1
                for pending in batch:
                    pending.fail(error)
                return
            cursor = 0
            for pending in batch:
                slice_ = results[cursor:cursor + len(pending.tables)]
                cursor += len(pending.tables)
                if not pending.future.done():
                    pending.future.set_result(slice_)
        finally:
            self._slots.release()

    def _batch_budget_s(self, batch: list[PendingRequest]) -> float | None:
        """The service-side budget: the longest remaining deadline on board."""
        remaining = max(pending.deadline.remaining_s() for pending in batch)
        return None if math.isinf(remaining) else max(remaining, 0.0)
