"""Admission control for the gateway: deadlines and a shedding intake queue.

Overload policy, in one place:

* every request carries a :class:`Deadline` — parsed from the
  ``X-Deadline-Ms`` header or defaulted by the gateway — on the monotonic
  clock, so "how long is this answer still worth computing?" is a number
  every layer can read;
* admitted requests wait in an :class:`AdmissionQueue` bounded at
  ``maxsize``.  When a request arrives at a full queue, the queue sheds
  **oldest-deadline-first**: the entry whose deadline is nearest expiry (the
  one least likely to be answered in time, so the cheapest to drop) is
  rejected with :class:`~repro.core.errors.GatewayOverloaded` — that victim
  may be the incoming request itself.  Shedding never grows the queue, so
  memory under overload is a constant, not a function of traffic;
* at dequeue time (:meth:`AdmissionQueue.take`) entries whose deadline
  already expired while queued are failed with
  :class:`~repro.core.errors.DeadlineExceeded` instead of being batched —
  expired work never reaches the PLM.

Everything here runs on the event loop thread, so the queue needs no locks —
only an :class:`asyncio.Event` to wake the batcher.  The clock is injectable
for deterministic tests.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import time
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.errors import DeadlineExceeded, GatewayOverloaded
from repro.data.table import Table

__all__ = ["DEADLINE_HEADER", "Deadline", "PendingRequest", "AdmissionQueue"]

#: Request header carrying the client's remaining budget in milliseconds.
DEADLINE_HEADER = "x-deadline-ms"


class Deadline:
    """An absolute point on the monotonic clock a request must beat.

    ``at_s`` is ``None`` for unbounded requests (no header and no configured
    default): :meth:`remaining_s` is then ``inf`` and :meth:`expired` never
    fires.
    """

    __slots__ = ("at_s", "_clock")

    def __init__(self, at_s: float | None,
                 clock: Callable[[], float] = time.monotonic):
        self.at_s = at_s
        self._clock = clock

    @classmethod
    def never(cls, clock: Callable[[], float] = time.monotonic) -> Deadline:
        return cls(None, clock)

    @classmethod
    def after(cls, budget_s: float,
              clock: Callable[[], float] = time.monotonic) -> Deadline:
        return cls(clock() + budget_s, clock)

    @classmethod
    def from_header(cls, value: str | None, default_ms: float | None = None,
                    clock: Callable[[], float] = time.monotonic) -> Deadline:
        """Parse an ``X-Deadline-Ms`` header value (``None`` → the default).

        Raises ``ValueError`` for junk — the gateway maps that to a 400, the
        one deadline failure that is the client's fault.
        """
        if value is None:
            if default_ms is None:
                return cls.never(clock)
            return cls.after(default_ms / 1e3, clock)
        try:
            budget_ms = float(value)
        except ValueError:
            raise ValueError(
                f"invalid {DEADLINE_HEADER} header {value!r}: expected "
                "milliseconds as a number"
            ) from None
        if not math.isfinite(budget_ms):
            raise ValueError(
                f"invalid {DEADLINE_HEADER} header {value!r}: must be finite"
            )
        return cls.after(budget_ms / 1e3, clock)

    # ------------------------------------------------------------------ #
    def remaining_s(self) -> float:
        return math.inf if self.at_s is None else self.at_s - self._clock()

    def expired(self) -> bool:
        return self.at_s is not None and self._clock() > self.at_s

    def sort_key(self) -> float:
        """Earlier deadline sorts first; unbounded requests sort last."""
        return math.inf if self.at_s is None else self.at_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.at_s is None:
            return "Deadline(never)"
        return f"Deadline(in {self.remaining_s() * 1e3:.1f} ms)"


@dataclass
class PendingRequest:
    """One admitted request waiting for (or riding in) a micro-batch."""

    tables: list[Table]
    deadline: Deadline
    future: asyncio.Future
    enqueued_at: float
    seq: int = field(default_factory=itertools.count().__next__)

    def fail(self, error: BaseException) -> None:
        """Resolve the waiter with a typed error (idempotent)."""
        if not self.future.done():
            self.future.set_exception(error)


class AdmissionQueue:
    """A bounded intake queue that sheds oldest-deadline-first on overflow.

    Single-consumer (the :class:`~repro.gateway.batcher.MicroBatcher`),
    many producers (connection handlers), all on the event loop thread.
    Counters (``admitted`` / ``shed_queue_full`` / ``shed_expired``) feed the
    gateway's ``/stats``.
    """

    def __init__(self, maxsize: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._clock = clock
        self._items: list[PendingRequest] = []
        self._arrived = asyncio.Event()
        self._closed = False
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_expired = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop intake (``offer`` raises); queued entries stay to be drained."""
        self._closed = True
        self._arrived.set()  # wake the consumer so drain can finish

    # ------------------------------------------------------------------ #
    def offer(self, pending: PendingRequest) -> None:
        """Admit ``pending`` or shed, oldest-deadline-first.

        Raises :class:`~repro.core.errors.GatewayOverloaded` when the queue
        is draining, or when the queue is full and the *incoming* request
        holds the earliest deadline of everyone competing for a slot.  When a
        *queued* entry holds the earliest deadline instead, that victim's
        future is failed with ``GatewayOverloaded`` and the newcomer takes
        its slot.
        """
        if self._closed:
            raise GatewayOverloaded("gateway is draining; retry another replica")
        if len(self._items) >= self.maxsize:
            victim = min(self._items + [pending],
                         key=lambda p: (p.deadline.sort_key(), p.seq))
            self.shed_queue_full += 1
            if victim is pending:
                raise GatewayOverloaded(
                    f"intake queue full ({self.maxsize} pending) and the "
                    "request's deadline is the nearest to expiry"
                )
            self._items.remove(victim)
            victim.fail(GatewayOverloaded(
                f"shed from a full intake queue ({self.maxsize} pending) to "
                "admit a request with a later deadline"
            ))
        self._items.append(pending)
        self.admitted += 1
        self._arrived.set()

    async def take(self, max_items: int, max_wait_s: float) -> list[PendingRequest]:
        """Dequeue up to ``max_items`` entries, coalescing for ``max_wait_s``.

        Blocks until at least one entry is available (or the queue closes),
        then keeps collecting arrivals for at most ``max_wait_s`` — the
        micro-batching window.  Entries whose deadline expired while queued
        are failed with :class:`~repro.core.errors.DeadlineExceeded` and not
        returned.  Returns ``[]`` only once the queue is closed *and* empty,
        which is the consumer's signal to stop.
        """
        while not self._items:
            if self._closed:
                return []
            await self._wait_for_arrival(None)
        if not self._closed and len(self._items) < max_items and max_wait_s > 0:
            flush_at = self._clock() + max_wait_s
            while len(self._items) < max_items and not self._closed:
                remaining = flush_at - self._clock()
                if remaining <= 0:
                    break
                if not await self._wait_for_arrival(remaining):
                    break
        batch: list[PendingRequest] = []
        taken = 0
        while self._items and taken < max_items:
            pending = self._items.pop(0)
            taken += 1
            if pending.deadline.expired():
                self.shed_expired += 1
                pending.fail(DeadlineExceeded(
                    "deadline expired while the request was queued"
                ))
                continue
            batch.append(pending)
        if not self._items and not self._closed:
            self._arrived.clear()
        return batch

    async def _wait_for_arrival(self, timeout: float | None) -> bool:
        """Wait for the next arrival (or close); ``False`` on timeout.

        The event is cleared *before* awaiting: everything runs on the loop
        thread and there is no await between the clear and the wait, so an
        ``offer``/``close`` can only land after the wait has started — no
        wakeup is lost, and a set-since-last-batch event cannot turn the
        coalescing window into a busy loop.
        """
        self._arrived.clear()
        try:
            await asyncio.wait_for(self._arrived.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False
