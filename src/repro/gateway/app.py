"""The overload-safe serving gateway: HTTP in front of an AnnotationService.

:class:`Gateway` is the front door the ROADMAP asked for — the tier that
makes *overload* a policy decision the way :class:`~repro.runtime.RuntimePolicy`
made *failure* one.  The pieces, front to back:

* connection handlers (one coroutine per keep-alive connection) parse
  requests with the stdlib-only :mod:`repro.gateway.http` layer;
* ``POST /annotate`` requests get a :class:`~repro.gateway.admission.Deadline`
  (``X-Deadline-Ms`` header, else the configured default, else the service
  policy's ``timeout_s``) and enter the bounded
  :class:`~repro.gateway.admission.AdmissionQueue` — or are shed
  oldest-deadline-first with a typed 503 + ``Retry-After``;
* the :class:`~repro.gateway.batcher.MicroBatcher` coalesces queued requests
  into ``annotate_batch`` calls (the remaining budget rides into the service
  and down to the resilience layer's per-task waits);
* every failure maps to a status through the typed taxonomy of
  :mod:`repro.core.errors` — ``DeadlineExceeded`` → 504, shed /
  ``BreakerOpen`` → 503 with ``Retry-After``, ``ServiceClosed`` → 410,
  ``BundleCorrupted`` → 500 — so clients route on status the way in-process
  callers route on type;
* ``GET /healthz`` surfaces the service's ``health()`` — a single
  :meth:`~repro.serve.service.AnnotationService.health` snapshot, or (with a
  :class:`~repro.fleet.router.FleetRouter` in the service seat) the fleet's
  aggregated per-replica view; ``GET /stats`` the gateway + service
  counters, ``GET /metrics`` the same numbers in Prometheus text exposition
  format;
* :meth:`Gateway.shutdown` (wired to ``SIGTERM``/``SIGINT`` by
  :meth:`Gateway.serve_forever`) drains gracefully: stop intake, answer
  everything already admitted, then — optionally — close the service.

The invariant the chaos suite pins: **every accepted request is answered** —
with predictions or with a typed error — no matter what crashes, hangs or
floods underneath.
"""

from __future__ import annotations

import asyncio
import signal
import time
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.core.errors import (
    BreakerOpen,
    BundleCorrupted,
    DeadlineExceeded,
    GatewayOverloaded,
    ReplicaUnavailable,
    ServiceClosed,
    ServingError,
)
from repro.data.table import Column, Table

from repro.gateway.admission import (
    DEADLINE_HEADER,
    AdmissionQueue,
    Deadline,
    PendingRequest,
)
from repro.gateway.batcher import MicroBatcher
from repro.gateway.http import (
    MAX_HEADER_BYTES,
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    write_response,
)

__all__ = ["GatewayConfig", "Gateway", "status_for"]


@dataclass(frozen=True)
class GatewayConfig:
    """Deployment knobs of one gateway process (all overload policy).

    ``max_batch`` / ``max_wait_ms``
        Micro-batching: coalesce up to ``max_batch`` requests, holding the
        first at most ``max_wait_ms`` (defaults: the service's own
        ``max_batch``; 5 ms).
    ``max_queue``
        Admission bound — requests beyond it are shed oldest-deadline-first.
    ``max_concurrent_batches``
        Concurrency limiter on in-flight ``annotate_batch`` calls.
    ``default_deadline_ms``
        Deadline for requests without an ``X-Deadline-Ms`` header; ``None``
        falls back to the service policy's ``timeout_s`` (so an unadorned
        request inherits the deployment's per-task patience), and ``0``
        disables default deadlines entirely.
    ``retry_after_s``
        The ``Retry-After`` hint on 503 responses.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int | None = None
    max_wait_ms: float = 5.0
    max_queue: int = 256
    max_concurrent_batches: int = 2
    default_deadline_ms: float | None = None
    max_body_bytes: int = 8 * 1024 * 1024
    retry_after_s: float = 1.0


def status_for(error: BaseException) -> int:
    """Map the typed serving taxonomy onto HTTP statuses."""
    if isinstance(error, DeadlineExceeded):
        return 504
    if isinstance(error, (GatewayOverloaded, BreakerOpen, ReplicaUnavailable)):
        return 503  # transient; 503 + Retry-After tells clients to back off
    if isinstance(error, ServiceClosed):
        return 410
    if isinstance(error, BundleCorrupted):
        return 500
    if isinstance(error, HttpError):
        return error.status
    if isinstance(error, ServingError):
        return 500
    if isinstance(error, (ValueError, KeyError, TypeError)):
        return 400
    return 500


@dataclass
class _GatewayCounters:
    """Handler-side request accounting (queue/batcher keep their own)."""

    requests: int = 0
    completed: int = 0
    errors: int = 0
    rejected_draining: int = 0
    expired_at_admission: int = 0
    expired_in_flight: int = 0
    started_at: float = field(default_factory=time.monotonic)


class Gateway:
    """One asyncio HTTP gateway process in front of an ``AnnotationService``.

    The service object only needs the serving surface the gateway touches:
    ``annotate_batch(tables, budget_s=...)``, ``stats()``, ``health()`` and
    ``close()`` — which is exactly
    :class:`~repro.serve.service.AnnotationService`, but also lets tests
    stand in a scripted fake.
    """

    def __init__(self, service, config: GatewayConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic):
        self.service = service
        self.config = config or GatewayConfig()
        self._clock = clock
        self._state = "idle"  # idle -> serving -> draining -> closed
        self._server: asyncio.base_events.Server | None = None
        self._queue: AdmissionQueue | None = None
        self._batcher: MicroBatcher | None = None
        self._batcher_task: asyncio.Task | None = None
        self._finished = asyncio.Event()
        self._counters = _GatewayCounters()
        self._request_seq = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        return self._state

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests/benchmarks)."""
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return self._server.sockets[0].getsockname()[1]

    def default_deadline_ms(self) -> float | None:
        """The deadline applied to header-less requests, if any."""
        configured = self.config.default_deadline_ms
        if configured is not None:
            return configured if configured > 0 else None
        policy = getattr(self.service, "policy", None)
        timeout_s = getattr(policy, "timeout_s", None)
        return None if timeout_s is None else timeout_s * 1e3

    async def start(self) -> None:
        """Bind the listener and start the batcher; returns once serving."""
        if self._state != "idle":
            raise RuntimeError(f"gateway already {self._state}")
        max_batch = self.config.max_batch or getattr(self.service, "max_batch", 16)
        self._queue = AdmissionQueue(self.config.max_queue, clock=self._clock)
        self._batcher = MicroBatcher(
            self._annotate_blocking, self._queue,
            max_batch=max_batch,
            max_wait_s=self.config.max_wait_ms / 1e3,
            max_concurrent_batches=self.config.max_concurrent_batches,
            clock=self._clock,
        )
        self._batcher_task = asyncio.create_task(self._batcher.run())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_HEADER_BYTES,
        )
        self._state = "serving"

    async def shutdown(self, close_service: bool = False) -> None:
        """Graceful drain: stop intake, answer the admitted, then tear down.

        1. new connections are refused (the listener closes) and new
           ``/annotate`` requests on live connections get 503 + Retry-After;
        2. the admission queue closes — everything already admitted is
           micro-batched and answered;
        3. once the batcher reports every in-flight batch resolved, the
           service is (optionally) closed — which itself drains in-flight
           ``annotate_batch`` calls before touching the pools.

        Idempotent; concurrent callers all wait for the same drain.
        """
        if self._state in ("draining", "closed"):
            await self._finished.wait()
            return
        if self._state == "idle":
            self._state = "closed"
            self._finished.set()
            return
        self._state = "draining"
        assert self._server is not None and self._queue is not None
        self._server.close()
        await self._server.wait_closed()
        self._queue.close()
        if self._batcher_task is not None:
            await self._batcher_task
        if close_service:
            await asyncio.get_running_loop().run_in_executor(
                None, self.service.close
            )
        self._state = "closed"
        self._finished.set()

    async def serve_forever(self, *, install_signals: bool = True,
                            close_service: bool = True) -> None:
        """Start, serve until SIGTERM/SIGINT (or :meth:`shutdown`), drain."""
        if self._state == "idle":
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # platforms without loop signal support
        await self._finished.wait()
        if close_service and self._state != "closed":  # pragma: no cover
            await self.shutdown(close_service=close_service)

    def request_shutdown(self) -> None:
        """Signal-handler-safe trigger for a graceful drain."""
        if self._state == "serving":
            asyncio.ensure_future(self.shutdown(close_service=True))

    async def __aenter__(self) -> Gateway:
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body_bytes)
                except HttpError as error:
                    await write_response(
                        writer, self._error_response(error), keep_alive=False
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                )
                await write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        route = (request.method, request.path)
        if route == ("POST", "/annotate"):
            return await self._annotate_endpoint(request)
        if route == ("GET", "/healthz"):
            return self._healthz_endpoint()
        if route == ("GET", "/stats"):
            return self._stats_endpoint()
        if route == ("GET", "/metrics"):
            return self._metrics_endpoint()
        if request.path in ("/annotate", "/healthz", "/stats", "/metrics"):
            return HttpResponse.from_json(
                {"error": "MethodNotAllowed",
                 "detail": f"{request.method} is not supported on {request.path}"},
                status=405,
            )
        return HttpResponse.from_json(
            {"error": "NotFound", "detail": f"no route for {request.path}"},
            status=404,
        )

    # ------------------------------------------------------------------ #
    # POST /annotate
    # ------------------------------------------------------------------ #
    async def _annotate_endpoint(self, request: HttpRequest) -> HttpResponse:
        self._counters.requests += 1
        try:
            payload = request.json()
            single = isinstance(payload, dict)
            tables = self._tables_from_payload(payload)
            deadline = Deadline.from_header(
                request.headers.get(DEADLINE_HEADER),
                default_ms=self.default_deadline_ms(),
                clock=self._clock,
            )
        except (HttpError, ValueError) as error:
            self._counters.errors += 1
            return self._error_response(error)
        if deadline.expired():
            # Already dead on arrival: cheaper to refuse at the door than to
            # queue work whose answer nobody is waiting for.
            self._counters.expired_at_admission += 1
            return self._error_response(DeadlineExceeded(
                "request deadline had already expired at admission"
            ))
        if self._state != "serving" or self._queue is None:
            self._counters.rejected_draining += 1
            return self._error_response(GatewayOverloaded(
                f"gateway is {self._state}; retry another replica"
            ))
        pending = PendingRequest(
            tables=tables, deadline=deadline,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=self._clock(),
        )
        try:
            self._queue.offer(pending)
        except GatewayOverloaded as error:
            self._counters.errors += 1
            return self._error_response(error)
        remaining = deadline.remaining_s()
        try:
            predictions = await asyncio.wait_for(
                asyncio.shield(pending.future),
                None if remaining == float("inf") else remaining,
            )
        except asyncio.TimeoutError:
            # The batch may still be running for its other riders; this
            # request's answer is due *now*, so 504 and let the stray result
            # (or error) die silently when the future resolves.
            self._counters.expired_in_flight += 1
            self._silence(pending.future)
            return self._error_response(DeadlineExceeded(
                "deadline expired before the micro-batch completed"
            ))
        # repro: allow[REP104] -- mapped to a typed HTTP error response via
        # _error_response; the taxonomy decides the status code
        except BaseException as error:
            self._counters.errors += 1
            return self._error_response(error)
        self._counters.completed += 1
        if single:
            return HttpResponse.from_json({
                "table_id": tables[0].table_id,
                "predictions": predictions[0],
            })
        return HttpResponse.from_json({
            "results": [
                {"table_id": table.table_id, "predictions": columns}
                for table, columns in zip(tables, predictions, strict=True)
            ],
        })

    def _tables_from_payload(self, payload: Any) -> list[Table]:
        if isinstance(payload, dict):
            items = [payload]
        elif isinstance(payload, list) and payload:
            items = payload
        else:
            raise ValueError(
                "expected a table object or a non-empty list of table objects"
            )
        tables = []
        for item in items:
            self._request_seq += 1
            tables.append(self._table_from_json(item, self._request_seq))
        return tables

    @staticmethod
    def _table_from_json(obj: Any, seq: int) -> Table:
        try:
            columns = [
                Column(name=str(column.get("name", "")),
                       cells=[str(cell) for cell in column["cells"]])
                for column in obj["columns"]
            ]
            return Table(table_id=str(obj.get("table_id", f"req-{seq}")),
                         columns=columns)
        except (KeyError, TypeError, AttributeError) as error:
            raise ValueError(
                "malformed table payload: expected "
                '{"table_id": ..., "columns": [{"name": ..., "cells": [...]}]}'
            ) from error

    def _annotate_blocking(self, tables: list[Table],
                           budget_s: float | None) -> list[list[str]]:
        """The batcher's thread-side hook (split out for fakes/tests)."""
        if budget_s is None:
            return self.service.annotate_batch(tables)
        return self.service.annotate_batch(tables, budget_s=budget_s)

    @staticmethod
    def _silence(future: asyncio.Future) -> None:
        """Consume an abandoned future's eventual exception, if any."""
        def _consume(resolved: asyncio.Future) -> None:
            if not resolved.cancelled():
                resolved.exception()
        future.add_done_callback(_consume)

    def _error_response(self, error: BaseException) -> HttpResponse:
        status = status_for(error)
        headers = {}
        if status == 503:
            headers["retry-after"] = f"{self.config.retry_after_s:g}"
        return HttpResponse.from_json(
            {"error": type(error).__name__, "detail": str(error)},
            status=status, headers=headers,
        )

    # ------------------------------------------------------------------ #
    # GET /healthz, /stats, /metrics
    # ------------------------------------------------------------------ #
    def _healthz_endpoint(self) -> HttpResponse:
        health = self.service.health()
        payload = health.to_dict()
        payload["gateway"] = self._state
        serving = self._state == "serving" and payload["status"] != "failed"
        return HttpResponse.from_json(payload, status=200 if serving else 503)

    def stats(self) -> dict:
        """The gateway-side counters as one JSON-safe dict."""
        counters = self._counters
        queue = self._queue
        batcher = self._batcher
        payload = {
            "state": self._state,
            "uptime_seconds": round(time.monotonic() - counters.started_at, 3),
            "requests": counters.requests,
            "completed": counters.completed,
            "errors": counters.errors,
            "rejected_draining": counters.rejected_draining,
            "expired_at_admission": counters.expired_at_admission,
            "expired_in_flight": counters.expired_in_flight,
            "queue_depth": queue.depth if queue is not None else 0,
            "admitted": queue.admitted if queue is not None else 0,
            "shed_queue_full": queue.shed_queue_full if queue is not None else 0,
            "shed_expired": queue.shed_expired if queue is not None else 0,
        }
        if batcher is not None:
            payload.update(batcher.stats())
        return payload

    def _stats_endpoint(self) -> HttpResponse:
        return HttpResponse.from_json({
            "gateway": self.stats(),
            "service": self.service.stats().to_dict(),
        })

    def _metrics_endpoint(self) -> HttpResponse:
        """The same counters in Prometheus text exposition format."""
        lines: list[str] = []

        def emit(prefix: str, payload: dict) -> None:
            for name, value in sorted(payload.items()):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                lines.append(f"# TYPE {prefix}_{name} gauge")
                lines.append(f"{prefix}_{name} {value:g}")

        emit("kglink_gateway", self.stats())
        emit("kglink_service", self.service.stats().to_dict())
        return HttpResponse.from_text(
            "\n".join(lines) + "\n",
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
