"""Figure 8 — sensitivity and training trajectories of the loss uncertainties.

Panel (a): KGLink trained on SemTab with *fixed* loss weights, sweeping
``log sigma_0^2`` (the DMLM-task weight) while ``log sigma_1^2`` is held at 1,
and vice versa; accuracy is reported for each setting.

Panel (b): the trajectories of the *learned* ``log sigma_0^2`` and
``log sigma_1^2`` during adaptive training on both datasets.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import get_fitted_annotator

__all__ = ["run", "DEFAULT_SWEEP"]

DEFAULT_SWEEP: tuple[float, ...] = (0.4, 0.9, 1.4)


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        sweep: tuple[float, ...] = DEFAULT_SWEEP,
        sweep_dataset: str = "semtab",
        trajectory_datasets: tuple[str, ...] = ("semtab", "viznet")) -> ExperimentResult:
    """Run the sigma sensitivity sweep and record the adaptive trajectories."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile

    rows = []
    # Panel (a): fixed-weight sensitivity sweep.
    for value in sweep:
        _, result = get_fitted_annotator(
            resources, profile, "KGLink", sweep_dataset,
            fixed_log_sigma0_sq=value, fixed_log_sigma1_sq=1.0,
        )
        rows.append({
            "panel": "a", "dataset": sweep_dataset, "swept": "log_sigma0_sq",
            "log_sigma0_sq": value, "log_sigma1_sq": 1.0, "accuracy": result.accuracy,
        })
    for value in sweep:
        _, result = get_fitted_annotator(
            resources, profile, "KGLink", sweep_dataset,
            fixed_log_sigma0_sq=1.0, fixed_log_sigma1_sq=value,
        )
        rows.append({
            "panel": "a", "dataset": sweep_dataset, "swept": "log_sigma1_sq",
            "log_sigma0_sq": 1.0, "log_sigma1_sq": value, "accuracy": result.accuracy,
        })

    # Panel (b): adaptive trajectories from the regular KGLink runs.
    for dataset in trajectory_datasets:
        annotator, _ = get_fitted_annotator(resources, profile, "KGLink", dataset)
        history = annotator.history
        if history is None or not history.sigma0_trajectory:
            continue
        steps = len(history.sigma0_trajectory)
        checkpoints = sorted({0, steps // 4, steps // 2, (3 * steps) // 4, steps - 1})
        for step in checkpoints:
            rows.append({
                "panel": "b", "dataset": dataset, "swept": "trajectory",
                "step": step,
                "log_sigma0_sq": history.sigma0_trajectory[step],
                "log_sigma1_sq": history.sigma1_trajectory[step],
            })

    return ExperimentResult(
        name="figure8_sigma_analysis",
        description="Sensitivity and training curves of log sigma^2 (paper Figure 8)",
        rows=rows,
        paper_reference=[],
        notes=(
            "Paper Figure 8(a) reports accuracy between roughly 84.5 and 87 on SemTab as the "
            "fixed weights vary, with higher sensitivity to sigma_0 (the representation-"
            "generation weight) than to sigma_1.  Figure 8(b) shows both uncertainties being "
            "optimised during training, converging to a smaller sigma_0 on VizNet than on "
            "SemTab.  The rows with panel='a' reproduce the sweep; panel='b' samples the "
            "learned trajectories at a few checkpoints."
        ),
    )
