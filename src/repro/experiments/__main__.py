"""Command-line entry point: ``python -m repro.experiments <experiment> [options]``."""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    figure7,
    figure8,
    figure9,
    figure10,
    qualitative,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.config import PROFILES, load_resources

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "qualitative": qualitative.run,
}

#: Order in which ``all`` runs the experiments: Table I first so its fitted
#: models are reused by the runtime / ablation experiments.
ALL_ORDER = (
    "table1", "table3", "figure7", "table2", "table5", "table4",
    "figure10", "figure8", "qualitative", "figure9",
)


def main(argv: list[str] | None = None) -> int:
    """Run one experiment (or all of them) and print/save the reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the KGLink paper.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--profile", default="default",
                        choices=[name for name in PROFILES if name != "paper"],
                        help="experiment profile (corpus size, epochs, ...)")
    parser.add_argument("--output-dir", default=None,
                        help="directory to write JSON reports to (optional)")
    args = parser.parse_args(argv)

    resources = load_resources(args.profile)
    names = list(ALL_ORDER) if args.experiment == "all" else [args.experiment]

    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](resources=resources, profile=args.profile)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
        if args.output_dir:
            path = result.save(Path(args.output_dir))
            print(f"saved {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
