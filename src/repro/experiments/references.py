"""Paper-reported numbers, transcribed from the tables and figures of the paper.

These values are only used for side-by-side reporting; no experiment reads
them as inputs.  Accuracy / weighted-F1 values are percentages; Figure 7 times
are hours on the authors' hardware.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_REFERENCE",
    "TABLE2_REFERENCE",
    "TABLE3_REFERENCE",
    "TABLE4_REFERENCE",
    "TABLE5_REFERENCE",
    "FIGURE7_REFERENCE",
    "FIGURE9_REFERENCE_NOTE",
    "FIGURE10_REFERENCE_NOTE",
]

TABLE1_REFERENCE = [
    {"dataset": "semtab", "model": "MTab", "accuracy": 89.10, "weighted_f1": None},
    {"dataset": "semtab", "model": "TaBERT", "accuracy": 72.69, "weighted_f1": 71.21},
    {"dataset": "semtab", "model": "Doduo", "accuracy": 84.06, "weighted_f1": 82.43},
    {"dataset": "semtab", "model": "HNN", "accuracy": 66.54, "weighted_f1": 65.12},
    {"dataset": "semtab", "model": "Sudowoodo", "accuracy": 79.34, "weighted_f1": 79.24},
    {"dataset": "semtab", "model": "RECA", "accuracy": 86.12, "weighted_f1": 84.91},
    {"dataset": "semtab", "model": "KGLink", "accuracy": 87.12, "weighted_f1": 85.78},
    {"dataset": "viznet", "model": "MTab", "accuracy": 38.21, "weighted_f1": None},
    {"dataset": "viznet", "model": "TaBERT", "accuracy": 94.68, "weighted_f1": 94.07},
    {"dataset": "viznet", "model": "Doduo", "accuracy": 95.40, "weighted_f1": 95.06},
    {"dataset": "viznet", "model": "HNN", "accuracy": 66.89, "weighted_f1": 68.82},
    {"dataset": "viznet", "model": "Sudowoodo", "accuracy": 91.57, "weighted_f1": 91.08},
    {"dataset": "viznet", "model": "RECA", "accuracy": 93.25, "weighted_f1": 93.18},
    {"dataset": "viznet", "model": "KGLink", "accuracy": 96.28, "weighted_f1": 96.07},
]

TABLE2_REFERENCE = [
    {"variant": "KGLink w/o msk", "semtab_accuracy": 86.14, "semtab_f1": 84.54,
     "viznet_accuracy": 95.95, "viznet_f1": 95.67},
    {"variant": "KGLink w/o ct", "semtab_accuracy": 86.27, "semtab_f1": 84.56,
     "viznet_accuracy": 95.83, "viznet_f1": 95.48},
    {"variant": "KGLink w/o fv", "semtab_accuracy": 87.02, "semtab_f1": 85.68,
     "viznet_accuracy": 95.98, "viznet_f1": 95.70},
    {"variant": "KGLink DeBERTa", "semtab_accuracy": 87.24, "semtab_f1": 85.81,
     "viznet_accuracy": 96.98, "viznet_f1": 96.37},
    {"variant": "KGLink", "semtab_accuracy": 87.12, "semtab_f1": 85.78,
     "viznet_accuracy": 96.28, "viznet_f1": 96.07},
]

TABLE3_REFERENCE = [
    {"dataset": "semtab", "numeric_columns": 0, "numeric_pct": 0.0,
     "non_numeric_without_feature_vector": 0, "without_fv_pct": 0.0,
     "non_numeric_without_candidate_type": 1144, "without_ct_pct": 15.1,
     "total_columns": 7587},
    {"dataset": "viznet", "numeric_columns": 9489, "numeric_pct": 12.8,
     "non_numeric_without_feature_vector": 9278, "without_fv_pct": 12.5,
     "non_numeric_without_candidate_type": 55374, "without_ct_pct": 74.7,
     "total_columns": 74141},
]

TABLE4_REFERENCE = [
    {"model": "KGLink", "numeric_accuracy": 97.04, "non_numeric_accuracy": 90.92},
    {"model": "HNN", "numeric_accuracy": 44.05, "non_numeric_accuracy": 18.37},
    {"model": "TaBERT", "numeric_accuracy": 96.57, "non_numeric_accuracy": 90.27},
    {"model": "Doduo", "numeric_accuracy": 96.28, "non_numeric_accuracy": 89.50},
    {"model": "RECA", "numeric_accuracy": 96.89, "non_numeric_accuracy": 61.54},
    {"model": "Sudowoodo", "numeric_accuracy": 96.21, "non_numeric_accuracy": 67.72},
]

TABLE5_REFERENCE = [
    {"filter": "our top-k row filter", "semtab_accuracy": 87.12, "semtab_f1": 85.78,
     "viznet_accuracy": 96.28, "viznet_f1": 96.07},
    {"filter": "original top-k rows", "semtab_accuracy": 85.93, "semtab_f1": 84.39,
     "viznet_accuracy": 96.14, "viznet_f1": 95.97},
]

FIGURE7_REFERENCE = [
    {"model": "Sudowoodo", "train_hours": 1.09, "inference_hours": 0.13},
    {"model": "HNN", "train_hours": 16.45, "inference_hours": 1.13},
    {"model": "Doduo", "train_hours": 1.96, "inference_hours": 0.07},
    {"model": "RECA", "train_hours": 80.00, "inference_hours": 9.00},
    {"model": "TaBERT", "train_hours": 23.45, "inference_hours": 0.17},
    {"model": "KGLink", "train_hours": 16.50, "inference_hours": 1.53},
    {"model": "MTab", "train_hours": 3.17, "inference_hours": None},
]

FIGURE9_REFERENCE_NOTE = (
    "Paper Figure 9 (VizNet): both curves rise from roughly 92-93 weighted F1 at p=0.2 "
    "to roughly 96 at p=1.0, with KGLink above KGLink w/o msk and the gap widening as p "
    "grows (the multi-task component needs enough data to help)."
)

FIGURE10_REFERENCE_NOTE = (
    "Paper Figure 10: weighted F1 peaks at k=25 on both datasets (larger k adds noise, "
    "smaller k loses evidence) while the time cost grows monotonically with k."
)
