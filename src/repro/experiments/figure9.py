"""Figure 9 — data efficiency: performance with a reduced training proportion p.

For each ``p`` the training corpus is sub-sampled to ``p`` of its tables while
the validation and test splits stay fixed, and both KGLink and KGLink w/o msk
are trained from scratch.
"""

from __future__ import annotations

from repro.core.annotator import KGLinkAnnotator
from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import FIGURE9_REFERENCE_NOTE
from repro.experiments.reporting import ExperimentResult

__all__ = ["run", "DEFAULT_PROPORTIONS"]

DEFAULT_PROPORTIONS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        dataset: str = "viznet",
        proportions: tuple[float, ...] = DEFAULT_PROPORTIONS) -> ExperimentResult:
    """Train KGLink and KGLink w/o msk at several training-set proportions."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile
    splits = resources.splits(dataset)

    rows = []
    for proportion in proportions:
        reduced = splits.subsample_train(proportion, seed=profile.seed + 31)
        validation = reduced.validation if len(reduced.validation.tables) else None
        for variant, overrides in (("KGLink", {}), ("KGLink w/o msk", {"use_mask_task": False})):
            annotator = KGLinkAnnotator(
                resources.world.graph,
                profile.kglink_config(**overrides),
                linker=resources.linker,
            )
            annotator.fit(reduced.train, validation)
            result = annotator.evaluate(reduced.test)
            rows.append({
                "dataset": dataset,
                "proportion": proportion,
                "variant": variant,
                "accuracy": result.accuracy,
                "weighted_f1": result.weighted_f1,
                "train_tables": len(reduced.train.tables),
            })

    return ExperimentResult(
        name="figure9_data_efficiency",
        description="Weighted F1 / accuracy of KGLink vs KGLink w/o msk with varying p (Figure 9)",
        rows=rows,
        paper_reference=[],
        notes=FIGURE9_REFERENCE_NOTE,
    )
