"""Result containers and plain-text rendering for the experiment runners."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths, strict=True))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)) for line in table
    )
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """Rows produced by one experiment runner plus the paper's reference values."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)
    paper_reference: list[dict] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        """Human-readable report: measured rows, then the paper's numbers."""
        parts = [f"== {self.name} — {self.description} ==", "", "Measured (this reproduction):",
                 format_table(self.rows)]
        if self.paper_reference:
            parts.extend(["", "Paper-reported reference:", format_table(self.paper_reference)])
        if self.notes:
            parts.extend(["", f"Notes: {self.notes}"])
        return "\n".join(parts)

    def to_json(self) -> str:
        """Serialise the result (rows, reference, notes) as JSON."""
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "rows": self.rows,
                "paper_reference": self.paper_reference,
                "notes": self.notes,
            },
            indent=2,
        )

    def save(self, directory: str | Path) -> Path:
        """Write the JSON report to ``directory/<name>.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        path.write_text(self.to_json())
        return path
