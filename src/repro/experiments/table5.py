"""Table V — comparison of the row-filter mechanisms.

``our top-k row filter`` sorts rows by their linking score before keeping the
first ``k``; ``original top-k rows`` keeps the table's first ``k`` rows in
their original order.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import TABLE5_REFERENCE
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import get_fitted_annotator

__all__ = ["run"]

FILTERS = {
    "our top-k row filter": {"row_filter": "linkage"},
    "original top-k rows": {"row_filter": "original"},
}


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        datasets: tuple[str, ...] = ("semtab", "viznet")) -> ExperimentResult:
    """Fit KGLink with both row-filter mechanisms on every dataset (paper Table V)."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile

    rows = []
    for filter_name, overrides in FILTERS.items():
        row: dict = {"filter": filter_name}
        for dataset in datasets:
            _, result = get_fitted_annotator(resources, profile, "KGLink", dataset, **overrides)
            row[f"{dataset}_accuracy"] = result.accuracy
            row[f"{dataset}_f1"] = result.weighted_f1
        rows.append(row)

    return ExperimentResult(
        name="table5_row_filter",
        description="Performance comparison of table row filters (paper Table V)",
        rows=rows,
        paper_reference=TABLE5_REFERENCE,
        notes=(
            "Shape to preserve: the linking-score row filter is at least as good as taking "
            "the original first k rows, with the larger gain on the KG-rich SemTab corpus."
        ),
    )
