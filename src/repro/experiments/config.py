"""Experiment profiles and shared resources (world, corpora, splits, linker).

Three profiles are provided:

* ``smoke`` — very small corpora and few epochs; used by the test suite and the
  benchmark harness so the whole suite completes in minutes on CPU.
* ``default`` — the profile used to produce the numbers recorded in
  ``EXPERIMENTS.md``; still CPU-friendly but large enough for the relative
  ordering of the methods to be stable.
* ``paper`` — documents the original settings of the paper (BERT-base on a
  V100, 50/20 epochs, the real corpora).  It is not runnable in this offline
  environment and exists so the scaling decisions are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.base import PLMBaselineConfig
from repro.core.annotator import KGLinkConfig
from repro.core.pipeline import Part1Config
from repro.data.corpus import CorpusSplits, TableCorpus, stratified_split
from repro.data.semtab import SemTabConfig, SemTabGenerator
from repro.data.viznet import VizNetConfig, VizNetGenerator
from repro.kg.builder import KGWorld, KGWorldConfig, build_default_kg
from repro.kg.linker import EntityLinker, LinkerConfig

__all__ = ["ExperimentProfile", "SharedResources", "get_profile", "load_resources", "PROFILES"]


@dataclass(frozen=True)
class ExperimentProfile:
    """All scaled-down knobs of one experiment configuration."""

    name: str
    kg_scale: float
    semtab_tables: int
    viznet_tables: int
    epochs: int
    batch_size: int
    learning_rate: float
    pretrain_steps: int
    top_k_rows: int
    hidden_size: int = 64
    num_layers: int = 2
    seed: int = 0
    description: str = ""

    # ------------------------------------------------------------------ #
    def kglink_config(self, **overrides) -> KGLinkConfig:
        """KGLink configuration for this profile (overridable per experiment)."""
        base = KGLinkConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            pretrain_steps=self.pretrain_steps,
            top_k_rows=self.top_k_rows,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            seed=self.seed,
        )
        return replace(base, **overrides) if overrides else base

    def baseline_config(self, **overrides) -> PLMBaselineConfig:
        """Shared PLM-baseline configuration for this profile."""
        base = PLMBaselineConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            pretrain_steps=self.pretrain_steps,
            max_rows=self.top_k_rows,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            seed=self.seed,
        )
        return replace(base, **overrides) if overrides else base

    def part1_config(self, **overrides) -> Part1Config:
        base = Part1Config(top_k_rows=self.top_k_rows)
        return replace(base, **overrides) if overrides else base


PROFILES: dict[str, ExperimentProfile] = {
    "smoke": ExperimentProfile(
        name="smoke",
        kg_scale=0.3,
        semtab_tables=60,
        viznet_tables=90,
        epochs=4,
        batch_size=8,
        learning_rate=1e-3,
        pretrain_steps=10,
        top_k_rows=8,
        description="Tiny profile for tests and benchmark harness smoke runs.",
    ),
    "default": ExperimentProfile(
        name="default",
        kg_scale=0.6,
        semtab_tables=200,
        viznet_tables=400,
        epochs=12,
        batch_size=8,
        learning_rate=1e-3,
        pretrain_steps=40,
        top_k_rows=12,
        description="Profile used for the numbers recorded in EXPERIMENTS.md.",
    ),
    "paper": ExperimentProfile(
        name="paper",
        kg_scale=1.0,
        semtab_tables=3048,
        viznet_tables=32265,
        epochs=50,
        batch_size=16,
        learning_rate=3e-5,
        pretrain_steps=0,
        top_k_rows=25,
        hidden_size=768,
        num_layers=12,
        description=(
            "Documents the paper's original settings (BERT-base, V100, real corpora); "
            "not runnable offline."
        ),
    ),
}


def get_profile(name: str = "default") -> ExperimentProfile:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError as error:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(PROFILES)}") from error


@dataclass
class SharedResources:
    """Everything the experiment runners share for one profile."""

    profile: ExperimentProfile
    world: KGWorld
    linker: EntityLinker
    semtab: TableCorpus
    viznet: TableCorpus
    semtab_splits: CorpusSplits
    viznet_splits: CorpusSplits
    # Cache of fitted models / experiment outputs, keyed by the runners.
    cache: dict = field(default_factory=dict)

    def splits(self, dataset: str) -> CorpusSplits:
        """The train/validation/test splits of ``dataset`` ('semtab' or 'viznet')."""
        if dataset == "semtab":
            return self.semtab_splits
        if dataset == "viznet":
            return self.viznet_splits
        raise KeyError(f"unknown dataset {dataset!r}; expected 'semtab' or 'viznet'")

    def corpus(self, dataset: str) -> TableCorpus:
        if dataset == "semtab":
            return self.semtab
        if dataset == "viznet":
            return self.viznet
        raise KeyError(f"unknown dataset {dataset!r}; expected 'semtab' or 'viznet'")


_RESOURCE_CACHE: dict[str, SharedResources] = {}


def load_resources(profile: ExperimentProfile | str = "default",
                   use_cache: bool = True) -> SharedResources:
    """Build (or reuse) the shared world, corpora and splits for a profile."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    if profile.name == "paper":
        raise RuntimeError(
            "the 'paper' profile documents the original settings and cannot be "
            "materialised offline; use 'default' or 'smoke'"
        )
    if use_cache and profile.name in _RESOURCE_CACHE:
        return _RESOURCE_CACHE[profile.name]

    world = build_default_kg(KGWorldConfig(seed=profile.seed + 7).scaled(profile.kg_scale))
    linker = EntityLinker(world.graph, LinkerConfig(max_candidates=10))
    semtab = SemTabGenerator(
        world, SemTabConfig(num_tables=profile.semtab_tables, seed=profile.seed + 101)
    ).generate()
    viznet = VizNetGenerator(
        world, VizNetConfig(num_tables=profile.viznet_tables, seed=profile.seed + 202)
    ).generate()
    resources = SharedResources(
        profile=profile,
        world=world,
        linker=linker,
        semtab=semtab,
        viznet=viznet,
        semtab_splits=stratified_split(semtab, seed=profile.seed + 13),
        viznet_splits=stratified_split(viznet, seed=profile.seed + 13),
    )
    if use_cache:
        _RESOURCE_CACHE[profile.name] = resources
    return resources
