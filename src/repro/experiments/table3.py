"""Table III — link statistics between the datasets and the knowledge graph."""

from __future__ import annotations

from repro.core.pipeline import KGCandidateExtractor
from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import TABLE3_REFERENCE
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        datasets: tuple[str, ...] = ("semtab", "viznet")) -> ExperimentResult:
    """Compute per-corpus KG-coverage statistics (paper Table III)."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile
    extractor = KGCandidateExtractor(
        resources.world.graph, profile.part1_config(), linker=resources.linker
    )

    rows = []
    for dataset in datasets:
        corpus = resources.corpus(dataset)
        key = ("table3", dataset)
        if key not in resources.cache:
            processed = extractor.process_corpus(corpus.tables)
            resources.cache[key] = extractor.link_statistics(processed)
        stats = resources.cache[key]
        total = max(stats["total_columns"], 1)
        rows.append({
            "dataset": dataset,
            "numeric_columns": stats["numeric_columns"],
            "numeric_pct": 100.0 * stats["numeric_columns"] / total,
            "non_numeric_without_feature_vector": stats["non_numeric_without_feature_vector"],
            "without_fv_pct": 100.0 * stats["non_numeric_without_feature_vector"] / total,
            "non_numeric_without_candidate_type": stats["non_numeric_without_candidate_type"],
            "without_ct_pct": 100.0 * stats["non_numeric_without_candidate_type"] / total,
            "total_columns": stats["total_columns"],
        })

    return ExperimentResult(
        name="table3_link_statistics",
        description="Link statistics between the datasets and the KG (paper Table III)",
        rows=rows,
        paper_reference=TABLE3_REFERENCE,
        notes=(
            "Shape to preserve: SemTab has no numeric columns and near-total KG coverage, "
            "while a large share of VizNet columns are numeric or yield no candidate type, "
            "and the feature vector recovers KG signal for many columns the candidate-type "
            "filter leaves empty."
        ),
    )
