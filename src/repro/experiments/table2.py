"""Table II — ablation study of KGLink's components.

Variants:

* ``KGLink w/o msk`` — no column-type representation generation sub-task;
* ``KGLink w/o ct`` — no KG information at all (no candidate types, no
  feature vector);
* ``KGLink w/o fv`` — candidate types kept, feature vector removed;
* ``KGLink DeBERTa`` — the encoder replaced by the relative-position
  (DeBERTa-style) variant;
* ``KGLink`` — the full model.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import TABLE2_REFERENCE
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import get_fitted_annotator

__all__ = ["VARIANTS", "run"]

#: variant name -> KGLinkConfig overrides
VARIANTS: dict[str, dict] = {
    "KGLink w/o msk": {"use_mask_task": False},
    "KGLink w/o ct": {"use_candidate_types": False, "use_feature_vector": False},
    "KGLink w/o fv": {"use_feature_vector": False},
    "KGLink DeBERTa": {"use_deberta": True},
    "KGLink": {},
}


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        datasets: tuple[str, ...] = ("semtab", "viznet"),
        variants: dict[str, dict] | None = None) -> ExperimentResult:
    """Fit and evaluate every ablation variant on every dataset (paper Table II)."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile
    variants = variants or VARIANTS

    rows = []
    for variant_name, overrides in variants.items():
        row: dict = {"variant": variant_name}
        for dataset in datasets:
            _, result = get_fitted_annotator(
                resources, profile, "KGLink", dataset, **overrides
            )
            row[f"{dataset}_accuracy"] = result.accuracy
            row[f"{dataset}_f1"] = result.weighted_f1
        rows.append(row)

    return ExperimentResult(
        name="table2_ablation",
        description="Ablation study of KGLink components (paper Table II)",
        rows=rows,
        paper_reference=TABLE2_REFERENCE,
        notes=(
            "The expected shape: removing the KG information (w/o ct) or the multi-task "
            "component (w/o msk) costs accuracy, the feature vector matters less than the "
            "candidate types, and the DeBERTa-style encoder is at least as good as BERT."
        ),
    )
