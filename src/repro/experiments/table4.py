"""Table IV — accuracy on test columns with no extracted KG information.

The paper selects, from the VizNet test set, the tables none of whose columns
link to the KG and reports numeric and non-numeric accuracy separately for
each method.  The scaled-down synthetic corpus has much better KG coverage
than the real VizNet crawl, so whole tables with zero linkage are rare; the
selection is therefore done at column granularity with the same intent:

* **numeric columns** — never linked to the KG (the paper's definition);
* **non-numeric columns without KG information** — columns for which Part 1
  produced neither candidate types nor a feature sequence.

Each fitted model predicts the full test corpus once and the metrics are
computed on the selected columns only.
"""

from __future__ import annotations

from repro.core.pipeline import KGCandidateExtractor
from repro.data.metrics import accuracy_score
from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import TABLE4_REFERENCE
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import get_fitted_annotator

__all__ = ["run", "column_kinds"]

MODELS = ("KGLink", "HNN", "TaBERT", "Doduo", "RECA", "Sudowoodo")


def column_kinds(resources: SharedResources, dataset: str = "viznet") -> list[str]:
    """Classify every labelled test column of ``dataset``.

    Returns one entry per labelled column, in the order ``predict_corpus``
    visits them: ``"numeric"``, ``"no_kg_non_numeric"`` (no candidate types and
    no feature sequence) or ``"has_kg"``.
    """
    key = ("table4_kinds", dataset)
    if key in resources.cache:
        return resources.cache[key]
    profile = resources.profile
    extractor = KGCandidateExtractor(
        resources.world.graph, profile.part1_config(), linker=resources.linker
    )
    kinds: list[str] = []
    for table in resources.splits(dataset).test.tables:
        processed = extractor.process_table(table)
        for column, info in zip(table.columns, processed.columns, strict=True):
            if column.label is None:
                continue
            if info.is_numeric:
                kinds.append("numeric")
            elif not info.has_candidate_types and not info.has_feature_sequence:
                kinds.append("no_kg_non_numeric")
            else:
                kinds.append("has_kg")
    resources.cache[key] = kinds
    return kinds


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        dataset: str = "viznet",
        models: tuple[str, ...] = MODELS) -> ExperimentResult:
    """Evaluate every model on the columns with no extracted KG information."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile
    kinds = column_kinds(resources, dataset)
    test = resources.splits(dataset).test

    rows = []
    for model in models:
        annotator, _ = get_fitted_annotator(resources, profile, model, dataset)
        y_true, y_pred = annotator.predict_corpus(test)
        if len(y_true) != len(kinds):
            raise RuntimeError(
                f"prediction/column-kind misalignment for {model}: "
                f"{len(y_true)} predictions vs {len(kinds)} columns"
            )
        numeric = [(t, p) for kind, t, p in zip(kinds, y_true, y_pred, strict=True) if kind == "numeric"]
        no_kg = [(t, p) for kind, t, p in zip(kinds, y_true, y_pred, strict=True)
                 if kind == "no_kg_non_numeric"]
        rows.append({
            "model": model,
            "numeric_accuracy": (
                100.0 * accuracy_score([t for t, _ in numeric], [p for _, p in numeric])
                if numeric else float("nan")
            ),
            "non_numeric_accuracy": (
                100.0 * accuracy_score([t for t, _ in no_kg], [p for _, p in no_kg])
                if no_kg else float("nan")
            ),
            "numeric_columns": len(numeric),
            "non_numeric_columns": len(no_kg),
        })

    return ExperimentResult(
        name="table4_no_kg_information",
        description="Accuracy on test columns with no extracted KG information (paper Table IV)",
        rows=rows,
        paper_reference=TABLE4_REFERENCE,
        notes=(
            "Shape to preserve: the PLM-based methods stay strong on numeric columns even "
            "without KG signal (prior knowledge of the encoder), HNN collapses, and the "
            "intra-table models (KGLink, Doduo, TaBERT) hold up better than the "
            "single-column models (RECA, Sudowoodo) on the non-numeric columns.  Column "
            "granularity is used instead of whole-table granularity because the synthetic "
            "corpus has denser KG coverage than the real VizNet crawl (see DESIGN.md)."
        ),
    )
