"""Table I — main results: accuracy and weighted F1 of all methods on both corpora."""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import TABLE1_REFERENCE
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import TABLE1_MODELS, get_table1_entry

__all__ = ["run"]


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        models: tuple[str, ...] = TABLE1_MODELS,
        datasets: tuple[str, ...] = ("semtab", "viznet")) -> ExperimentResult:
    """Fit and evaluate every method on every dataset (paper Table I)."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile

    rows = []
    for dataset in datasets:
        for model in models:
            rows.append(get_table1_entry(resources, profile, model, dataset))

    return ExperimentResult(
        name="table1_main_results",
        description="KGLink performance on the SemTab and VizNet datasets (paper Table I)",
        rows=rows,
        paper_reference=TABLE1_REFERENCE,
        notes=(
            "Absolute numbers differ from the paper because both corpora and the PLM are "
            "synthetic, scaled-down substitutes; the comparison of interest is the ordering "
            "of the methods per dataset (MTab strong on SemTab / weakest on VizNet, KGLink "
            "at or near the top on both, HNN far behind the PLM-based methods)."
        ),
    )
