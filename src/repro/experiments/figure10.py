"""Figure 10 — effect of the row-filter size k on quality and time cost."""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import FIGURE10_REFERENCE_NOTE
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import get_fitted_annotator

__all__ = ["run", "DEFAULT_K_VALUES"]

#: ``None`` stands for the paper's "all" setting (keep every row up to the
#: encoder's budget).
DEFAULT_K_VALUES: tuple[int | None, ...] = (4, 8, 16, None)


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        datasets: tuple[str, ...] = ("semtab", "viznet"),
        k_values: tuple[int | None, ...] = DEFAULT_K_VALUES) -> ExperimentResult:
    """Train KGLink with several row-filter sizes and record F1 and time (Figure 10).

    The k values are scaled with the corpora (the paper uses 10/25/50/all on
    tables with ~69 rows; the synthetic tables have ~6-24 rows).
    """
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile

    rows = []
    for dataset in datasets:
        max_rows = max(table.n_rows for table in resources.corpus(dataset).tables)
        for k in k_values:
            effective_k = k if k is not None else max_rows
            annotator, result = get_fitted_annotator(
                resources, profile, "KGLink", dataset, top_k_rows=effective_k,
            )
            rows.append({
                "dataset": dataset,
                "k": "all" if k is None else k,
                "weighted_f1": result.weighted_f1,
                "accuracy": result.accuracy,
                "train_seconds": annotator.fit_seconds,
            })

    return ExperimentResult(
        name="figure10_topk_rows",
        description="Weighted F1 and time cost of KGLink with varying k (paper Figure 10)",
        rows=rows,
        paper_reference=[],
        notes=FIGURE10_REFERENCE_NOTE,
    )
