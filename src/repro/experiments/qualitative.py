"""Qualitative evaluation (paper Section V-D).

Compares per-class accuracy of KGLink with and without the column-type
representation generation sub-task and reports the classes that gain the most,
mirroring the paper's discussion of *Athlete*, *Protein* and *Film* on SemTab
and *Artist*, *Year* and *Rank* on VizNet.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import get_fitted_annotator

__all__ = ["run"]


def _per_class_accuracy(y_true: list[str], y_pred: list[str]) -> dict[str, tuple[float, int]]:
    totals: dict[str, int] = defaultdict(int)
    correct: dict[str, int] = defaultdict(int)
    for truth, pred in zip(y_true, y_pred, strict=True):
        totals[truth] += 1
        if truth == pred:
            correct[truth] += 1
    return {label: (100.0 * correct[label] / totals[label], totals[label]) for label in totals}


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        datasets: tuple[str, ...] = ("semtab", "viznet"),
        min_support: int = 5,
        top_n: int = 3) -> ExperimentResult:
    """Per-class accuracy gains from the representation-generation sub-task."""
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile

    rows = []
    for dataset in datasets:
        test = resources.splits(dataset).test
        full, _ = get_fitted_annotator(resources, profile, "KGLink", dataset)
        ablated, _ = get_fitted_annotator(
            resources, profile, "KGLink", dataset, use_mask_task=False
        )
        y_true_full, y_pred_full = full.predict_corpus(test)
        y_true_abl, y_pred_abl = ablated.predict_corpus(test)
        full_acc = _per_class_accuracy(y_true_full, y_pred_full)
        ablated_acc = _per_class_accuracy(y_true_abl, y_pred_abl)

        deltas = []
        for label, (accuracy, support) in full_acc.items():
            if support < min_support or label not in ablated_acc:
                continue
            deltas.append((accuracy - ablated_acc[label][0], label, accuracy, support))
        deltas.sort(key=lambda item: -item[0])
        for delta, label, accuracy, support in deltas[:top_n]:
            rows.append({
                "dataset": dataset,
                "class": label,
                "accuracy_with_msk": accuracy,
                "accuracy_without_msk": accuracy - delta,
                "delta": delta,
                "support": support,
            })

    return ExperimentResult(
        name="qualitative_per_class_gains",
        description="Classes gaining the most from the representation-generation task (§V-D)",
        rows=rows,
        paper_reference=[],
        notes=(
            "Paper: on SemTab the top-3 improved classes are Athlete, Protein and Film "
            "(average +9.70 accuracy); on VizNet they are Artist, Year and Rank "
            "(average +3.18).  The shape to preserve is that classes suffering from the "
            "type-granularity gap (athlete-like and artist-like classes) and numeric "
            "classes are among the main beneficiaries."
        ),
    )
