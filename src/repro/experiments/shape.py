"""Shape comparison between measured results and the paper's reported numbers.

The reproduction is judged on *shape* rather than absolute values: does the
ordering of the methods match the paper, do ablations fall on the same side,
where do curves peak.  This module quantifies the first of those questions:

* :func:`pairwise_order_agreement` — the fraction of method pairs that are
  ordered the same way in the measured rows as in the reference rows (a
  normalised Kendall-tau-style score in ``[0, 1]``);
* :func:`ordering_report` — per-group (e.g. per-dataset) agreement for result
  tables such as Table I, including the list of disagreeing pairs so the
  discussion in EXPERIMENTS.md can name them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from collections.abc import Mapping, Sequence

__all__ = ["PairwiseAgreement", "pairwise_order_agreement", "ordering_report"]


@dataclass
class PairwiseAgreement:
    """Agreement between two orderings of the same items."""

    agreements: int
    comparisons: int
    disagreeing_pairs: list[tuple[str, str]] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Fraction of pairs ordered identically (1.0 when every pair agrees)."""
        return self.agreements / self.comparisons if self.comparisons else 1.0


def _value_map(rows: Sequence[Mapping[str, object]], key: str, value: str) -> dict[str, float]:
    mapping: dict[str, float] = {}
    for row in rows:
        item = row.get(key)
        score = row.get(value)
        if item is None or score is None:
            continue
        try:
            mapping[str(item)] = float(score)
        except (TypeError, ValueError):
            continue
    return mapping


def pairwise_order_agreement(
    measured: Sequence[Mapping[str, object]],
    reference: Sequence[Mapping[str, object]],
    key: str = "model",
    value: str = "accuracy",
) -> PairwiseAgreement:
    """Compare the ordering of items (by ``value``) between two row lists.

    Only items present in both lists with a numeric value participate.  Ties in
    either list count as agreement when the other list also has a tie or a
    difference below 0.5 points (measurement noise).
    """
    measured_values = _value_map(measured, key, value)
    reference_values = _value_map(reference, key, value)
    shared = sorted(set(measured_values) & set(reference_values))

    agreements = 0
    comparisons = 0
    disagreeing: list[tuple[str, str]] = []
    for left, right in combinations(shared, 2):
        measured_delta = measured_values[left] - measured_values[right]
        reference_delta = reference_values[left] - reference_values[right]
        comparisons += 1
        if abs(measured_delta) < 0.5 or abs(reference_delta) < 0.5:
            agreements += 1
        elif (measured_delta > 0) == (reference_delta > 0):
            agreements += 1
        else:
            disagreeing.append((left, right))
    return PairwiseAgreement(agreements=agreements, comparisons=comparisons,
                             disagreeing_pairs=disagreeing)


def ordering_report(
    measured: Sequence[Mapping[str, object]],
    reference: Sequence[Mapping[str, object]],
    group_key: str = "dataset",
    item_key: str = "model",
    value: str = "accuracy",
) -> dict[str, PairwiseAgreement]:
    """Per-group pairwise ordering agreement (e.g. per dataset for Table I)."""
    groups = sorted(
        {str(row[group_key]) for row in measured if group_key in row}
        & {str(row[group_key]) for row in reference if group_key in row}
    )
    report: dict[str, PairwiseAgreement] = {}
    for group in groups:
        measured_group = [row for row in measured if str(row.get(group_key)) == group]
        reference_group = [row for row in reference if str(row.get(group_key)) == group]
        report[group] = pairwise_order_agreement(
            measured_group, reference_group, key=item_key, value=value
        )
    return report
