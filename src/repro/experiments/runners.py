"""Model construction and a fitted-model cache shared by the experiment runners."""

from __future__ import annotations

from repro.baselines import (
    DoduoAnnotator,
    HNNAnnotator,
    MTabAnnotator,
    RECAAnnotator,
    SherlockAnnotator,
    SudowoodoAnnotator,
    TaBERTAnnotator,
)
from repro.core.annotator import KGLinkAnnotator
from repro.data.metrics import EvaluationResult
from repro.experiments.config import ExperimentProfile, SharedResources

__all__ = [
    "TABLE1_MODELS",
    "build_annotator",
    "fit_and_evaluate",
    "get_fitted_annotator",
    "get_table1_entry",
]

#: The methods of Table I, in the paper's row order.
TABLE1_MODELS: tuple[str, ...] = (
    "MTab", "TaBERT", "Doduo", "HNN", "Sudowoodo", "RECA", "KGLink",
)

#: Methods that serialise a whole table per training example.  They take one
#: optimisation step per *table* while the single-column methods take one per
#: *column*, i.e. roughly 3-4x more steps per epoch on the same corpus.  To
#: give every method a comparable optimisation-step budget (the paper trains
#: all PLM baselines "with the same experimental settings as KGLink" to
#: convergence), the multi-column methods get twice the profile's epochs.
MULTI_COLUMN_MODELS: frozenset[str] = frozenset({"KGLink", "Doduo", "TaBERT"})
MULTI_COLUMN_EPOCH_MULTIPLIER: int = 2


def build_annotator(name: str, resources: SharedResources, profile: ExperimentProfile,
                    **kglink_overrides):
    """Instantiate an annotator by method name with the profile's settings."""
    graph = resources.world.graph
    boosted_epochs = profile.epochs * MULTI_COLUMN_EPOCH_MULTIPLIER
    if name == "KGLink":
        kglink_overrides.setdefault("epochs", boosted_epochs)
        return KGLinkAnnotator(
            graph, profile.kglink_config(**kglink_overrides), linker=resources.linker
        )
    if kglink_overrides:
        raise ValueError(f"configuration overrides are only supported for KGLink, not {name}")
    if name == "MTab":
        return MTabAnnotator(graph, profile.part1_config(), linker=resources.linker)
    if name == "HNN":
        return HNNAnnotator(graph, linker=resources.linker)
    if name == "Sherlock":
        return SherlockAnnotator()
    if name in MULTI_COLUMN_MODELS:
        baseline_config = profile.baseline_config(epochs=boosted_epochs)
    else:
        baseline_config = profile.baseline_config()
    if name == "TaBERT":
        return TaBERTAnnotator(baseline_config)
    if name == "Doduo":
        return DoduoAnnotator(baseline_config)
    if name == "Sudowoodo":
        return SudowoodoAnnotator(baseline_config)
    if name == "RECA":
        return RECAAnnotator(baseline_config)
    raise KeyError(f"unknown annotator {name!r}")


def fit_and_evaluate(annotator, resources: SharedResources, dataset: str
                     ) -> tuple[EvaluationResult, object]:
    """Fit ``annotator`` on a dataset's train/validation splits and evaluate on test."""
    splits = resources.splits(dataset)
    validation = splits.validation if len(splits.validation.tables) else None
    annotator.fit(splits.train, validation)
    result = annotator.evaluate(splits.test)
    return result, annotator


def get_fitted_annotator(resources: SharedResources, profile: ExperimentProfile,
                         name: str, dataset: str, **kglink_overrides):
    """Return a fitted annotator, reusing the per-resources cache when possible."""
    key = ("fitted", name, dataset, tuple(sorted(kglink_overrides.items())))
    if key not in resources.cache:
        annotator = build_annotator(name, resources, profile, **kglink_overrides)
        result, annotator = fit_and_evaluate(annotator, resources, dataset)
        resources.cache[key] = (annotator, result)
    return resources.cache[key]


def get_table1_entry(resources: SharedResources, profile: ExperimentProfile,
                     name: str, dataset: str) -> dict:
    """One measured row of Table I (also populates the fitted-model cache)."""
    annotator, result = get_fitted_annotator(resources, profile, name, dataset)
    return {
        "dataset": dataset,
        "model": name,
        "accuracy": result.accuracy,
        "weighted_f1": result.weighted_f1,
        "train_seconds": getattr(annotator, "fit_seconds", 0.0),
        "inference_seconds": getattr(annotator, "inference_seconds", 0.0),
    }
