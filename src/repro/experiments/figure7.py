"""Figure 7 — training and inference time of every method on the VizNet corpus."""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, SharedResources, load_resources
from repro.experiments.references import FIGURE7_REFERENCE
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runners import TABLE1_MODELS, get_fitted_annotator

__all__ = ["run"]


def run(resources: SharedResources | None = None,
        profile: ExperimentProfile | str = "default",
        dataset: str = "viznet",
        models: tuple[str, ...] = TABLE1_MODELS) -> ExperimentResult:
    """Measure wall-clock training and inference time per method (paper Figure 7).

    Reuses the fitted-model cache, so running Table I first makes this free.
    """
    if resources is None:
        resources = load_resources(profile)
    profile = resources.profile

    rows = []
    for model in models:
        annotator, _ = get_fitted_annotator(resources, profile, model, dataset)
        rows.append({
            "model": model,
            "train_seconds": getattr(annotator, "fit_seconds", 0.0),
            "inference_seconds": getattr(annotator, "inference_seconds", 0.0),
        })

    return ExperimentResult(
        name="figure7_runtime",
        description="Training / inference time per method on VizNet (paper Figure 7)",
        rows=rows,
        paper_reference=FIGURE7_REFERENCE,
        notes=(
            "Absolute times are seconds on CPU with the scaled-down corpora (the paper "
            "reports hours on a V100 with the full corpora).  The shape to preserve: RECA "
            "pays a large related-table search cost, the purely statistical MTab and the "
            "light single-column models are cheapest, and KGLink's KG processing adds a "
            "moderate overhead over Doduo."
        ),
    )
