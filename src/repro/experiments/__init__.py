"""Experiment runners regenerating every table and figure of the paper.

Each module exposes a ``run(resources, profile)`` function returning an
:class:`~repro.experiments.reporting.ExperimentResult` whose rows mirror the
corresponding table/figure of the paper, next to the paper-reported reference
values.  ``python -m repro.experiments <experiment> [--profile smoke|default]``
runs one experiment from the command line; ``all`` runs the full suite and
writes a combined report.

| Experiment   | Paper content                                            |
|--------------|----------------------------------------------------------|
| ``table1``   | Main results (accuracy / weighted F1, 7 methods, 2 sets)  |
| ``table2``   | Ablation study of KGLink components                       |
| ``table3``   | Link statistics between the datasets and the KG           |
| ``table4``   | Accuracy on test columns with no extracted KG information |
| ``table5``   | Row-filter mechanism comparison                           |
| ``figure7``  | Training / inference time per method                      |
| ``figure8``  | Sensitivity and trajectories of the loss uncertainties    |
| ``figure9``  | Data efficiency (varying training proportion p)           |
| ``figure10`` | Effect of the row-filter size k                           |
| ``qualitative`` | Per-class gains from the representation-generation task |
"""

from repro.experiments.config import (
    ExperimentProfile,
    SharedResources,
    get_profile,
    load_resources,
)
from repro.experiments.reporting import ExperimentResult, format_table
from repro.experiments.shape import ordering_report, pairwise_order_agreement

__all__ = [
    "ordering_report",
    "pairwise_order_agreement",
    "ExperimentProfile",
    "SharedResources",
    "get_profile",
    "load_resources",
    "ExperimentResult",
    "format_table",
]
