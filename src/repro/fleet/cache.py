"""Shared results cache: one table annotated once, whoever asked first.

Replicas are deterministic over the same bundle, so two requests carrying
the same table must produce the same predictions — dispatching both wastes
a replica's time.  :class:`SharedResultsCache` sits in the router, in front
of the whole fleet, and collapses that duplication two ways:

* a **bounded LRU** of finished results (``table_key`` → predictions),
  built on :class:`repro.core.cache.LRUCache` — a repeat table is answered
  from memory without touching a replica;
* **single-flight de-duplication** for concurrent misses: the first request
  for a key becomes the *lead* and dispatches; later requests for the same
  key *join* the in-flight computation and wait (with their own deadlines)
  for the lead to publish, instead of dispatching duplicates.

Keys come from :func:`table_key` — a content digest over the table's id,
column names and cells, so "the same table" means the same bytes of input,
not object identity.

Counters (hits / misses / coalesced / evictions, plus current size) feed
the router's ``stats()`` and the gateway's ``/stats`` and ``/metrics``
endpoints, prefixed ``results_cache_*``.

A failed lead publishes its error to joiners (each re-raises it) and
clears the flight, so the next request for that key starts a fresh lead —
a transient replica failure never wedges a key permanently.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.core.cache import LRUCache
from repro.core.errors import DeadlineExceeded

__all__ = ["table_key", "Flight", "SharedResultsCache"]

_MISSING = object()


def table_key(table: Any) -> str:
    """Content digest of a table: same bytes in, same key out.

    Accepts both shapes that reach the router: parsed
    :class:`~repro.data.table.Table` objects (what the gateway hands its
    service) and the wire-shaped mapping (``table_id`` / ``columns`` with
    ``name`` and ``cells``).  Anything else degrades to a digest of its
    ``repr``.  Collisions are SHA-256-hard; identity is *content*, so a
    re-sent table hits regardless of which request object carried it.
    """
    digest = hashlib.sha256()

    def _column(name: Any, cells: Any) -> None:
        digest.update(b"\x00col\x00")
        digest.update(repr(name).encode())
        for cell in cells:
            digest.update(b"\x00")
            digest.update(repr(cell).encode())

    columns = getattr(table, "columns", None)
    if columns is not None and hasattr(table, "table_id"):
        digest.update(repr(table.table_id).encode())
        for column in columns:
            _column(getattr(column, "name", ""), getattr(column, "cells", ()))
    elif isinstance(table, dict):
        digest.update(repr(table.get("table_id", "")).encode())
        raw_columns = table.get("columns")
        if isinstance(raw_columns, list):
            for column in raw_columns:
                if isinstance(column, dict):
                    _column(column.get("name", column.get("header", "")),
                            column.get("cells", ()))
                else:
                    digest.update(repr(column).encode())
        else:
            for item in sorted(table.items(), key=lambda kv: repr(kv[0])):
                digest.update(repr(item).encode())
    else:
        digest.update(repr(table).encode())
    return digest.hexdigest()


class Flight:
    """One in-flight computation for a key: the lead publishes, joiners wait."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: Any = _MISSING
        self._error: BaseException | None = None

    def publish(self, value: Any) -> None:
        self._value = value
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self, *, deadline_s: float,
             clock: Callable[[], float] = time.monotonic) -> Any:
        """Block until the lead publishes; honours the joiner's own deadline.

        A result that is already published is returned even past the
        deadline — the work is done, discarding it helps no one.
        """
        remaining = deadline_s - clock()
        if not self._done.is_set() and (
            remaining <= 0 or not self._done.wait(timeout=remaining)
        ):
            raise DeadlineExceeded(
                "deadline expired while waiting on an in-flight duplicate table"
            )
        if self._error is not None:
            raise self._error
        return self._value


class SharedResultsCache:
    """Bounded LRU of per-table predictions with single-flight de-dup.

    Thread-safe; shared across every connection the router serves.
    ``maxsize <= 0`` disables the LRU (every lookup leads) but keeps
    single-flight coalescing — concurrent duplicates still collapse.
    """

    def __init__(self, maxsize: int = 4096):
        self._store: LRUCache[str, Any] = LRUCache(maxsize=maxsize)
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._coalesced = 0  # guarded-by: _lock

    @property
    def maxsize(self) -> int:
        return self._store.maxsize

    # ------------------------------------------------------------------ #
    # the single-flight protocol
    # ------------------------------------------------------------------ #
    def begin(self, key: str) -> tuple[str, Any]:
        """Look up ``key``; returns one of three outcomes:

        * ``("hit", value)`` — finished result, use it directly;
        * ``("lead", flight)`` — this caller computes; it must call
          :meth:`complete` or :meth:`fail` with the same flight, always;
        * ``("join", flight)`` — someone is computing; ``flight.wait(...)``
          for their result.
        """
        with self._lock:
            value = self._store.get(key, _MISSING)
            if value is not _MISSING:
                self._hits += 1
                return ("hit", value)
            flight = self._flights.get(key)
            if flight is not None:
                self._coalesced += 1
                return ("join", flight)
            flight = Flight()
            self._flights[key] = flight
            self._misses += 1
            return ("lead", flight)

    def complete(self, key: str, flight: Flight, value: Any) -> None:
        """Lead's success path: store the result and wake the joiners."""
        with self._lock:
            self._store.put(key, value)
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.publish(value)

    def fail(self, key: str, flight: Flight, error: BaseException) -> None:
        """Lead's failure path: propagate to joiners, clear the flight so the
        next request for this key starts fresh."""
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.fail(error)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int]:
        info = self._store.cache_info()
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "coalesced": self._coalesced,
                "evictions": info.evictions,
                "size": info.currsize,
                "maxsize": max(info.maxsize, 0),
            }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._flights.clear()
