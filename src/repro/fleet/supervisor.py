"""The replica supervisor: spawn N workers, heartbeat them, respawn the dead.

:class:`ReplicaSupervisor` owns the fleet's process (or thread) lifecycle so
the router can stay a pure dispatcher:

* ``start()`` launches one replica per slot through the injected *launcher*
  and waits for each to report ready;
* a monitor thread heartbeats every live replica on the wire
  (:func:`repro.fleet.wire.ping`) against **monotonic deadlines** — a
  replica that misses its heartbeat (or whose handle reports dead) is
  respawned with **bounded restarts**, spaced by the
  :class:`~repro.runtime.resilience.Backoff` schedule of the fleet's
  :class:`~repro.runtime.RuntimePolicy` (the exact machinery the retry
  engine uses).  A slot that exhausts ``max_restarts`` is marked ``failed``
  and left down — a crash loop must not become a fork bomb;
* heartbeats double as health polls: the ping response carries the
  replica's own ``health()`` snapshot, which the supervisor caches per slot
  so the router's ``health()`` (called on the gateway's event loop) never
  does wire I/O;
* ``stop()`` drains the fleet: each handle gets a graceful ``terminate()``
  (SIGTERM for process replicas — the replica answers in-flight requests,
  then closes its service), then a bounded ``join``, then ``kill()`` for
  stragglers.

Launchers adapt the supervisor to a deployment:

* :class:`ProcessLauncher` — real worker processes via ``multiprocessing``,
  each running :func:`repro.serve.replica.run_replica` over a shared bundle
  directory.  This is what ``python -m repro.fleet`` and the benchmark use;
* :class:`ThreadLauncher` — in-process replicas (a real
  :class:`~repro.serve.replica.ReplicaServer` on a daemon thread, real
  loopback sockets) for tests and demos.  Its handles expose ``crash()``,
  which slams the replica's sockets shut — worker death without killing a
  process, so the chaos suite runs fast and deterministically.

Restart accounting is explicit and must balance: ``spawned`` counts every
successful launch, so ``spawned == replicas + restarts`` whenever every
respawn succeeded — the fleet chaos suite pins exactly this.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from collections.abc import Callable
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.errors import ServingError, WorkerCrashed
from repro.fleet import wire
from repro.runtime.resilience import Backoff, RuntimePolicy

if TYPE_CHECKING:  # runtime import would cycle: replica.py imports fleet.wire
    from repro.serve.replica import ReplicaServer

__all__ = [
    "FleetMember",
    "ReplicaHandle",
    "ProcessLauncher",
    "ThreadLauncher",
    "ReplicaSupervisor",
]


@dataclass(frozen=True)
class FleetMember:
    """One slot's public snapshot (what the router sees)."""

    name: str
    state: str  # "up" | "down" | "failed" | "stopped"
    address: tuple[str, int] | None
    restarts: int
    generation: int
    last_health: dict | None = None


class ReplicaHandle:
    """What a launcher returns: the supervisor's grip on one live replica.

    Subclasses wrap a process or a thread; the surface is what the
    supervisor needs and nothing more.
    """

    def address(self) -> tuple[str, int]:
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def terminate(self) -> None:
        """Ask for a graceful drain (SIGTERM-equivalent)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Stop without grace (straggler cleanup)."""
        raise NotImplementedError

    def join(self, timeout_s: float) -> bool:
        """Wait for exit; returns whether the replica is down."""
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# process replicas
# --------------------------------------------------------------------------- #
class _ProcessHandle(ReplicaHandle):
    def __init__(self, process: multiprocessing.Process, port: int, host: str):
        self._process = process
        self._address = (host, port)

    def address(self) -> tuple[str, int]:
        return self._address

    def alive(self) -> bool:
        return self._process.is_alive()

    def terminate(self) -> None:
        if self._process.is_alive():
            self._process.terminate()  # SIGTERM -> replica drains gracefully

    def kill(self) -> None:
        if self._process.is_alive():
            self._process.kill()

    def join(self, timeout_s: float) -> bool:
        self._process.join(timeout=timeout_s)
        if self._process.is_alive():
            return False
        # A joined process's resources are released eagerly so a fleet that
        # churns replicas does not accumulate zombies.
        self._process.close()
        return True


class ProcessLauncher:
    """Launch real worker processes, each loading ``bundle_dir``.

    ``service_kwargs`` is forwarded to
    :meth:`~repro.serve.service.AnnotationService.load` in the child
    (``max_batch``, ``cache_size``, ``processes`` — though replica processes
    should normally keep ``processes=0``: the fleet already is the process
    pool).  Readiness is a pipe handshake: the child reports its bound port,
    or the error that kept it from loading; silence past
    ``ready_timeout_s`` is a failed launch either way.
    """

    def __init__(self, bundle_dir: str | Path, *,
                 service_kwargs: dict[str, Any] | None = None,
                 host: str = "127.0.0.1", ready_timeout_s: float = 120.0,
                 mp_context: multiprocessing.context.BaseContext | None = None):
        self.bundle_dir = str(bundle_dir)
        self.service_kwargs = dict(service_kwargs or {})
        self._host = host
        self._ready_timeout_s = ready_timeout_s
        self._ctx = mp_context or multiprocessing.get_context()

    def launch(self, name: str) -> ReplicaHandle:
        from repro.serve.replica import run_replica

        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=run_replica,
            args=(self.bundle_dir, child),
            kwargs={"name": name, "host": self._host,
                    "service_kwargs": self.service_kwargs},
            name=name, daemon=True,
        )
        process.start()
        child.close()
        try:
            if not parent.poll(self._ready_timeout_s):
                raise WorkerCrashed(
                    f"replica {name!r} did not report ready within "
                    f"{self._ready_timeout_s}s"
                )
            kind, value = parent.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashed(
                f"replica {name!r} died before reporting ready"
            ) from error
        except WorkerCrashed:
            process.terminate()
            raise
        finally:
            parent.close()
        if kind != "ready":
            process.join(timeout=5.0)
            raise WorkerCrashed(f"replica {name!r} failed to start: {value}")
        return _ProcessHandle(process, value, self._host)


# --------------------------------------------------------------------------- #
# in-process (thread) replicas
# --------------------------------------------------------------------------- #
class _ThreadHandle(ReplicaHandle):
    def __init__(self, server: ReplicaServer, service, owns_service: bool):
        self._server = server
        self._service = service
        self._owns_service = owns_service
        self._crashed = False

    @property
    def service(self):
        return self._service

    def address(self) -> tuple[str, int]:
        return ("127.0.0.1", self._server.port)

    def alive(self) -> bool:
        return not self._crashed and not self._server._stopping.is_set()

    def terminate(self) -> None:
        self._server.stop()
        if self._owns_service:
            self._service.close()

    def kill(self) -> None:
        self._server.abort()
        if self._owns_service:
            self._service.close()

    def join(self, timeout_s: float) -> bool:
        return True  # stop()/abort() are synchronous for thread replicas

    def crash(self) -> None:
        """Simulate worker death: sockets slam shut, heartbeats start failing."""
        self._crashed = True
        self._server.abort()


class ThreadLauncher:
    """In-process replicas over real loopback sockets (tests, demos).

    ``service_factory(name)`` builds (or returns a shared) service for each
    launched replica; set ``owns_services=False`` when the factory hands out
    a shared service the caller closes itself.  Handles additionally expose
    ``crash()`` — the chaos suite's no-real-kill worker death.
    """

    def __init__(self, service_factory: Callable[[str], Any], *,
                 owns_services: bool = True):
        self._factory = service_factory
        self._owns_services = owns_services
        self.launched: list[_ThreadHandle] = []

    def launch(self, name: str) -> _ThreadHandle:
        from repro.serve.replica import ReplicaServer

        service = self._factory(name)
        server = ReplicaServer(service, name=name)
        server.serve_in_thread()
        handle = _ThreadHandle(server, service, self._owns_services)
        self.launched.append(handle)
        return handle


# --------------------------------------------------------------------------- #
# the supervisor
# --------------------------------------------------------------------------- #
@dataclass
class _Slot:
    name: str
    handle: ReplicaHandle | None = None
    state: str = "down"  # "up" | "down" | "failed" | "stopped"
    restarts: int = 0
    generation: int = 0
    last_health: dict | None = None
    failure: str | None = None

    def member(self) -> FleetMember:
        address = None
        if self.handle is not None and self.state == "up":
            address = self.handle.address()
        return FleetMember(
            name=self.name, state=self.state, address=address,
            restarts=self.restarts, generation=self.generation,
            last_health=self.last_health,
        )


class ReplicaSupervisor:
    """Spawn, heartbeat and respawn a fixed-size fleet of replicas.

    Thread-safe: the monitor thread, the router (reading :meth:`members`)
    and the owner (calling :meth:`stop`) may overlap freely.  All deadlines
    run on the injectable monotonic ``clock``.
    """

    def __init__(self, launcher, replicas: int = 2, *,
                 policy: RuntimePolicy | None = None,
                 heartbeat_interval_s: float = 1.0,
                 heartbeat_timeout_s: float = 5.0,
                 max_restarts: int = 3,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        self.launcher = launcher
        self.policy = policy or RuntimePolicy()
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_restarts = max_restarts
        self._clock = clock
        self._sleep = sleep
        self._backoff = Backoff(self.policy)
        self._lock = threading.Lock()
        self._slots = [_Slot(name=f"replica-{i}") for i in range(replicas)]  # guarded-by: _lock
        self._spawned = 0  # guarded-by: _lock
        self._restarts = 0  # guarded-by: _lock
        self._heartbeats = 0  # guarded-by: _lock
        self._heartbeat_failures = 0  # guarded-by: _lock
        self._gave_up = 0  # guarded-by: _lock
        self._stop_event = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def replicas(self) -> int:
        with self._lock:
            return len(self._slots)

    def start(self) -> None:
        """Launch every slot and start the heartbeat monitor."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            self._launch_slot(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    def stop(self, *, drain_timeout_s: float = 15.0) -> None:
        """Drain the fleet: graceful terminate, bounded join, kill stragglers."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=drain_timeout_s)
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            handle = slot.handle
            if handle is None:
                continue
            try:
                handle.terminate()
            except (ServingError, OSError):  # already dead is fine
                pass
        deadline_s = self._clock() + drain_timeout_s
        for slot in slots:
            handle = slot.handle
            if handle is None:
                continue
            remaining = max(0.1, deadline_s - self._clock())
            if not handle.join(remaining):
                handle.kill()
                handle.join(5.0)
            with self._lock:
                slot.state = "stopped"
                slot.handle = None

    def __enter__(self) -> ReplicaSupervisor:
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # membership & accounting
    # ------------------------------------------------------------------ #
    def members(self) -> list[FleetMember]:
        """Routable replicas: slots that are up, with their live addresses."""
        with self._lock:
            return [slot.member() for slot in self._slots if slot.state == "up"]

    def describe(self) -> list[FleetMember]:
        """Every slot, whatever its state (health aggregation, debugging)."""
        with self._lock:
            return [slot.member() for slot in self._slots]

    def stats(self) -> dict[str, int]:
        """Restart accounting.  Balances: every successful launch is counted
        in ``spawned``, so ``spawned == replicas + restarts`` exactly when
        every respawn attempt succeeded."""
        with self._lock:
            return {
                "replicas": len(self._slots),
                "up": sum(1 for s in self._slots if s.state == "up"),
                "failed": sum(1 for s in self._slots if s.state == "failed"),
                "spawned": self._spawned,
                "restarts": self._restarts,
                "heartbeats": self._heartbeats,
                "heartbeat_failures": self._heartbeat_failures,
                "gave_up": self._gave_up,
            }

    # ------------------------------------------------------------------ #
    # spawning & monitoring
    # ------------------------------------------------------------------ #
    def _launch_slot(self, slot: _Slot) -> None:
        handle = self.launcher.launch(slot.name)
        with self._lock:
            slot.handle = handle
            slot.state = "up"
            slot.generation += 1
            slot.failure = None
            self._spawned += 1

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_interval_s):
            self.check_now()

    def check_now(self) -> None:
        """One synchronous heartbeat sweep (the monitor's body; tests call
        it directly to step the supervisor without waiting on wall clock)."""
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            if self._stop_event.is_set():
                return
            with self._lock:
                state, handle = slot.state, slot.handle
            if state == "up" and handle is not None:
                if self._heartbeat(slot, handle):
                    continue
                with self._lock:
                    if slot.state != "up" or slot.handle is not handle:
                        continue  # another sweep already acted on this death
                    slot.state = "down"
                    self._heartbeat_failures += 1
                handle.kill()  # no half-dead replicas: down means down
                handle.join(self.heartbeat_timeout_s)
                self._respawn(slot)
            elif state == "down":
                self._respawn(slot)

    def _heartbeat(self, slot: _Slot, handle: ReplicaHandle) -> bool:
        if not handle.alive():
            return False
        try:
            payload = wire.ping(
                handle.address(),
                deadline_s=self._clock() + self.heartbeat_timeout_s,
                clock=self._clock,
            )
        except ServingError:
            return False
        with self._lock:
            self._heartbeats += 1
            slot.last_health = payload.get("health")
        return True

    def _respawn(self, slot: _Slot) -> None:
        with self._lock:
            # Only one respawner per slot: the monitor thread and an explicit
            # check_now() may both notice the same death — the transition
            # "down" -> "restarting" is the slot's mutual exclusion.
            if slot.state != "down":
                return
            if slot.restarts >= self.max_restarts:
                slot.state = "failed"
                slot.handle = None
                slot.failure = (
                    f"gave up after {slot.restarts} restarts "
                    f"(max_restarts={self.max_restarts})"
                )
                self._gave_up += 1
                return
            slot.state = "restarting"
            slot.restarts += 1
            attempt = slot.restarts
            self._restarts += 1
        self._sleep(self._backoff.next_s(attempt))
        if self._stop_event.is_set():
            return
        try:
            self._launch_slot(slot)
        except (ServingError, OSError) as error:
            # Launch failed: the slot stays down and the next sweep tries
            # again (bounded by max_restarts above).
            with self._lock:
                slot.state = "down"
                slot.handle = None
                slot.failure = f"respawn failed: {type(error).__name__}: {error}"

    def failure_reasons(self) -> dict[str, str]:
        """Per-slot failure notes for health aggregation (empty when clean)."""
        with self._lock:
            return {
                slot.name: slot.failure
                for slot in self._slots if slot.failure is not None
            }
