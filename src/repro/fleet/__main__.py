"""Stand up a replicated serving tier from a saved service bundle.

Usage::

    python -m repro.fleet --bundle bundle/ --replicas 2 --port 8080

One command, the whole topology: a :class:`~repro.fleet.supervisor.\
ReplicaSupervisor` spawns ``--replicas`` worker processes (each loading the
same bundle and serving the fleet wire protocol on a loopback socket), a
:class:`~repro.fleet.router.FleetRouter` fronts them with least-outstanding
routing, per-replica breakers and the shared results cache, and the HTTP
:class:`~repro.gateway.app.Gateway` serves on ``--port`` with the router in
its service seat.

SIGTERM/SIGINT drains the whole tier gracefully, top down: the gateway
stops admitting and answers what it accepted, the router finishes in-flight
batches and closes its replica connections, then the supervisor SIGTERMs
every replica and joins them (killing stragglers after the drain timeout).
"""

from __future__ import annotations

import argparse
import asyncio

from repro.fleet.cache import SharedResultsCache
from repro.fleet.router import FleetRouter
from repro.fleet.supervisor import ProcessLauncher, ReplicaSupervisor
from repro.gateway.app import Gateway, GatewayConfig
from repro.runtime.resilience import RuntimePolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--bundle", required=True,
                        help="saved ServiceBundle directory (shared by every replica)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="worker processes to supervise")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="gateway listen port (0 picks a free one)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="requests coalesced per gateway micro-batch")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="micro-batch coalescing window")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="admission bound; beyond it requests are shed "
                             "oldest-deadline-first")
    parser.add_argument("--max-concurrent-batches", type=int, default=2)
    parser.add_argument("--default-deadline-ms", type=float, default=None,
                        help="deadline for requests without an X-Deadline-Ms header")
    parser.add_argument("--timeout-s", type=float, default=30.0,
                        help="per-batch budget when the request carries none")
    parser.add_argument("--heartbeat-interval-s", type=float, default=1.0,
                        help="how often the supervisor pings each replica")
    parser.add_argument("--heartbeat-timeout-s", type=float, default=5.0,
                        help="ping budget; a miss marks the replica down")
    parser.add_argument("--max-restarts", type=int, default=3,
                        help="respawns per replica slot before giving up")
    parser.add_argument("--results-cache-size", type=int, default=4096,
                        help="shared results cache bound (0 keeps only "
                             "single-flight de-dup)")
    parser.add_argument("--service-max-batch", type=int, default=16,
                        help="PLM micro-batch size inside each replica")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="per-replica prepared-table LRU bound (0 disables)")
    return parser


async def _serve(router: FleetRouter, config: GatewayConfig,
                 replicas: int) -> None:
    gateway = Gateway(router, config)
    await gateway.start()
    print(f"fleet gateway serving http://{config.host}:{gateway.port} "
          f"({replicas} replicas, queue={config.max_queue}) — "
          "SIGTERM drains gateway, router and every replica", flush=True)
    # close_service=True: the gateway's drain closes the router, which —
    # because it owns the supervisor — SIGTERMs and joins every replica.
    await gateway.serve_forever(install_signals=True, close_service=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    policy = RuntimePolicy(timeout_s=args.timeout_s)
    launcher = ProcessLauncher(
        args.bundle,
        service_kwargs={"max_batch": args.service_max_batch,
                        "cache_size": args.cache_size},
    )
    supervisor = ReplicaSupervisor(
        launcher, args.replicas, policy=policy,
        heartbeat_interval_s=args.heartbeat_interval_s,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
        max_restarts=args.max_restarts,
    )
    supervisor.start()
    router = FleetRouter(
        supervisor, policy=policy,
        cache=SharedResultsCache(maxsize=args.results_cache_size),
        max_batch=args.max_batch or args.service_max_batch,
        own_supervisor=True,
    )
    config = GatewayConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        max_concurrent_batches=args.max_concurrent_batches,
        default_deadline_ms=args.default_deadline_ms,
    )
    try:
        asyncio.run(_serve(router, config, args.replicas))
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        pass
    finally:
        router.close()  # idempotent; also stops the supervisor it owns
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
