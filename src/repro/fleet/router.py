"""The fleet router: one service-shaped front door over N replicas.

:class:`FleetRouter` satisfies exactly the duck type the gateway serves —
``annotate_batch(tables, budget_s=...)``, ``stats()`` / ``health()``
(objects with ``to_dict()``), ``close()``, ``max_batch`` — so it drops into
:class:`~repro.gateway.app.Gateway` where a single in-process
:class:`~repro.serve.service.AnnotationService` normally sits.  Behind that
surface:

* **least-outstanding routing** — each batch goes to the live replica with
  the fewest requests currently in flight (ties break by slot order), so a
  slow replica sheds load to its siblings instead of queueing it;
* **per-replica circuit breakers** — one
  :class:`~repro.runtime.resilience.CircuitBreaker` per *slot name* (not
  per process: breakers deliberately survive respawns, so a freshly
  restarted replica is admitted through the half-open probe rather than
  trusted blindly);
* **transparent failover** — a batch that hits a dead or unreachable
  replica (:class:`~repro.core.errors.ReplicaUnavailable`, connection
  reset, :class:`~repro.core.errors.WorkerCrashed`) is re-dispatched to the
  next-best replica, keeping the gateway's zero-silent-drop accounting
  intact across worker death.  Replicas are deterministic over the same
  bundle, so a re-dispatched batch returns bitwise-identical predictions;
  only :class:`~repro.core.errors.DeadlineExceeded` and replica-side
  *application* errors (the replica answered; retrying elsewhere would
  produce the same answer) propagate to the caller;
* a **shared results cache** (:class:`~repro.fleet.cache.SharedResultsCache`)
  in front of the whole fleet: repeat tables are answered from memory, and
  concurrent duplicates collapse to a single dispatch (single-flight), with
  hit/miss/coalesced counters surfaced through ``stats()`` for ``/stats``
  and ``/metrics``.

Membership comes from a :class:`~repro.fleet.supervisor.ReplicaSupervisor`:
the router reads ``members()`` fresh on every dispatch, so respawned
replicas (new port, same slot name) are picked up automatically and their
stale endpoints redialed.  ``health()`` aggregates the supervisor's cached
per-replica health snapshots — no wire I/O, so it is safe to call from the
gateway's event loop.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro.core.errors import (
    DeadlineExceeded,
    ReplicaUnavailable,
    ServiceClosed,
    ServingError,
    WorkerCrashed,
)
from repro.fleet.cache import SharedResultsCache, table_key
from repro.fleet.supervisor import FleetMember, ReplicaSupervisor
from repro.fleet.wire import ReplicaClient
from repro.runtime.resilience import CircuitBreaker, RuntimePolicy

__all__ = ["FleetRouter", "FleetStats", "FleetHealth"]

#: Fallback per-batch budget when neither the caller nor the policy sets one.
DEFAULT_BUDGET_S = 30.0

#: Errors that mean "this replica, right now" — the batch fails over.
_FAILOVER_ERRORS = (
    ReplicaUnavailable,
    WorkerCrashed,
    ServiceClosed,  # the replica is draining; its siblings are not
    ConnectionError,
    EOFError,
    OSError,
)


@dataclass(frozen=True)
class FleetStats:
    """Cumulative router telemetry (all-numeric, ``/metrics``-safe)."""

    requests: int
    tables: int
    dispatches: int
    failovers: int
    timeouts: int
    replica_errors: int
    rejected: int
    results_cache: dict[str, int] = field(default_factory=dict)
    supervisor: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat JSON-safe counters; cache and supervisor namespaced by prefix
        so the gateway's ``/metrics`` endpoint (numeric values only) can emit
        every key as a gauge."""
        payload = {
            "requests": int(self.requests),
            "tables": int(self.tables),
            "dispatches": int(self.dispatches),
            "failovers": int(self.failovers),
            "timeouts": int(self.timeouts),
            "replica_errors": int(self.replica_errors),
            "rejected": int(self.rejected),
        }
        for key, value in self.results_cache.items():
            payload[f"results_cache_{key}"] = int(value)
        for key, value in self.supervisor.items():
            payload[f"fleet_{key}"] = int(value)
        return payload

    as_dict = to_dict


@dataclass(frozen=True)
class FleetHealth:
    """Aggregated fleet health: the worst of the replicas, with reasons.

    ``status`` is ``"healthy"`` (every slot up and healthy, breakers
    closed), ``"degraded"`` (the fleet answers, but some slot is down,
    restarting, unhealthy, or breaker-limited) or ``"failed"`` (no live
    replica, or the router is closed).  ``replicas`` carries one entry per
    slot — state, restart count, the replica's own last-reported status and
    its breaker state — so ``/healthz`` shows *which* replica is sick, not
    just that one is.
    """

    status: str
    reasons: tuple[str, ...] = ()
    replicas: dict[str, dict] = field(default_factory=dict)
    breakers: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-safe snapshot for the gateway's ``/healthz`` endpoint."""
        return {
            "status": str(self.status),
            "reasons": [str(reason) for reason in self.reasons],
            "replicas": {
                str(name): dict(info) for name, info in self.replicas.items()
            },
            "breakers": {str(name): str(state)
                         for name, state in self.breakers.items()},
        }

    as_dict = to_dict


class FleetRouter:
    """Route ``annotate_batch`` calls across a supervised replica fleet.

    Thread-safe: the gateway's micro-batcher calls ``annotate_batch`` from
    worker threads while the event loop reads ``stats()`` / ``health()``.
    ``endpoint_factory(name, address)`` is injectable so tests can wrap the
    real :class:`~repro.fleet.wire.ReplicaClient` in a
    :class:`~repro.runtime.faults.FaultyEndpoint` and script wire failures
    without killing anything.

    With ``own_supervisor=True`` (the CLI default) :meth:`close` also stops
    the supervisor — the graceful-drain path: gateway stops admitting,
    in-flight batches finish, then every replica gets SIGTERM.
    """

    def __init__(self, supervisor: ReplicaSupervisor, *,
                 policy: RuntimePolicy | None = None,
                 cache: SharedResultsCache | None = None,
                 max_batch: int = 16,
                 endpoint_factory: Callable[[str, tuple[str, int]], Any] | None = None,
                 own_supervisor: bool = False,
                 clock: Callable[[], float] = time.monotonic):
        self.supervisor = supervisor
        self.policy = policy or supervisor.policy
        self.cache = cache if cache is not None else SharedResultsCache()
        self.max_batch = max_batch
        self._endpoint_factory = endpoint_factory or self._default_endpoint
        self._own_supervisor = own_supervisor
        self._clock = clock
        self._lock = threading.Lock()
        # Slot name -> (address, endpoint); a respawn changes the address,
        # which invalidates the cached endpoint on next use.
        self._endpoints: dict[str, tuple[tuple[str, int], Any]] = {}  # guarded-by: _lock
        # Slot name -> breaker.  Keyed by name, not process: survives respawns.
        self._breakers: dict[str, CircuitBreaker] = {}  # guarded-by: _lock
        self._outstanding: dict[str, int] = {}  # guarded-by: _lock
        self._requests = 0  # guarded-by: _lock
        self._tables = 0  # guarded-by: _lock
        self._dispatches = 0  # guarded-by: _lock
        self._failovers = 0  # guarded-by: _lock
        self._timeouts = 0  # guarded-by: _lock
        self._replica_errors = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._lifecycle = threading.Condition()
        self._in_flight = 0  # guarded-by: _lifecycle
        self._closed = False  # guarded-by: _lifecycle

    def _default_endpoint(self, name: str, address: tuple[str, int]) -> Any:
        timeout = self.policy.timeout_s or DEFAULT_BUDGET_S
        return ReplicaClient(address, name=name, default_timeout_s=timeout,
                             clock=self._clock)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @contextmanager
    def _track(self) -> Iterator[None]:
        with self._lifecycle:
            if self._closed:
                raise ServiceClosed("fleet router is closed")
            self._in_flight += 1
        try:
            yield
        finally:
            with self._lifecycle:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._lifecycle.notify_all()

    def close(self) -> None:
        """Drain in-flight batches, drop endpoints, stop an owned fleet."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            while self._in_flight > 0:
                self._lifecycle.wait()
        with self._lock:
            endpoints = [endpoint for _, endpoint in self._endpoints.values()]
            self._endpoints.clear()
        for endpoint in endpoints:
            try:
                endpoint.close()
            except (ServingError, OSError):  # pragma: no cover - best effort
                pass
        if self._own_supervisor:
            self.supervisor.stop()

    def __enter__(self) -> FleetRouter:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the serving surface
    # ------------------------------------------------------------------ #
    def annotate_batch(self, tables: Sequence[Any], *,
                       budget_s: float | None = None) -> list:
        """Annotate ``tables`` somewhere in the fleet; cache-first.

        The batch is partitioned against the shared results cache: hits are
        answered from memory, concurrent duplicates join the in-flight lead,
        and only *lead* tables travel the wire — as one sub-batch, with the
        remaining budget, failing over across replicas as needed.
        """
        with self._track():
            if budget_s is not None:
                deadline_s = self._clock() + budget_s
            else:
                deadline_s = self._clock() + (self.policy.timeout_s
                                              or DEFAULT_BUDGET_S)
            with self._lock:
                self._requests += 1
                self._tables += len(tables)

            # Partition: first occurrence of a key in this batch leads (or
            # hits/joins the cross-request cache); later occurrences within
            # the same batch just copy the first position's result.
            results: list[Any] = [None] * len(tables)
            positions_by_key: dict[str, list[int]] = {}
            lead_keys: list[str] = []
            lead_tables: list[Any] = []
            lead_flights: dict[str, Any] = {}
            joins: list[tuple[str, Any]] = []  # (key, flight)
            for position, table in enumerate(tables):
                key = table_key(table)
                positions = positions_by_key.setdefault(key, [])
                positions.append(position)
                if len(positions) > 1:
                    continue  # duplicate within this very batch
                outcome, token = self.cache.begin(key)
                if outcome == "hit":
                    results[positions[0]] = token
                elif outcome == "join":
                    joins.append((key, token))
                else:  # lead
                    lead_keys.append(key)
                    lead_tables.append(table)
                    lead_flights[key] = token

            if lead_tables:
                try:
                    values = self._dispatch(lead_tables, deadline_s)
                # repro: allow[REP104] -- single-flight contract: every lead
                # must publish, whatever went wrong, or joiners hang; the
                # error is re-raised to this caller unchanged
                except BaseException as error:
                    for key in lead_keys:
                        self.cache.fail(key, lead_flights[key], error)
                    raise
                for key, value in zip(lead_keys, values):
                    self.cache.complete(key, lead_flights[key], value)
                    results[positions_by_key[key][0]] = value

            for key, flight in joins:
                results[positions_by_key[key][0]] = flight.wait(
                    deadline_s=deadline_s, clock=self._clock
                )

            # Fan duplicate positions out from each key's first position.
            for positions in positions_by_key.values():
                for position in positions[1:]:
                    results[position] = results[positions[0]]
            return results

    def _dispatch(self, tables: Sequence[Any], deadline_s: float) -> list:
        """Send one sub-batch to the best replica, failing over on death."""
        tried: set[str] = set()
        last_error: BaseException | None = None
        while True:
            member = self._pick(tried)
            if member is None:
                with self._lock:
                    self._rejected += 1
                raise ReplicaUnavailable(
                    "no healthy replica available "
                    f"(tried {sorted(tried) if tried else 'none'})"
                ) from last_error
            name = member.name
            breaker = self._breaker(name)
            if not breaker.allow():
                tried.add(name)
                continue
            remaining = deadline_s - self._clock()
            if remaining <= 0:
                with self._lock:
                    self._timeouts += 1
                raise DeadlineExceeded(
                    "batch deadline expired before a replica could be reached"
                ) from last_error
            endpoint = self._endpoint(member)
            with self._lock:
                self._outstanding[name] = self._outstanding.get(name, 0) + 1
                self._dispatches += 1
            try:
                value = endpoint.request(
                    "annotate_batch",
                    {"tables": list(tables), "budget_s": remaining},
                    deadline_s=deadline_s,
                )
            except DeadlineExceeded:
                # The deadline is the caller's, not the replica's fault —
                # but the breaker still counts it: a replica that keeps
                # timing out deserves ejection.
                breaker.record_failure()
                with self._lock:
                    self._timeouts += 1
                raise
            except _FAILOVER_ERRORS as error:
                breaker.record_failure()
                self._drop_endpoint(name)
                with self._lock:
                    self._replica_errors += 1
                tried.add(name)
                last_error = error
                continue
            except ServingError:
                # The replica answered with a typed application error;
                # replicas are deterministic, so failover would only repeat it.
                breaker.record_success()
                raise
            finally:
                with self._lock:
                    self._outstanding[name] -= 1
            breaker.record_success()
            if tried:
                with self._lock:
                    self._failovers += 1
            return value

    # ------------------------------------------------------------------ #
    # routing internals
    # ------------------------------------------------------------------ #
    def _pick(self, tried: set[str]) -> FleetMember | None:
        """The live, untried, non-open-breaker member with least outstanding."""
        members = self.supervisor.members()
        with self._lock:
            candidates = [
                member for member in members
                if member.name not in tried
                and self._breaker_locked(member.name).state != CircuitBreaker.OPEN
            ]
            if not candidates:
                return None
            return min(candidates,
                       key=lambda m: self._outstanding.get(m.name, 0))

    def _breaker_locked(self, name: str) -> CircuitBreaker:
        # The _locked suffix is the repo convention: callers hold self._lock.
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.policy.breaker_threshold,
                reset_s=self.policy.breaker_reset_s,
                clock=self._clock,
            )
            self._breakers[name] = breaker
        return breaker

    def _breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            return self._breaker_locked(name)

    def _endpoint(self, member: FleetMember) -> Any:
        assert member.address is not None  # members() only returns live slots
        with self._lock:
            cached = self._endpoints.get(member.name)
            if cached is not None and cached[0] == member.address:
                return cached[1]
        # Dial outside the lock; the stale endpoint (if any) is closed here.
        endpoint = self._endpoint_factory(member.name, member.address)
        stale = None
        with self._lock:
            cached = self._endpoints.get(member.name)
            if cached is not None and cached[0] != member.address:
                stale = cached[1]
            self._endpoints[member.name] = (member.address, endpoint)
        if stale is not None:
            try:
                stale.close()
            except (ServingError, OSError):  # pragma: no cover - best effort
                pass
        return endpoint

    def _drop_endpoint(self, name: str) -> None:
        with self._lock:
            cached = self._endpoints.pop(name, None)
        if cached is not None:
            try:
                cached[1].close()
            except (ServingError, OSError):  # pragma: no cover - best effort
                pass

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> FleetStats:
        """Cumulative routing counters plus cache and supervisor accounting."""
        with self._lock:
            requests, tables = self._requests, self._tables
            dispatches, failovers = self._dispatches, self._failovers
            timeouts, replica_errors = self._timeouts, self._replica_errors
            rejected = self._rejected
        return FleetStats(
            requests=requests, tables=tables, dispatches=dispatches,
            failovers=failovers, timeouts=timeouts,
            replica_errors=replica_errors, rejected=rejected,
            results_cache=self.cache.stats(),
            supervisor=self.supervisor.stats(),
        )

    def health(self) -> FleetHealth:
        """Aggregate per-replica health without wire I/O.

        Uses the supervisor's cached heartbeat snapshots (each ping carries
        the replica's own ``health()``), so this is safe to call from the
        gateway's event loop: ``failed`` when the router is closed or no
        replica is up; ``degraded`` when any slot is down/failed, reports a
        non-healthy status, or its breaker is not closed.
        """
        with self._lifecycle:
            closed = self._closed
        slots = self.supervisor.describe()
        failure_reasons = self.supervisor.failure_reasons()
        with self._lock:
            breakers = {name: breaker.state
                        for name, breaker in self._breakers.items()}
        replicas: dict[str, dict] = {}
        reasons: list[str] = []
        up = 0
        for slot in slots:
            replica_status = "unknown"
            if slot.last_health is not None:
                replica_status = str(slot.last_health.get("status", "unknown"))
            breaker_state = breakers.get(slot.name, CircuitBreaker.CLOSED)
            replicas[slot.name] = {
                "state": slot.state,
                "status": replica_status,
                "restarts": slot.restarts,
                "breaker": breaker_state,
            }
            if slot.state == "up":
                up += 1
                if replica_status not in ("healthy", "unknown"):
                    reasons.append(f"{slot.name} reports {replica_status}")
            else:
                note = failure_reasons.get(slot.name)
                reasons.append(
                    f"{slot.name} is {slot.state}" + (f": {note}" if note else "")
                )
            if breaker_state != CircuitBreaker.CLOSED:
                reasons.append(f"breaker {slot.name} is {breaker_state}")
        if closed:
            return FleetHealth("failed", ("fleet router closed",),
                               replicas, breakers)
        if up == 0:
            reasons.insert(0, "no live replicas")
            return FleetHealth("failed", tuple(reasons), replicas, breakers)
        status = "degraded" if reasons else "healthy"
        return FleetHealth(status, tuple(reasons), replicas, breakers)
