"""repro.fleet: the replicated serving tier behind the gateway.

One gateway process, N worker processes, one shared results cache:

* :mod:`repro.fleet.wire` — the length-prefixed loopback protocol replicas
  speak (stdlib-only; every socket operation carries an explicit deadline);
* :mod:`repro.fleet.supervisor` — :class:`ReplicaSupervisor` spawns the
  workers (each a :func:`repro.serve.replica.run_replica` process over the
  same :class:`~repro.serve.bundle.ServiceBundle`), heartbeats them, and
  respawns the dead with bounded, backed-off restarts;
* :mod:`repro.fleet.router` — :class:`FleetRouter` presents the fleet as a
  single service-shaped object to the gateway: least-outstanding routing,
  one circuit breaker per replica, transparent failover on worker death;
* :mod:`repro.fleet.cache` — :class:`SharedResultsCache`, a bounded LRU of
  per-table predictions with single-flight de-dup across the whole fleet.

``python -m repro.fleet --bundle bundle/ --replicas 2`` stands the whole
tier up; SIGTERM drains it gracefully (gateway stops admitting → in-flight
batches finish → every replica is terminated and joined).
"""

from repro.fleet.cache import SharedResultsCache, table_key
from repro.fleet.router import FleetHealth, FleetRouter, FleetStats
from repro.fleet.supervisor import (
    FleetMember,
    ProcessLauncher,
    ReplicaHandle,
    ReplicaSupervisor,
    ThreadLauncher,
)
from repro.fleet.wire import ReplicaClient, WireClosed, ping

__all__ = [
    "FleetHealth",
    "FleetMember",
    "FleetRouter",
    "FleetStats",
    "ProcessLauncher",
    "ReplicaClient",
    "ReplicaHandle",
    "ReplicaSupervisor",
    "SharedResultsCache",
    "ThreadLauncher",
    "WireClosed",
    "ping",
    "table_key",
]
