"""The fleet's wire protocol: length-prefixed frames over a local socket.

One replica process serves ``annotate_batch`` (plus ``ping`` / ``stats`` /
``health`` / ``shutdown``) to the router over a loopback TCP connection.
The protocol is deliberately minimal and stdlib-only:

* a **frame** is a 4-byte big-endian length followed by that many bytes of
  pickled payload (:func:`send_message` / :func:`recv_message`).  Pickle is
  acceptable here because both ends are the same trusted codebase on the
  same machine — the listener binds loopback only and the payloads are
  :class:`~repro.data.table.Table` objects and prediction lists that JSON
  would force into a hand-rolled codec;
* a **request** is ``{"op": ..., **fields}`` and a **response** is
  ``{"ok": True, "value": ...}`` or ``{"ok": False, "error": {...}}``.
  Errors cross the wire by *name* and are rebuilt into the typed taxonomy of
  :mod:`repro.core.errors` on the router side (:func:`encode_error` /
  :func:`decode_error`), so ``except DeadlineExceeded`` works identically
  whether the service is in-process or behind a socket;
* **every socket operation carries a deadline** — connects use an explicit
  timeout, reads and writes compute their timeout from an absolute monotonic
  ``deadline_s`` before each syscall.  This is the REP106
  socket-timeout-discipline invariant: a dead replica costs the router a
  bounded wait, never a hang.

:class:`ReplicaClient` is the router-facing endpoint: a small pool of
keep-alive connections to one replica, safe to call from multiple batcher
threads.  Any transport failure closes the affected connection (its stream
state is unknowable) and surfaces as
:class:`~repro.core.errors.ReplicaUnavailable`, the router's failover
signal.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.core import errors as error_taxonomy
from repro.core.errors import DeadlineExceeded, ReplicaUnavailable, ServingError

__all__ = [
    "MAX_FRAME_BYTES",
    "WireClosed",
    "send_message",
    "recv_message",
    "wait_readable",
    "encode_error",
    "decode_error",
    "ReplicaClient",
    "ping",
]

#: Header layout: one unsigned 32-bit big-endian payload length.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload.  Generous (a micro-batch of tables is
#: kilobytes), but finite: a corrupt header must not trigger a gigabyte read.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default connect timeout for replica dials (loopback: either the listener
#: is there or it is not).
CONNECT_TIMEOUT_S = 5.0


class WireClosed(ConnectionError):
    """The peer closed the connection cleanly at a frame boundary."""


def _remaining(deadline_s: float, clock: Callable[[], float]) -> float:
    remaining = deadline_s - clock()
    if remaining <= 0:
        raise DeadlineExceeded("wire deadline expired")
    return remaining


def send_message(sock: socket.socket, message: Any, *, deadline_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
    """Pickle ``message`` and send it as one frame before ``deadline_s``.

    ``deadline_s`` is an absolute monotonic reading; the socket timeout is
    recomputed from it immediately before the send.  ``socket.timeout``
    surfaces as :class:`~repro.core.errors.DeadlineExceeded`.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    sock.settimeout(_remaining(deadline_s, clock))
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except TimeoutError as error:
        raise DeadlineExceeded("wire deadline expired mid-send") from error


def _recv_exactly(sock: socket.socket, n_bytes: int, deadline_s: float,
                  clock: Callable[[], float]) -> bytes:
    chunks: list[bytes] = []
    received = 0
    while received < n_bytes:
        sock.settimeout(_remaining(deadline_s, clock))
        try:
            chunk = sock.recv(n_bytes - received)
        except TimeoutError as error:
            raise DeadlineExceeded("wire deadline expired mid-frame") from error
        if not chunk:
            if received:
                raise ConnectionError("peer closed the connection mid-frame")
            raise WireClosed("peer closed the connection at a frame boundary")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket, *, deadline_s: float,
                 clock: Callable[[], float] = time.monotonic) -> Any:
    """Receive one frame and unpickle it; must complete before ``deadline_s``.

    Raises :class:`WireClosed` on a clean EOF *between* frames (the normal
    way a peer hangs up), ``ConnectionError`` on a mid-frame EOF, and
    :class:`~repro.core.errors.DeadlineExceeded` when the deadline passes.
    """
    header = _recv_exactly(sock, _HEADER.size, deadline_s, clock)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES}); "
            "stream is corrupt"
        )
    payload = _recv_exactly(sock, length, deadline_s, clock)
    return pickle.loads(payload)


def wait_readable(sock: socket.socket, timeout_s: float) -> bool:
    """Whether ``sock`` has bytes (or EOF) to read within ``timeout_s``.

    A one-byte ``MSG_PEEK`` with an explicit timeout: the replica server's
    idle loop polls with this so it can notice a stop flag between requests
    without ever timing out *inside* a frame (which would desynchronise the
    stream).  Returns ``True`` on data **or** EOF — the caller's next real
    read tells them apart.  A socket closed under us (a crash-simulating
    ``abort()`` slams live connections) also reports ``True``: the caller's
    next read raises the real error on their own code path.
    """
    try:
        sock.settimeout(timeout_s)
        sock.recv(1, socket.MSG_PEEK)
    except TimeoutError:
        return False
    except OSError:
        return True
    return True


# --------------------------------------------------------------------------- #
# error transport
# --------------------------------------------------------------------------- #
#: Exception types allowed to cross the wire by name.  The typed serving
#: taxonomy plus the specific builtins the serving surface documents; an
#: unknown name decodes to the base ServingError so a replica can never make
#: the router raise an arbitrary type.
_DECODABLE: dict[str, type[BaseException]] = {
    **{name: getattr(error_taxonomy, name) for name in error_taxonomy.__all__},
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "RuntimeError": RuntimeError,
}


def encode_error(error: BaseException) -> dict[str, str]:
    """A JSON/pickle-safe payload naming the error for the peer."""
    return {"type": type(error).__name__, "message": str(error)}


def decode_error(payload: dict[str, str]) -> BaseException:
    """Rebuild a typed exception from :func:`encode_error` output."""
    name = payload.get("type", "ServingError")
    message = payload.get("message", "")
    cls = _DECODABLE.get(name)
    if cls is None:
        return ServingError(f"replica error {name}: {message}")
    return cls(message)


# --------------------------------------------------------------------------- #
# the router-facing endpoint
# --------------------------------------------------------------------------- #
class ReplicaClient:
    """A pooled keep-alive client to one replica's wire socket.

    ``request`` checks a connection out of the idle pool (dialling a new one
    when the pool is dry), performs one request/response exchange under the
    caller's deadline, and returns the connection for reuse.  Concurrent
    callers therefore get concurrent connections — the replica server hands
    each one its own handler thread, so two micro-batches routed to the same
    replica genuinely overlap.

    Failure handling is deliberately blunt: after *any* transport error the
    connection is closed rather than reused (a half-read response would
    poison the next exchange), and connect/reset/EOF failures are mapped to
    :class:`~repro.core.errors.ReplicaUnavailable` — the single signal the
    router's failover path keys on.  A replica-side failure that arrives as
    a well-formed error response is decoded and raised as its typed self.
    """

    def __init__(self, address: tuple[str, int], *, name: str = "replica",
                 connect_timeout_s: float = CONNECT_TIMEOUT_S,
                 default_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.address = address
        self.name = name
        self._connect_timeout_s = connect_timeout_s
        self._default_timeout_s = default_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._idle: list[socket.socket] = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                self.address, timeout=self._connect_timeout_s
            )
        except OSError as error:
            raise ReplicaUnavailable(
                f"replica {self.name!r} at {self.address} is unreachable: {error}"
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ReplicaUnavailable(
                    f"client for replica {self.name!r} is closed"
                )
            if self._idle:
                return self._idle.pop()
        return self._dial()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(sock)
                return
        sock.close()

    def request(self, op: str, payload: dict[str, Any] | None = None, *,
                deadline_s: float | None = None) -> Any:
        """One request/response exchange; returns the response value.

        ``deadline_s`` is absolute monotonic; ``None`` applies the client's
        ``default_timeout_s`` from now.  Transport failures raise
        :class:`~repro.core.errors.ReplicaUnavailable`; a deadline raised
        here or decoded from the replica stays
        :class:`~repro.core.errors.DeadlineExceeded`.
        """
        if deadline_s is None:
            deadline_s = self._clock() + self._default_timeout_s
        message = {"op": op, **(payload or {})}
        sock = self._checkout()
        try:
            send_message(sock, message, deadline_s=deadline_s, clock=self._clock)
            response = recv_message(sock, deadline_s=deadline_s, clock=self._clock)
        except DeadlineExceeded:
            # The response (if any) is still in flight; the stream cannot be
            # reused.
            sock.close()
            raise
        except (ConnectionError, OSError, EOFError, pickle.PickleError) as error:
            sock.close()
            raise ReplicaUnavailable(
                f"replica {self.name!r} at {self.address} failed mid-exchange: "
                f"{type(error).__name__}: {error}"
            ) from error
        self._checkin(sock)
        if not isinstance(response, dict) or "ok" not in response:
            raise ReplicaUnavailable(
                f"replica {self.name!r} sent a malformed response"
            )
        if response["ok"]:
            return response.get("value")
        raise decode_error(response.get("error", {}))

    def close(self) -> None:
        """Close every pooled connection; further requests are refused."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()


def ping(address: tuple[str, int], *, deadline_s: float,
         clock: Callable[[], float] = time.monotonic) -> dict[str, Any]:
    """One-shot liveness probe: dial, ``ping``, hang up.

    The supervisor's heartbeat loop uses this rather than a pooled client so
    a respawned replica (new port) needs no client-side state to invalidate.
    Returns the replica's ping payload (name, pid, health snapshot); any
    failure surfaces as :class:`~repro.core.errors.ReplicaUnavailable` or
    :class:`~repro.core.errors.DeadlineExceeded`.
    """
    connect_timeout = min(CONNECT_TIMEOUT_S, _remaining(deadline_s, clock))
    try:
        sock = socket.create_connection(address, timeout=connect_timeout)
    except OSError as error:
        raise ReplicaUnavailable(
            f"replica at {address} is unreachable: {error}"
        ) from error
    try:
        send_message(sock, {"op": "ping"}, deadline_s=deadline_s, clock=clock)
        response = recv_message(sock, deadline_s=deadline_s, clock=clock)
    except (ConnectionError, OSError, EOFError, pickle.PickleError) as error:
        raise ReplicaUnavailable(
            f"replica at {address} failed the heartbeat: "
            f"{type(error).__name__}: {error}"
        ) from error
    finally:
        sock.close()
    if not isinstance(response, dict) or not response.get("ok"):
        raise ReplicaUnavailable(f"replica at {address} answered ping abnormally")
    return response.get("value", {})
