"""Execution runtime: pluggable fan-out strategies for the serving stack.

See :mod:`repro.runtime.executor` for the :class:`SearchExecutor` protocol
and the ``serial`` / ``thread`` / ``process`` implementations.  Call sites
select one by name::

    from repro.runtime import create_executor

    executor = create_executor("process", max_workers=4)

which is the same registry idiom the retrieval backends use
(:func:`repro.kg.backends.create_backend`).

:mod:`repro.runtime.resilience` layers deadlines, bounded retries and
per-target circuit breakers over any executor (``ResilientExecutor`` +
``RuntimePolicy``), and :mod:`repro.runtime.faults` provides the matching
deterministic fault injector (``FaultPlan`` + ``FaultyExecutor``) so every
failure mode is reproducible in tests.
"""

from repro.runtime.executor import (
    ProcessExecutor,
    SearchExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    create_executor,
    default_worker_count,
    register_executor,
)
from repro.runtime.faults import FaultPlan, FaultRule, FaultyEndpoint, FaultyExecutor
from repro.runtime.resilience import (
    Backoff,
    CircuitBreaker,
    ResilienceStats,
    ResilientExecutor,
    RuntimePolicy,
)

__all__ = [
    "SearchExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "register_executor",
    "create_executor",
    "available_executors",
    "default_worker_count",
    "RuntimePolicy",
    "Backoff",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientExecutor",
    "FaultPlan",
    "FaultRule",
    "FaultyExecutor",
    "FaultyEndpoint",
]
