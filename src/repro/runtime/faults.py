"""Deterministic fault injection for the execution runtime.

Testing the resilience layer against *real* failures — killed worker
processes, wall-clock hangs — is slow and flaky.  This module makes every
failure mode a first-class, reproducible test input instead:

* :class:`FaultPlan` — a seeded script of faults ("fail the task for shard 2
  once with ``TimeoutError``", "kill a worker on call 5", "delay 50 ms"),
  built from chainable rules;
* :class:`FaultyExecutor` — wraps any registered
  :class:`~repro.runtime.executor.SearchExecutor` and consults the plan at
  the submission boundary, *in the parent process*.  A matching rule raises
  the scripted error (a ``crash`` rule raises ``BrokenProcessPool``, exactly
  what a dead worker produces) or calls the injectable ``sleep`` — so no real
  process dies, no wall clock elapses, and the wrapped executor can even be a
  plain :class:`~repro.runtime.executor.SerialExecutor`;
* :class:`FaultyEndpoint` — the same idea one tier up, at the fleet's wire
  boundary: it wraps a replica endpoint (anything with
  ``request(op, payload, deadline_s=...)`` and ``close()``, i.e.
  :class:`~repro.fleet.wire.ReplicaClient`) and consults the plan before
  each request under the task key ``(replica_name, op)``.  A scripted
  ``ConnectionResetError`` or
  :class:`~repro.core.errors.ReplicaUnavailable` is indistinguishable from
  a replica dying mid-batch as the router sees it, so the fleet chaos suite
  exercises worker death and failover without killing a real process.

Because faults fire at the boundary rather than inside task functions,
nothing extra has to be picklable and the same plan drives all three
executors identically.  ``plan.fired`` records every injection (rule index,
call index, task) so tests can assert exactly which faults fired.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any, ClassVar

__all__ = ["FaultRule", "FaultPlan", "FaultyExecutor", "FaultyEndpoint"]


@dataclass
class FaultRule:
    """One scripted fault: what to inject, on which tasks, how many times.

    ``kind``
        ``"error"`` raises ``error``; ``"crash"`` raises ``BrokenProcessPool``
        (a dead worker, as the pool reports it); ``"delay"`` sleeps
        ``delay_s`` on the injected clock, then lets the task run.
    ``times``
        How many matching calls fire this rule; ``None`` means every one
        (a permanently-broken target).
    ``match``
        Optional task predicate — e.g. ``lambda task: task[0] == 2`` targets
        shard 2 of a shard-search batch.  ``None`` matches every task.
    ``on_calls``
        Optional set of 1-based indices *within this rule's matching calls*:
        ``{3}`` fires only on the third matching call.
    """

    kind: str
    error: BaseException | None = None
    delay_s: float = 0.0
    times: int | None = 1
    match: Callable[[Any], bool] | None = None
    on_calls: frozenset[int] | None = None
    matched: int = field(default=0, repr=False)
    fired_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("error", "crash", "delay"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "error" and self.error is None:
            raise ValueError("an 'error' rule needs an exception instance")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be positive (or None for always)")

    def consume(self, task: Any) -> bool:
        """Whether this rule fires for ``task`` (advances its counters)."""
        if self.times is not None and self.fired_count >= self.times:
            return False
        if self.match is not None and not self.match(task):
            return False
        self.matched += 1
        if self.on_calls is not None and self.matched not in self.on_calls:
            return False
        self.fired_count += 1
        return True


class FaultPlan:
    """A deterministic, thread-safe script of faults to inject.

    Build it with the chainable :meth:`fail` / :meth:`crash_worker` /
    :meth:`delay` calls, hand it to a :class:`FaultyExecutor`, and the same
    plan produces the same failures on every run.  ``seed`` is carried for
    symmetry with :class:`~repro.runtime.resilience.RuntimePolicy` — rules
    fire by counting, not by chance, so determinism never rests on it.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rules: list[FaultRule] = []
        self.fired: list[tuple[int, int, Any]] = []  # (rule idx, call idx, task)
        self._calls = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    def _add(self, rule: FaultRule) -> FaultPlan:
        self.rules.append(rule)
        return self

    def fail(self, error: BaseException, *, times: int | None = 1,
             match: Callable[[Any], bool] | None = None,
             on_calls: Sequence[int] | None = None) -> FaultPlan:
        """Raise ``error`` on matching calls (``times=None`` → always)."""
        return self._add(FaultRule(
            kind="error", error=error, times=times, match=match,
            on_calls=None if on_calls is None else frozenset(on_calls),
        ))

    def crash_worker(self, *, times: int | None = 1,
                     match: Callable[[Any], bool] | None = None,
                     on_calls: Sequence[int] | None = None) -> FaultPlan:
        """Simulate a dead pool worker (raises ``BrokenProcessPool``)."""
        return self._add(FaultRule(
            kind="crash", times=times, match=match,
            on_calls=None if on_calls is None else frozenset(on_calls),
        ))

    def delay(self, seconds: float, *, times: int | None = 1,
              match: Callable[[Any], bool] | None = None,
              on_calls: Sequence[int] | None = None) -> FaultPlan:
        """Sleep ``seconds`` (on the executor's injectable clock) then proceed."""
        return self._add(FaultRule(
            kind="delay", delay_s=seconds, times=times, match=match,
            on_calls=None if on_calls is None else frozenset(on_calls),
        ))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def apply(self, task: Any, *, sleep: Callable[[float], None]) -> None:
        """Fire the first matching rule for ``task``, if any.

        Raises the scripted exception for ``error``/``crash`` rules; calls
        ``sleep`` for ``delay`` rules and returns so the task proceeds.
        """
        with self._lock:
            self._calls += 1
            call = self._calls
            fired: FaultRule | None = None
            for index, rule in enumerate(self.rules):
                if rule.consume(task):
                    self.fired.append((index, call, task))
                    fired = rule
                    break
        if fired is None:
            return
        if fired.kind == "delay":
            sleep(fired.delay_s)
            return
        if fired.kind == "crash":
            raise BrokenProcessPool(
                "injected worker crash (a process in the pool terminated)"
            )
        raise fired.error

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls


class FaultyExecutor:
    """Inject a :class:`FaultPlan` into any executor at the submit boundary.

    Satisfies the :class:`~repro.runtime.executor.SearchExecutor` protocol.
    Faults fire in the parent process before the task reaches the inner
    executor, so plans may hold unpicklable predicates and scripted
    exceptions even when wrapping a process pool.  ``submit`` returns an
    already-failed future when a fault fires, mirroring how a pool surfaces a
    worker death to the caller.
    """

    executor_name: ClassVar[str] = "faulty"

    def __init__(self, inner, plan: FaultPlan,
                 sleep: Callable[[float], None] = time.sleep):
        self._inner = inner
        self.plan = plan
        self._sleep = sleep

    @property
    def workers(self) -> int:
        return self._inner.workers

    def configure(self, payload: Any) -> None:
        self._inner.configure(payload)

    def map(self, fn, tasks: Sequence[Any]) -> list:
        results = []
        for task in tasks:
            self.plan.apply(task, sleep=self._sleep)
            results.extend(self._inner.map(fn, [task]))
        return results

    def submit(self, fn, task) -> Future:
        try:
            self.plan.apply(task, sleep=self._sleep)
        # repro: allow[REP104] -- scripted fault: the injected error is set on
        # the returned future so the caller's result() re-raises it
        except BaseException as error:
            future: Future = Future()
            future.set_exception(error)
            return future
        return self._inner.submit(fn, task)

    def recover(self) -> None:
        self._inner.recover()

    def close(self) -> None:
        self._inner.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class FaultyEndpoint:
    """Inject a :class:`FaultPlan` at the fleet's wire boundary.

    Duck-types the replica endpoint surface the
    :class:`~repro.fleet.router.FleetRouter` dispatches through.  Before
    each request the plan is consulted with the task ``(name, op)`` — so a
    rule can target one replica's ``annotate_batch`` calls specifically,
    e.g.::

        plan = FaultPlan().fail(ConnectionResetError("replica died"),
                                match=lambda t: t == ("replica-0", "annotate_batch"))

    A firing ``error``/``crash`` rule raises before any bytes move, which is
    exactly what the router observes when a replica dies mid-batch; a
    ``delay`` rule stalls the request on the injectable ``sleep``.  Requests
    the plan lets through hit the real replica, so predictions stay
    bitwise-identical to an unfaulted run.
    """

    def __init__(self, inner, plan: FaultPlan, *, name: str | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        self._inner = inner
        self.plan = plan
        self.name = name if name is not None else getattr(inner, "name", "endpoint")
        self._sleep = sleep

    def request(self, op: str, payload: Any = None, *,
                deadline_s: float | None = None) -> Any:
        self.plan.apply((self.name, op), sleep=self._sleep)
        return self._inner.request(op, payload, deadline_s=deadline_s)

    def close(self) -> None:
        self._inner.close()
