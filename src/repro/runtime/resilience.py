"""Resilience primitives for the execution runtime: deadlines, retries, breakers.

The executors in :mod:`repro.runtime.executor` are deliberately thin — they
run tasks and propagate whatever goes wrong.  This module supplies the policy
layer that production serving needs on top of them:

* :class:`RuntimePolicy` — one frozen config for per-task deadlines, bounded
  retries with exponential backoff + deterministic jitter, and circuit-breaker
  thresholds.  Serialisable (:meth:`~RuntimePolicy.as_dict` /
  :meth:`~RuntimePolicy.from_dict`) so a service bundle can carry the policy
  it was deployed with;
* :class:`CircuitBreaker` — a per-target breaker: closed while the target is
  healthy, open after ``threshold`` *consecutive* failures, half-open (one
  probe per ``reset_s``) once the cool-down elapses;
* :class:`ResilientExecutor` — wraps any
  :class:`~repro.runtime.executor.SearchExecutor` and applies all of the
  above to every task it runs, translating raw failures into the typed
  taxonomy of :mod:`repro.core.errors` (``BrokenProcessPool`` →
  :class:`~repro.core.errors.WorkerCrashed` after a pool respawn attempt,
  ``TimeoutError`` → :class:`~repro.core.errors.DeadlineExceeded`, an open
  breaker → :class:`~repro.core.errors.BreakerOpen`).

Everything time-related is injectable (``clock``/``sleep``) and every random
draw is seeded (``RuntimePolicy.jitter_seed``), so the whole failure surface
is exercisable in tests with zero wall-clock sleeps and bit-for-bit
reproducible schedules — see :mod:`repro.runtime.faults` for the matching
fault injector.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import asdict, dataclass
from collections.abc import Callable, Hashable, Sequence
from typing import Any, ClassVar

from repro.core.errors import BreakerOpen, DeadlineExceeded, WorkerCrashed

__all__ = [
    "RuntimePolicy",
    "Backoff",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientExecutor",
]


@dataclass(frozen=True)
class RuntimePolicy:
    """How hard the runtime fights for a task before giving up on it.

    ``timeout_s``
        Per-task deadline; ``None`` disables deadline enforcement.  The
        deadline applies to waiting on a task's future, so with a genuinely
        asynchronous executor (``thread``/``process``) a hung task is
        abandoned — not interrupted — after this long.
    ``max_retries``
        Bounded re-runs after the first failure (0 = fail fast).
    ``backoff_base_s`` / ``backoff_max_s`` / ``jitter_seed``
        Retry *n* sleeps ``min(max, base * 2**(n-1))`` scaled by a
        deterministic jitter factor in ``[0.5, 1.0]`` drawn from a
        ``jitter_seed``-seeded stream, so concurrent retriers de-correlate
        without making test schedules irreproducible.
    ``breaker_threshold`` / ``breaker_reset_s``
        A target's circuit breaker opens after ``breaker_threshold``
        consecutive failures and allows one half-open probe every
        ``breaker_reset_s`` seconds thereafter.
    """

    timeout_s: float | None = 30.0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    jitter_seed: int = 0
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_reset_s < 0:
            raise ValueError("breaker_reset_s must be non-negative")

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """A JSON-safe payload (for bundle manifests and config files)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> RuntimePolicy:
        """Rebuild a policy, ignoring unknown keys (forward compatibility)."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in payload.items() if key in known})


class Backoff:
    """The policy's retry spacing as a reusable schedule.

    Attempt *n* (1-based) waits ``min(backoff_max_s, backoff_base_s *
    2**(n-1))`` scaled by a deterministic jitter factor in ``[0.5, 1.0]``
    drawn from a ``jitter_seed``-seeded stream.  One instance is one jitter
    stream: :class:`ResilientExecutor` spaces its retries with one, and the
    fleet's :class:`~repro.fleet.supervisor.ReplicaSupervisor` spaces replica
    respawns with another — same policy knobs, same arithmetic, independent
    streams.  Thread-safe.
    """

    def __init__(self, policy: RuntimePolicy):
        self.policy = policy
        self._rng_lock = threading.Lock()
        self._rng = random.Random(policy.jitter_seed)  # guarded-by: _rng_lock

    def next_s(self, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.policy.backoff_max_s,
                    self.policy.backoff_base_s * (2.0 ** (attempt - 1)))
        with self._rng_lock:
            return delay * (0.5 + 0.5 * self._rng.random())


class CircuitBreaker:
    """A consecutive-failure circuit breaker with a half-open probe.

    States (as reported by :attr:`state`):

    * ``closed`` — calls flow; ``threshold`` consecutive failures trip it;
    * ``open`` — calls are refused (:meth:`allow` returns ``False``) until
      ``reset_s`` seconds have passed on the injected ``clock``;
    * ``half_open`` — the cool-down elapsed: :meth:`allow` grants exactly one
      probe per cool-down window.  A success closes the breaker, a failure
      re-opens it (restarting the cool-down).

    Thread-safe; time comes from the injectable ``clock`` so tests can march
    a breaker through its whole life cycle without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int = 3, reset_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0  # guarded-by: _lock
        self._opened_at: float | None = None  # guarded-by: _lock
        # Closed -> open transitions over the breaker's life.
        self.trips = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def _probe_ready_locked(self) -> bool:
        # The _locked suffix is the repo convention (checked by REP101):
        # callers hold self._lock.
        return (self._opened_at is not None
                and self._clock() - self._opened_at >= self.reset_s)

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return self.CLOSED
            return self.HALF_OPEN if self._probe_ready_locked() else self.OPEN

    def allow(self) -> bool:
        """Whether a call may proceed now (consumes the half-open probe)."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probe_ready_locked():
                # Grant one probe and restart the window so concurrent
                # callers don't stampede a barely-recovering target.
                self._opened_at = self._clock()
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._opened_at is not None:
                # A failed half-open probe re-opens immediately.
                self._opened_at = self._clock()
            elif self._consecutive_failures >= self.threshold:
                self._opened_at = self._clock()
                self.trips += 1


class ResilienceStats:
    """Thread-safe fault counters shared by a resilience layer and its host."""

    COUNTERS = ("retries", "timeouts", "worker_crashes", "breaker_skips",
                "fallbacks")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self.COUNTERS, 0)  # guarded-by: _lock

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for key in self._counts:
                self._counts[key] = 0


class _ResilientFuture:
    """A lazy future: the retry/breaker machinery runs inside ``result()``.

    The inner future is submitted eagerly (so independent tasks genuinely
    overlap); deadlines, retries and fallback classification happen when the
    caller collects the result, which is also where the repo's pipelined call
    sites already block.
    """

    def __init__(self, executor: ResilientExecutor, fn, task,
                 inner: Future | None, deadline_s: float | None = None):
        self._executor = executor
        self._fn = fn
        self._task = task
        self._inner = inner
        self._deadline_s = deadline_s
        self._resolved = False
        self._result: Any = None
        self._error: BaseException | None = None

    def _resolve(self) -> None:
        if self._resolved:
            return
        try:
            self._result = self._executor._await(
                self._fn, self._task, self._inner, deadline_s=self._deadline_s
            )
        # repro: allow[REP104] -- future semantics: the error is stored and
        # re-raised to the caller inside result()
        except BaseException as error:
            self._error = error
        self._resolved = True
        self._inner = None

    def result(self, timeout: float | None = None):
        self._resolve()
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None):
        self._resolve()
        return self._error

    def done(self) -> bool:
        return self._resolved or self._inner is None or self._inner.done()

    def cancel(self) -> bool:
        return False if self._resolved else (
            self._inner.cancel() if self._inner is not None else False
        )


class ResilientExecutor:
    """Deadlines, bounded retries and per-target breakers around any executor.

    Satisfies the :class:`~repro.runtime.executor.SearchExecutor` protocol, so
    call sites swap it in transparently.  ``target_of`` maps a task to the
    breaker key protecting it (e.g. the shard index of a shard-search task);
    without it every task shares one ``"default"`` breaker.

    Failure handling per task attempt:

    * future wait past ``policy.timeout_s`` (or the task raising any
      ``TimeoutError``) → counted as a timeout, surfaced as
      :class:`~repro.core.errors.DeadlineExceeded` once retries exhaust;
    * a broken pool (``BrokenExecutor``) → the inner executor's
      :meth:`recover` respawns its workers, the attempt is counted as a
      worker crash and surfaced as :class:`~repro.core.errors.WorkerCrashed`;
    * any other exception → retried as-is.

    Each failure feeds the task's breaker; once it opens, further calls fail
    fast with :class:`~repro.core.errors.BreakerOpen` (no submission at all)
    until the cool-down grants a half-open probe.  Callers that own a
    degraded path (e.g. :class:`~repro.kg.backends.ShardedBackend`'s local
    shard search) catch that and step around the executor entirely.
    """

    executor_name: ClassVar[str] = "resilient"

    def __init__(self, inner, policy: RuntimePolicy | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 target_of: Callable[[Any], Hashable] | None = None,
                 stats: ResilienceStats | None = None):
        self._inner = inner
        self.policy = policy or RuntimePolicy()
        self._clock = clock
        self._sleep = sleep
        self._target_of = target_of or (lambda task: "default")
        self.stats = stats or ResilienceStats()
        self._backoff = Backoff(self.policy)
        self._breakers_lock = threading.Lock()
        self._breakers: dict[Hashable, CircuitBreaker] = {}  # guarded-by: _breakers_lock

    # ------------------------------------------------------------------ #
    # SearchExecutor protocol
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return self._inner.workers

    def configure(self, payload: Any) -> None:
        self._inner.configure(payload)

    def map(self, fn, tasks: Sequence[Any]) -> list:
        tasks = list(tasks)
        futures = [self._submit_if_allowed(fn, task) for task in tasks]
        return [self._await(fn, task, future)
                for task, future in zip(tasks, futures, strict=True)]

    def submit(self, fn, task, deadline_s: float | None = None) -> _ResilientFuture:
        """Submit one task; ``deadline_s`` is an *absolute* clock reading.

        When given, it caps every attempt's wait (and the retry backoff) so
        the whole retry budget fits the caller's remaining request budget —
        this is how a per-request deadline from the gateway tightens the
        policy's per-task ``timeout_s`` instead of being ignored by it.
        """
        return _ResilientFuture(self, fn, task, self._submit_if_allowed(fn, task),
                                deadline_s=deadline_s)

    def recover(self) -> None:
        self._inner.recover()

    def close(self) -> None:
        self._inner.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------ #
    # breakers
    # ------------------------------------------------------------------ #
    def breaker_for(self, target: Hashable) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(target)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.policy.breaker_threshold,
                    reset_s=self.policy.breaker_reset_s,
                    clock=self._clock,
                )
                self._breakers[target] = breaker
            return breaker

    def breaker_states(self) -> dict[Hashable, str]:
        with self._breakers_lock:
            breakers = dict(self._breakers)
        return {target: breaker.state for target, breaker in breakers.items()}

    def breaker_trips(self) -> int:
        with self._breakers_lock:
            return sum(breaker.trips for breaker in self._breakers.values())

    # ------------------------------------------------------------------ #
    # the retry engine
    # ------------------------------------------------------------------ #
    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based): capped exponential + jitter."""
        return self._backoff.next_s(attempt)

    def _submit_if_allowed(self, fn, task) -> Future | None:
        """Submit to the inner executor, or ``None`` when the breaker refuses."""
        if not self.breaker_for(self._target_of(task)).allow():
            return None
        return self._inner.submit(fn, task)

    def run(self, fn, task, deadline_s: float | None = None):
        """Run one task with the full deadline/retry/breaker treatment."""
        return self._await(fn, task, self._submit_if_allowed(fn, task),
                           deadline_s=deadline_s)

    def _await(self, fn, task, future: Future | None,
               deadline_s: float | None = None):
        breaker = self.breaker_for(self._target_of(task))
        attempt = 0
        while True:
            remaining: float | None = None
            if deadline_s is not None:
                remaining = deadline_s - self._clock()
                if remaining <= 0:
                    self.stats.increment("timeouts")
                    raise DeadlineExceeded(
                        f"request budget exhausted before task {task!r} could run"
                    )
            if future is None:
                if not breaker.allow():
                    self.stats.increment("breaker_skips")
                    raise BreakerOpen(
                        f"circuit open for target {self._target_of(task)!r} "
                        f"(>= {breaker.threshold} consecutive failures)"
                    )
                future = self._inner.submit(fn, task)
            # The per-attempt wait is the policy's per-task deadline tightened
            # by whatever is left of the caller's request budget.
            wait_s = self.policy.timeout_s
            if remaining is not None:
                wait_s = remaining if wait_s is None else min(wait_s, remaining)
            try:
                result = future.result(timeout=wait_s)
            except (FuturesTimeout, TimeoutError) as exc:
                future.cancel()  # best effort; a running task is abandoned
                self.stats.increment("timeouts")
                error: BaseException = DeadlineExceeded(
                    f"task exceeded its {wait_s}s deadline"
                )
                error.__cause__ = exc
            except DeadlineExceeded as exc:
                self.stats.increment("timeouts")
                error = exc
            except BrokenExecutor as exc:
                # The pool is dead: respawn it so the retry (or the next
                # caller) gets live workers again.
                self.stats.increment("worker_crashes")
                self._inner.recover()
                error = WorkerCrashed(f"worker pool died running {task!r}")
                error.__cause__ = exc
            # repro: allow[REP104] -- retry engine: the error feeds the
            # breaker and is raised verbatim once retries exhaust (below)
            except BaseException as exc:
                error = exc
            else:
                breaker.record_success()
                return result
            breaker.record_failure()
            if attempt >= self.policy.max_retries:
                raise error
            attempt += 1
            self.stats.increment("retries")
            backoff = self.backoff_s(attempt)
            if deadline_s is not None:
                # Never sleep past the caller's budget; the loop top raises
                # DeadlineExceeded if the budget is gone when we wake.
                backoff = min(backoff, max(0.0, deadline_s - self._clock()))
            self._sleep(backoff)
            future = None
