"""Pluggable execution backends for fan-out work (the ``SearchExecutor`` seam).

The serving layer has two fan-out points with the same shape: sharded
retrieval (``ShardedBackend`` sends every query batch to K index shards) and
the Part-1 prepare stage of :class:`~repro.serve.service.AnnotationService`
(candidate extraction + serialisation for a micro-batch of tables).  Both are
"apply a pure function to independent tasks against some large shared state"
problems, and both want the execution strategy to be configuration rather
than code — one process per core on a serving box, plain threads where memory
is tight, strictly serial in tests and notebooks.

:class:`SearchExecutor` is that seam:

* ``configure(payload)`` installs the shared state (shard arrays, a prepare
  spec) where task functions can reach it — in-process for ``serial`` and
  ``thread``, via the pool initializer for ``process`` (so the payload
  crosses the process boundary **once**, not per task);
* ``map(fn, tasks)`` applies ``fn(payload, task)`` to every task and returns
  results in task order;
* ``submit(fn, task)`` is the async variant used to pipeline stages (Part-1
  of micro-batch *i+1* against PLM inference of micro-batch *i*);
* ``recover()`` discards dead workers so the next call gets a live pool — a
  no-op for ``serial``, a pool respawn for ``thread``/``process``.  The
  resilience layer (:mod:`repro.runtime.resilience`) calls it when it catches
  a ``BrokenExecutor``.

``fn`` must be a **module-level function** and ``payload``/``tasks``/results
must be picklable, because the ``process`` executor ships them to worker
processes.  The ``serial`` and ``thread`` executors impose no such limits but
sharing one contract keeps every call site executor-agnostic.

Executors register under a name (``serial``, ``thread``, ``process``) so
configuration files and :class:`~repro.kg.linker.LinkerConfig` can select one
the same way retrieval backends are selected via
:func:`~repro.kg.backends.create_backend`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from collections.abc import Callable, Sequence
from typing import Any, ClassVar, Protocol, runtime_checkable

from repro.core.errors import WorkerCrashed

__all__ = [
    "SearchExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "register_executor",
    "create_executor",
    "available_executors",
    "default_worker_count",
]


def default_worker_count(cap: int = 8) -> int:
    """Worker count honouring CPU affinity (containers often restrict it)."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    return max(1, min(cap, cpus))


@runtime_checkable
class SearchExecutor(Protocol):
    """Run ``fn(payload, task)`` over independent tasks, results in task order."""

    executor_name: ClassVar[str]

    @property
    def workers(self) -> int: ...

    def configure(self, payload: Any) -> None: ...

    def map(self, fn: Callable[[Any, Any], Any], tasks: Sequence[Any]) -> list: ...

    def submit(self, fn: Callable[[Any, Any], Any], task: Any) -> Future: ...

    def recover(self) -> None: ...

    def close(self) -> None: ...


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_EXECUTORS: dict[str, type] = {}


def register_executor(cls):
    """Register an executor class under its ``executor_name`` (decorator-friendly)."""
    name = getattr(cls, "executor_name", None)
    if not name:
        raise ValueError(f"{cls!r} must define a non-empty executor_name")
    _EXECUTORS[name] = cls
    return cls


def create_executor(name: str, **kwargs) -> SearchExecutor:
    """Instantiate a registered executor by name (kwargs go to its constructor)."""
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; registered: {sorted(_EXECUTORS)}"
        ) from None
    return cls(**kwargs)


def available_executors() -> list[str]:
    """The registered executor names."""
    return sorted(_EXECUTORS)


# --------------------------------------------------------------------------- #
# implementations
# --------------------------------------------------------------------------- #
@register_executor
class SerialExecutor:
    """Run every task inline on the calling thread (the test/debug default).

    ``submit`` executes eagerly and returns an already-resolved future, so
    pipelined call sites degrade to strict alternation with no extra threads.
    """

    executor_name: ClassVar[str] = "serial"

    def __init__(self, max_workers: int = 1):
        self._payload: Any = None

    @property
    def workers(self) -> int:
        return 1

    def configure(self, payload: Any) -> None:
        self._payload = payload

    def map(self, fn, tasks) -> list:
        return [fn(self._payload, task) for task in tasks]

    def submit(self, fn, task) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(self._payload, task))
        # repro: allow[REP104] -- mirrors pool future semantics: the error is
        # delivered to the caller through future.result(), not swallowed
        except BaseException as error:
            future.set_exception(error)
        return future

    def recover(self) -> None:
        pass  # no workers to lose

    def close(self) -> None:
        self._payload = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


@register_executor
class ThreadExecutor:
    """A thread pool: cheap fan-out sharing the caller's address space.

    Python threads only run concurrently where the work releases the GIL
    (BLAS, I/O), so this executor is the middle ground: zero serialization
    cost and shared memory, but partial parallelism for pure-numpy or
    pure-Python tasks — use ``process`` for those.
    """

    executor_name: ClassVar[str] = "thread"

    def __init__(self, max_workers: int | None = None):
        self._workers = default_worker_count() if max_workers is None else int(max_workers)
        if self._workers <= 0:
            raise ValueError("max_workers must be positive")
        self._payload: Any = None
        self._pool: ThreadPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def configure(self, payload: Any) -> None:
        self._payload = payload

    def map(self, fn, tasks) -> list:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [fn(self._payload, task) for task in tasks]
        pool = self._ensure_pool()
        return list(pool.map(fn, [self._payload] * len(tasks), tasks))

    def submit(self, fn, task) -> Future:
        return self._ensure_pool().submit(fn, self._payload, task)

    def recover(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None  # payload survives; next call respawns the pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._payload = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


# Worker-process state for ProcessExecutor.  One payload per worker process,
# installed exactly once by the pool initializer; task functions receive it as
# their first argument just like the in-process executors pass their own.
_PROCESS_PAYLOAD: Any = None


def _init_process_worker(payload: Any) -> None:
    global _PROCESS_PAYLOAD
    _PROCESS_PAYLOAD = payload


def _run_process_task(fn: Callable[[Any, Any], Any], task: Any):
    return fn(_PROCESS_PAYLOAD, task)


@register_executor
class ProcessExecutor:
    """A process pool: true parallelism for GIL-bound work.

    The payload installed by :meth:`configure` is shipped to each worker once
    through the pool initializer (free under ``fork``, one pickle per worker
    under ``spawn``); per-task traffic is only ``(fn, task)`` out and the
    result back.  Reconfiguring tears the pool down so workers never serve a
    stale payload.

    Worker supervision: a dead worker poisons a ``ProcessPoolExecutor`` for
    good (every call raises ``BrokenProcessPool``), so ``map`` respawns the
    pool and re-runs the whole task batch up to ``max_respawns`` times before
    surfacing :class:`~repro.core.errors.WorkerCrashed` — tasks here are pure
    functions of ``(payload, task)``, so a re-run is safe.  ``submit`` leaves
    that decision to the caller (the resilience layer retries per task);
    :meth:`recover` is the shared respawn primitive.
    """

    executor_name: ClassVar[str] = "process"

    def __init__(self, max_workers: int | None = None, max_respawns: int = 1):
        self._workers = default_worker_count() if max_workers is None else int(max_workers)
        if self._workers <= 0:
            raise ValueError("max_workers must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        self.max_respawns = max_respawns
        self._payload: Any = None
        self._pool: ProcessPoolExecutor | None = None
        self._pending_lock = threading.Lock()
        self._pending: set[Future] = set()  # guarded-by: _pending_lock

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_process_worker,
                initargs=(self._payload,),
            )
        return self._pool

    def _track(self, future: Future) -> Future:
        with self._pending_lock:
            self._pending.add(future)
        future.add_done_callback(self._untrack)
        return future

    def _untrack(self, future: Future) -> None:
        with self._pending_lock:
            self._pending.discard(future)

    def _teardown(self, *, wait: bool) -> None:
        """Cancel what has not started, then shut the pool down.

        Cancelling pending futures first means ``shutdown(wait=True)`` only
        waits for tasks already on a worker, so interpreter exit cannot
        deadlock behind a deep queue.
        """
        with self._pending_lock:
            pending = list(self._pending)
        for future in pending:
            future.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def configure(self, payload: Any) -> None:
        self._teardown(wait=True)
        self._payload = payload

    def map(self, fn, tasks) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        respawns = 0
        while True:
            pool = self._ensure_pool()
            try:
                return list(pool.map(_run_process_task, [fn] * len(tasks), tasks))
            except BrokenExecutor as error:
                if respawns >= self.max_respawns:
                    raise WorkerCrashed(
                        f"worker pool died {respawns + 1} time(s) running a "
                        f"batch of {len(tasks)} task(s); giving up"
                    ) from error
                respawns += 1
                self.recover()

    def submit(self, fn, task) -> Future:
        return self._track(self._ensure_pool().submit(_run_process_task, fn, task))

    def recover(self) -> None:
        """Replace a (presumed broken) pool; the payload is reinstalled lazily."""
        self._teardown(wait=False)

    def close(self) -> None:
        self._teardown(wait=True)
        self._payload = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
