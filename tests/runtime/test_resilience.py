"""Fault-matrix tests of the resilience layer: deterministic chaos, no sleeps.

The :class:`~repro.runtime.FaultPlan`/:class:`~repro.runtime.FaultyExecutor`
pair makes every failure mode a scripted, reproducible input; these tests run
the matrix {timeout, crash-once, crash-always, slow-task} against every
registered executor, plus real (non-injected) deadline and worker-death cases
against live thread/process pools.  Everything that can use an injected clock
or sleep does, so the suite stays fast and bit-for-bit repeatable.
"""

from __future__ import annotations

import os
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.errors import BreakerOpen, DeadlineExceeded, WorkerCrashed
from repro.runtime import (
    CircuitBreaker,
    FaultPlan,
    FaultyExecutor,
    ProcessExecutor,
    ResilientExecutor,
    RuntimePolicy,
    SearchExecutor,
    create_executor,
)

EXECUTOR_NAMES = ["serial", "thread", "process"]

#: No wall-clock waiting in injected-fault tests: retries "sleep" into a list
#: and deadlines are disabled unless the test is about deadlines.
FAST_POLICY = RuntimePolicy(timeout_s=None, max_retries=2,
                            breaker_threshold=2, breaker_reset_s=10.0)


def _double(payload, task):
    """Module-level so the process executor can pickle it."""
    return task * 2


def _sleep_for(payload, task):
    time.sleep(task)
    return task


def _crash_once_via_sentinel(payload, task):
    """Kill this worker process the first time the sentinel file exists."""
    try:
        os.remove(payload)
    except FileNotFoundError:
        return task * 2
    os._exit(1)


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# RuntimePolicy
# --------------------------------------------------------------------------- #
class TestRuntimePolicy:
    def test_round_trips_through_dict(self):
        policy = RuntimePolicy(timeout_s=1.5, max_retries=4, jitter_seed=7)
        assert RuntimePolicy.from_dict(policy.as_dict()) == policy

    def test_from_dict_ignores_unknown_keys(self):
        policy = RuntimePolicy.from_dict({"max_retries": 1, "future_knob": True})
        assert policy.max_retries == 1

    @pytest.mark.parametrize("bad", [
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"max_retries": -1},
        {"backoff_base_s": -0.1},
        {"breaker_threshold": 0},
        {"breaker_reset_s": -1.0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RuntimePolicy(**bad)

    def test_none_timeout_disables_deadlines(self):
        assert RuntimePolicy(timeout_s=None).timeout_s is None


# --------------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_fail_fires_exactly_times(self):
        plan = FaultPlan().fail(RuntimeError("boom"), times=2)
        hits = 0
        for task in range(5):
            try:
                plan.apply(task, sleep=lambda s: None)
            except RuntimeError:
                hits += 1
        assert hits == 2
        assert [call for _, call, _ in plan.fired] == [1, 2]

    def test_times_none_fires_forever(self):
        plan = FaultPlan().fail(RuntimeError("boom"), times=None)
        for task in range(4):
            with pytest.raises(RuntimeError):
                plan.apply(task, sleep=lambda s: None)

    def test_match_targets_specific_tasks(self):
        plan = FaultPlan().fail(
            ValueError("shard 2 down"), times=None,
            match=lambda task: task[0] == 2,
        )
        plan.apply((0, "q"), sleep=lambda s: None)  # other shards untouched
        with pytest.raises(ValueError):
            plan.apply((2, "q"), sleep=lambda s: None)

    def test_on_calls_hits_the_nth_matching_call(self):
        plan = FaultPlan().fail(RuntimeError("third only"), on_calls=[3])
        outcomes = []
        for task in range(5):
            try:
                plan.apply(task, sleep=lambda s: None)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "ok", "ok"]

    def test_crash_raises_broken_process_pool(self):
        plan = FaultPlan().crash_worker()
        with pytest.raises(BrokenProcessPool):
            plan.apply("task", sleep=lambda s: None)

    def test_delay_uses_injected_sleep(self):
        plan = FaultPlan().delay(0.05, times=2)
        slept: list[float] = []
        for task in range(3):
            plan.apply(task, sleep=slept.append)
        assert slept == [0.05, 0.05]

    def test_same_script_fires_identically(self):
        def build():
            return (FaultPlan(seed=3)
                    .fail(RuntimeError("a"), on_calls=[2])
                    .delay(0.01, times=1))

        def run(plan):
            record = []
            for task in range(6):
                try:
                    plan.apply(task,
                               sleep=lambda s, task=task: record.append(("sleep", task)))
                except RuntimeError:
                    record.append(("error", task))
            return record, plan.fired

        assert run(build()) == run(build())

    def test_rejects_malformed_rules(self):
        with pytest.raises(ValueError):
            FaultPlan().fail(RuntimeError("x"), times=0)
        with pytest.raises(ValueError):
            FaultPlan().fail(None)  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, reset_s=10, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, reset_s=10, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_grants_one_probe_per_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=10, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10)
        assert breaker.state == "half_open"
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # window restarted: no second probe

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=5, clock=clock)
        breaker.record_failure()
        clock.advance(5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

        breaker.record_failure()
        clock.advance(5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()


# --------------------------------------------------------------------------- #
# ResilientExecutor: the injected fault matrix, every executor
# --------------------------------------------------------------------------- #
@pytest.mark.chaos
class TestFaultMatrix:
    """{timeout, crash-once, crash-always, slow-task} x every executor."""

    @pytest.fixture(params=EXECUTOR_NAMES)
    def inner_name(self, request):
        return request.param

    def _resilient(self, inner_name, plan, policy=FAST_POLICY):
        sleeps: list[float] = []
        inner = create_executor(inner_name, max_workers=2)
        executor = ResilientExecutor(
            FaultyExecutor(inner, plan, sleep=sleeps.append),
            policy, sleep=sleeps.append,
        )
        return executor, sleeps

    def test_timeout_once_is_retried(self, inner_name):
        plan = FaultPlan().fail(TimeoutError("injected hang"), times=1)
        executor, _ = self._resilient(inner_name, plan)
        with executor:
            executor.configure(None)
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert executor.stats.snapshot()["timeouts"] == 1
        assert executor.stats.snapshot()["retries"] == 1

    def test_crash_once_is_retried(self, inner_name):
        plan = FaultPlan().crash_worker(times=1)
        executor, _ = self._resilient(inner_name, plan)
        with executor:
            executor.configure(None)
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert executor.stats.snapshot()["worker_crashes"] == 1

    def test_crash_always_exhausts_retries_and_opens_breaker(self, inner_name):
        plan = FaultPlan().crash_worker(times=None)
        # threshold == retries + 1: the final crash both exhausts the retry
        # budget (surfacing WorkerCrashed) and trips the breaker.
        policy = RuntimePolicy(timeout_s=None, max_retries=1,
                               breaker_threshold=2, breaker_reset_s=10.0)
        executor, _ = self._resilient(inner_name, plan, policy)
        with executor:
            executor.configure(None)
            with pytest.raises(WorkerCrashed):
                executor.map(_double, [1])
            # The breaker is open now: fail fast, no submission at all.
            with pytest.raises(BreakerOpen):
                executor.map(_double, [1])
        assert executor.breaker_states() == {"default": "open"}
        assert executor.breaker_trips() == 1

    def test_slow_task_delays_on_the_injected_clock(self, inner_name):
        plan = FaultPlan().delay(0.5, times=2)
        executor, sleeps = self._resilient(inner_name, plan)
        with executor:
            executor.configure(None)
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert sleeps == [0.5, 0.5]  # no wall-clock time was spent

    def test_retry_backoff_is_deterministic(self, inner_name):
        def run():
            plan = FaultPlan().fail(RuntimeError("flaky"), times=3)
            executor, sleeps = self._resilient(inner_name, plan)
            with executor:
                executor.configure(None)
                results = executor.map(_double, [1, 2, 3, 4])
            return results, sleeps

        first = run()
        second = run()
        assert first == second
        sleeps = first[1]
        # Tasks 1-3 each fail once at submission, so each retries at attempt
        # 1: three sleeps, every one jittered in [0.5, 1.0] of the base
        # backoff, and (because the jitter stream is seeded) not all equal.
        assert len(sleeps) == 3
        raw = FAST_POLICY.backoff_base_s
        for slept in sleeps:
            assert 0.5 * raw <= slept <= raw
        assert len(set(sleeps)) > 1


@pytest.mark.chaos
class TestResilientExecutor:
    def test_satisfies_the_executor_protocol(self):
        plan = FaultPlan()
        inner = create_executor("serial")
        assert isinstance(ResilientExecutor(inner, FAST_POLICY), SearchExecutor)
        assert isinstance(FaultyExecutor(inner, plan), SearchExecutor)

    def test_submit_is_lazy_per_task_retry(self):
        plan = FaultPlan().fail(RuntimeError("boom"), times=1)
        sleeps: list[float] = []
        executor = ResilientExecutor(
            FaultyExecutor(create_executor("serial"), plan),
            FAST_POLICY, sleep=sleeps.append,
        )
        with executor:
            executor.configure(None)
            future = executor.submit(_double, 21)
            assert future.result() == 42
            assert future.exception() is None
        assert len(sleeps) == 1

    def test_retries_exhausted_raises_the_last_error(self):
        plan = FaultPlan().fail(KeyError("always"), times=None)
        executor = ResilientExecutor(
            FaultyExecutor(create_executor("serial"), plan),
            RuntimePolicy(timeout_s=None, max_retries=1, breaker_threshold=5),
            sleep=lambda s: None,
        )
        with executor:
            executor.configure(None)
            with pytest.raises(KeyError):
                executor.submit(_double, 1).result()
        assert executor.stats.snapshot()["retries"] == 1

    def test_breaker_half_open_probe_recovers(self):
        clock = FakeClock()
        plan = FaultPlan().fail(RuntimeError("down"), times=2)
        executor = ResilientExecutor(
            FaultyExecutor(create_executor("serial"), plan),
            RuntimePolicy(timeout_s=None, max_retries=0,
                          breaker_threshold=2, breaker_reset_s=30.0),
            clock=clock, sleep=lambda s: None,
        )
        with executor:
            executor.configure(None)
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    executor.run(_double, 1)
            with pytest.raises(BreakerOpen):
                executor.run(_double, 1)
            clock.advance(30.0)  # cool-down elapses: one probe allowed
            assert executor.run(_double, 1) == 2
            assert executor.breaker_states() == {"default": "closed"}

    def test_real_deadline_on_a_thread_pool(self):
        executor = ResilientExecutor(
            create_executor("thread", max_workers=1),
            RuntimePolicy(timeout_s=0.05, max_retries=0, breaker_threshold=5),
            sleep=lambda s: None,
        )
        executor.configure(None)
        try:
            with pytest.raises(DeadlineExceeded):
                executor.run(_sleep_for, 0.5)
            assert executor.stats.snapshot()["timeouts"] == 1
        finally:
            executor.close()  # waits out the abandoned 0.5s task


# --------------------------------------------------------------------------- #
# real worker death: ProcessExecutor supervision
# --------------------------------------------------------------------------- #
@pytest.mark.chaos
class TestProcessSupervision:
    def test_map_respawns_after_a_real_worker_death(self, tmp_path):
        sentinel = tmp_path / "kill-me"
        sentinel.touch()
        with ProcessExecutor(max_workers=1, max_respawns=1) as executor:
            executor.configure(str(sentinel))
            # First attempt: the worker removes the sentinel and dies, which
            # breaks the pool; the executor respawns it and re-runs the batch.
            assert executor.map(_crash_once_via_sentinel, [1, 2, 3]) == [2, 4, 6]

    def test_map_gives_up_as_worker_crashed_after_max_respawns(self, tmp_path):
        first = tmp_path / "kill-1"
        second = tmp_path / "kill-2"

        with ProcessExecutor(max_workers=1, max_respawns=0) as executor:
            first.touch()
            executor.configure(str(first))
            with pytest.raises(WorkerCrashed):
                executor.map(_crash_once_via_sentinel, [1])

        # With one respawn allowed, two consecutive deaths still give up.
        with ProcessExecutor(max_workers=1, max_respawns=1) as executor:
            executor.configure(str(first))
            first.touch()
            second.touch()

            with pytest.raises(WorkerCrashed):
                executor.map(_crash_twice_via_sentinels,
                             [(str(first), str(second))] * 2)

    def test_resilient_submit_survives_a_real_worker_death(self, tmp_path):
        sentinel = tmp_path / "kill-me"
        sentinel.touch()
        inner = ProcessExecutor(max_workers=1)
        executor = ResilientExecutor(
            inner,
            RuntimePolicy(timeout_s=None, max_retries=1, breaker_threshold=5),
            sleep=lambda s: None,
        )
        with executor:
            executor.configure(str(sentinel))
            assert executor.run(_crash_once_via_sentinel, 5) == 10
        assert executor.stats.snapshot()["worker_crashes"] == 1

    def test_recover_preserves_the_payload(self):
        with ProcessExecutor(max_workers=1) as executor:
            executor.configure("payload")
            assert executor.map(_echo_payload, [0]) == ["payload"]
            executor.recover()
            assert executor.map(_echo_payload, [0]) == ["payload"]


def _crash_twice_via_sentinels(payload, task):
    first, second = task
    for sentinel in (first, second):
        try:
            os.remove(sentinel)
        except FileNotFoundError:
            continue
        os._exit(1)
    return task


def _echo_payload(payload, task):
    return payload


class TestShutdownOrdering:
    def test_close_cancels_pending_futures_before_teardown(self):
        """Regression: close() with a slow task in flight returns promptly.

        With one worker, the first slow task occupies it and the rest queue;
        close() must cancel the queue and wait only for the running task —
        not serially drain 4 x 0.4s of queued work.
        """
        executor = ProcessExecutor(max_workers=1)
        executor.configure(None)
        executor.map(_double, [1])  # warm the pool so workers exist
        futures = [executor.submit(_sleep_for, 0.4) for _ in range(5)]
        start = time.perf_counter()
        executor.close()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.5, f"close() took {elapsed:.2f}s; queue not cancelled"
        assert all(future.done() for future in futures)
        assert any(future.cancelled() for future in futures)

    def test_close_is_reentrant_after_cancellation(self):
        executor = ProcessExecutor(max_workers=1)
        executor.configure(None)
        executor.submit(_double, 1).result()
        executor.close()
        executor.close()  # second close is a no-op, not an error
