"""Tests of the execution runtime: the SearchExecutor seam and its registry.

Every executor must satisfy one observable contract — ``fn(payload, task)``
applied to each task, results in task order, payload installed once by
``configure`` — because the sharded retrieval and serving layers treat the
executor purely as configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import (
    ProcessExecutor,
    SearchExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    create_executor,
    default_worker_count,
    register_executor,
)


def _scale(payload, task):
    """Module-level so the process executor can pickle it."""
    return payload * task


def _raise(payload, task):
    raise RuntimeError(f"task {task} failed")


EXECUTOR_NAMES = ["serial", "thread", "process"]


@pytest.fixture(params=EXECUTOR_NAMES)
def executor(request):
    instance = create_executor(request.param, max_workers=2)
    yield instance
    instance.close()


class TestContract:
    def test_registry_lists_all_three(self):
        assert set(EXECUTOR_NAMES) <= set(available_executors())

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_executor("no-such-executor")

    def test_satisfies_protocol(self, executor):
        assert isinstance(executor, SearchExecutor)

    def test_map_applies_payload_in_task_order(self, executor):
        executor.configure(10)
        assert executor.map(_scale, [1, 2, 3, 4, 5]) == [10, 20, 30, 40, 50]

    def test_map_empty(self, executor):
        executor.configure(1)
        assert executor.map(_scale, []) == []

    def test_submit_returns_future(self, executor):
        executor.configure(7)
        future = executor.submit(_scale, 6)
        assert future.result() == 42

    def test_task_errors_propagate(self, executor):
        executor.configure(None)
        with pytest.raises(RuntimeError):
            executor.map(_raise, [1])
        with pytest.raises(RuntimeError):
            executor.submit(_raise, 2).result()

    def test_reconfigure_replaces_payload(self, executor):
        executor.configure(2)
        assert executor.map(_scale, [3]) == [6]
        executor.configure(5)
        assert executor.map(_scale, [3]) == [15]

    def test_context_manager_closes(self):
        with create_executor("thread", max_workers=2) as ex:
            ex.configure(1)
            assert ex.map(_scale, [4]) == [4]


class TestWorkers:
    def test_worker_counts(self):
        assert SerialExecutor().workers == 1
        assert ThreadExecutor(max_workers=3).workers == 3
        assert ProcessExecutor(max_workers=2).workers == 2

    def test_invalid_worker_count_rejected(self):
        # 0 must be rejected, not silently replaced with the host default.
        for bad in (0, -1):
            with pytest.raises(ValueError):
                ThreadExecutor(max_workers=bad)
            with pytest.raises(ValueError):
                ProcessExecutor(max_workers=bad)

    def test_default_worker_count_respects_affinity(self):
        count = default_worker_count()
        assert 1 <= count <= max(1, len(os.sched_getaffinity(0)))
        assert default_worker_count(cap=1) == 1


class TestProcessIsolation:
    def test_payload_crosses_once_per_worker(self):
        # The payload travels through the pool initializer, not per task: a
        # worker-side mutation of the payload is invisible to later tasks'
        # *arguments* but the parent copy stays untouched either way.
        payload = {"value": 3}
        with ProcessExecutor(max_workers=1) as ex:
            ex.configure(payload)
            assert ex.map(_scale_dict, [2, 4]) == [6, 12]
        assert payload == {"value": 3}


def _scale_dict(payload, task):
    return payload["value"] * task


class TestRegistry:
    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_executor(object)

    def test_register_custom_executor(self):
        @register_executor
        class Doubling(SerialExecutor):
            executor_name = "test-doubling"

            def map(self, fn, tasks):
                return [fn(self._payload, task) * 2 for task in tasks]

        ex = create_executor("test-doubling")
        ex.configure(1)
        assert ex.map(_scale, [3]) == [6]
