"""Tests of the synthetic SemTab-style and VizNet-style corpus generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generation import CellSource, ColumnSpec, NoiseModel, TableFactory, TableTopic
from repro.data.semtab import SemTabConfig, SemTabGenerator
from repro.data.viznet import VizNetConfig, VizNetGenerator
from repro.kg.graph import Predicates


class TestCellSource:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CellSource("magic")

    def test_related_requires_predicate(self):
        with pytest.raises(ValueError):
            CellSource("related")

    def test_literal_requires_attribute(self):
        with pytest.raises(ValueError):
            CellSource("literal")


class TestNoiseModel:
    def test_no_noise_is_identity(self, rng):
        noise = NoiseModel()
        assert noise.corrupt_cell("Peter Steele", rng) == "Peter Steele"

    def test_lowercase_applied(self):
        noise = NoiseModel(lowercase=1.0)
        assert noise.corrupt_cell("Peter", np.random.default_rng(0)) == "peter"

    def test_abbreviation_uses_alias(self):
        noise = NoiseModel(abbreviation=1.0)
        out = noise.corrupt_cell("Peter Steele", np.random.default_rng(0), alias="P. Steele")
        assert out.lower().startswith("p. steele"[:4]) or out == "P. Steele"

    def test_drop_cell_empties(self):
        noise = NoiseModel(drop_cell=1.0)
        assert noise.corrupt_cell("anything", np.random.default_rng(0)) == ""

    def test_empty_cell_untouched(self, rng):
        assert NoiseModel(typo=1.0).corrupt_cell("", rng) == ""


class TestTableFactory:
    def test_sample_subjects_distinct_when_possible(self, world, rng):
        factory = TableFactory(world, rng)
        subjects = factory.sample_subjects("Human", 10)
        assert len(subjects) == 10
        assert len(set(subjects)) == 10

    def test_sample_subjects_unknown_type_raises(self, world, rng):
        factory = TableFactory(world, rng)
        with pytest.raises(ValueError):
            factory.sample_subjects("Nonexistent type", 3)

    def test_build_table_shape_and_labels(self, world, rng):
        factory = TableFactory(world, rng)
        topic = TableTopic("players", "Human", (
            ColumnSpec("name", CellSource("self")),
            ColumnSpec("country", CellSource("related", predicate=Predicates.CITIZENSHIP)),
            ColumnSpec("birthDate", CellSource("literal", attribute="birth_date")),
            ColumnSpec("rank", CellSource("row_index")),
        ))
        table = factory.build_table("t0", topic, n_rows=5)
        assert table.n_rows == 5
        assert table.labels()[0] == "name"
        assert table.columns[3].cells == ["1", "2", "3", "4", "5"]

    def test_self_column_records_source_entities(self, world, rng):
        factory = TableFactory(world, rng)
        topic = TableTopic("people", "Human", (ColumnSpec("name", CellSource("self")),))
        table = factory.build_table("t1", topic, n_rows=4)
        assert all(entity_id is not None for entity_id in table.columns[0].source_entity_ids)

    def test_max_columns_enforced(self, world, rng):
        factory = TableFactory(world, rng)
        topic = TableTopic("wide", "Human", tuple(
            ColumnSpec(f"label{i}", CellSource("self")) for i in range(6)
        ))
        table = factory.build_table("t2", topic, n_rows=3, max_columns=4)
        assert table.n_columns <= 4

    def test_pick_topic_respects_weights(self, world):
        factory = TableFactory(world, np.random.default_rng(0))
        heavy = TableTopic("heavy", "Human", (ColumnSpec("a", CellSource("self")),), weight=50.0)
        light = TableTopic("light", "Human", (ColumnSpec("a", CellSource("self")),), weight=0.01)
        picks = [factory.pick_topic([heavy, light]).name for _ in range(30)]
        assert picks.count("heavy") > 25


class TestSemTabGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SemTabConfig(num_tables=0)
        with pytest.raises(ValueError):
            SemTabConfig(min_rows=10, max_rows=5)

    def test_corpus_size(self, semtab_corpus):
        assert len(semtab_corpus) == 30

    def test_no_numeric_columns(self, semtab_corpus):
        assert semtab_corpus.statistics()["numeric_columns"] == 0

    def test_fine_grained_labels(self, semtab_corpus):
        vocabulary = set(semtab_corpus.label_vocabulary)
        # SemTab labels are KG type labels, capitalised.
        assert any(label[0].isupper() for label in vocabulary)
        assert "name" not in vocabulary

    def test_rows_within_bounds(self, world):
        config = SemTabConfig(num_tables=10, min_rows=5, max_rows=7, seed=1)
        corpus = SemTabGenerator(world, config).generate()
        for table in corpus.tables:
            assert 5 <= table.n_rows <= 7

    def test_deterministic_given_seed(self, world):
        config = SemTabConfig(num_tables=5, seed=77)
        first = SemTabGenerator(world, config).generate()
        second = SemTabGenerator(world, config).generate()
        assert [t.table_id for t in first.tables] == [t.table_id for t in second.tables]
        assert first.tables[0].columns[0].cells == second.tables[0].columns[0].cells

    def test_table_ids_unique(self, semtab_corpus):
        ids = [t.table_id for t in semtab_corpus.tables]
        assert len(ids) == len(set(ids))


class TestVizNetGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            VizNetConfig(num_tables=-1)

    def test_corpus_size(self, viznet_corpus):
        assert len(viznet_corpus) == 40

    def test_contains_numeric_columns(self, viznet_corpus):
        stats = viznet_corpus.statistics()
        assert stats["numeric_columns"] > 0
        assert 0.0 < stats["numeric_column_fraction"] < 0.5

    def test_coarse_labels(self, viznet_corpus):
        vocabulary = set(viznet_corpus.label_vocabulary)
        assert vocabulary & {"name", "team", "year", "city", "artist", "rank", "album"}

    def test_noisier_than_semtab(self, world):
        viznet = VizNetGenerator(world, VizNetConfig(num_tables=30, seed=9)).generate()
        # At least some cells should be lower-cased or abbreviated codes.
        cells = [c for t in viznet.tables for col in t.columns for c in col.cells if c]
        lowercase_fraction = sum(1 for c in cells if c == c.lower() and c.isalpha()) / len(cells)
        assert lowercase_fraction > 0.02

    def test_deterministic_given_seed(self, world):
        config = VizNetConfig(num_tables=5, seed=33)
        first = VizNetGenerator(world, config).generate()
        second = VizNetGenerator(world, config).generate()
        assert first.tables[0].columns[0].cells == second.tables[0].columns[0].cells

    def test_viznet_larger_label_granularity_gap(self, semtab_corpus, viznet_corpus):
        """VizNet has coarser labels: fewer distinct labels per column than SemTab."""
        semtab_stats = semtab_corpus.statistics()
        viznet_stats = viznet_corpus.statistics()
        semtab_ratio = semtab_stats["labels"] / semtab_stats["columns"]
        viznet_ratio = viznet_stats["labels"] / viznet_stats["columns"]
        assert viznet_ratio < semtab_ratio
