"""Tests of CSV/JSON table and corpus persistence."""

from __future__ import annotations

import pytest

from repro.data.corpus import TableCorpus
from repro.data.io import (
    corpus_from_directory,
    corpus_to_directory,
    table_from_csv,
    table_to_csv,
)


class TestTableCSV:
    def test_roundtrip_preserves_cells_and_labels(self, toy_table, tmp_path):
        path = table_to_csv(toy_table, tmp_path / "toy.csv")
        loaded = table_from_csv(path)
        assert loaded.table_id == toy_table.table_id
        assert loaded.labels() == toy_table.labels()
        assert loaded.column_names() == toy_table.column_names()
        for row_index in range(toy_table.n_rows):
            assert loaded.row(row_index) == toy_table.row(row_index)

    def test_roundtrip_without_labels_sidecar(self, toy_table, tmp_path):
        path = table_to_csv(toy_table, tmp_path / "toy.csv", write_labels=False)
        loaded = table_from_csv(path)
        assert loaded.labels() == [None, None, None]
        assert loaded.table_id == "toy"

    def test_explicit_table_id_wins(self, toy_table, tmp_path):
        path = table_to_csv(toy_table, tmp_path / "toy.csv")
        assert table_from_csv(path, table_id="custom").table_id == "custom"

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            table_from_csv(empty)

    def test_ragged_rows_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n2,3\n")
        loaded = table_from_csv(path)
        assert loaded.columns[1].cells == ["", "3"]

    def test_creates_parent_directories(self, toy_table, tmp_path):
        path = table_to_csv(toy_table, tmp_path / "nested" / "dir" / "toy.csv")
        assert path.exists()


class TestCorpusDirectory:
    def test_roundtrip(self, toy_table, tmp_path):
        corpus = TableCorpus("toy-corpus", [toy_table])
        directory = corpus_to_directory(corpus, tmp_path / "corpus")
        loaded = corpus_from_directory(directory)
        assert loaded.name == "toy-corpus"
        assert loaded.label_vocabulary == corpus.label_vocabulary
        assert len(loaded) == 1
        assert loaded.tables[0].labels() == toy_table.labels()

    def test_roundtrip_of_generated_corpus(self, semtab_corpus, tmp_path):
        subset = TableCorpus("subset", semtab_corpus.tables[:5],
                             semtab_corpus.label_vocabulary)
        loaded = corpus_from_directory(corpus_to_directory(subset, tmp_path / "sem"))
        assert len(loaded) == 5
        assert loaded.label_vocabulary == subset.label_vocabulary
        assert loaded.tables[2].columns[0].cells == subset.tables[2].columns[0].cells

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            corpus_from_directory(tmp_path)
