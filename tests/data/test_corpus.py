"""Tests of table corpora and stratified splitting."""

from __future__ import annotations

import pytest

from repro.data.corpus import TableCorpus, stratified_split
from repro.data.table import Column, Table


def _table(table_id: str, label: str, n_rows: int = 3) -> Table:
    return Table(
        table_id=table_id,
        columns=[Column(name="c", cells=[f"{label}-{i}" for i in range(n_rows)], label=label)],
    )


@pytest.fixture()
def labelled_corpus():
    tables = [_table(f"a{i}", "alpha") for i in range(10)]
    tables += [_table(f"b{i}", "beta") for i in range(10)]
    tables += [_table(f"c{i}", "gamma") for i in range(5)]
    return TableCorpus(name="toy", tables=tables)


class TestTableCorpus:
    def test_vocabulary_inferred_and_sorted(self, labelled_corpus):
        assert labelled_corpus.label_vocabulary == ["alpha", "beta", "gamma"]

    def test_label_index_roundtrip(self, labelled_corpus):
        for label in labelled_corpus.label_vocabulary:
            assert labelled_corpus.index_label(labelled_corpus.label_index(label)) == label

    def test_unknown_label_raises(self, labelled_corpus):
        with pytest.raises(KeyError):
            labelled_corpus.label_index("unknown")

    def test_counts_and_sizes(self, labelled_corpus):
        assert len(labelled_corpus) == 25
        assert labelled_corpus.num_columns == 25
        assert labelled_corpus.label_counts()["alpha"] == 10

    def test_statistics_fields(self, labelled_corpus):
        stats = labelled_corpus.statistics()
        assert stats["tables"] == 25
        assert stats["avg_columns_per_table"] == pytest.approx(1.0)
        assert stats["numeric_column_fraction"] == 0.0

    def test_subset_preserves_vocabulary(self, labelled_corpus):
        subset = labelled_corpus.subset(["a0", "b0"])
        assert len(subset) == 2
        assert subset.label_vocabulary == labelled_corpus.label_vocabulary

    def test_explicit_vocabulary_preserved(self):
        corpus = TableCorpus("x", [_table("t", "alpha")], label_vocabulary=["alpha", "zeta"])
        assert corpus.label_vocabulary == ["alpha", "zeta"]


class TestStratifiedSplit:
    def test_proportions_must_sum_to_one(self, labelled_corpus):
        with pytest.raises(ValueError):
            stratified_split(labelled_corpus, proportions=(0.5, 0.2, 0.2))

    def test_all_tables_assigned_exactly_once(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=1)
        all_ids = (
            [t.table_id for t in splits.train.tables]
            + [t.table_id for t in splits.validation.tables]
            + [t.table_id for t in splits.test.tables]
        )
        assert sorted(all_ids) == sorted(t.table_id for t in labelled_corpus.tables)

    def test_split_sizes_roughly_7_1_2(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=2)
        assert len(splits.train) >= len(splits.test) >= len(splits.validation)

    def test_each_class_present_in_train(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=3)
        train_labels = {t.columns[0].label for t in splits.train.tables}
        assert train_labels == {"alpha", "beta", "gamma"}

    def test_deterministic_given_seed(self, labelled_corpus):
        first = stratified_split(labelled_corpus, seed=4)
        second = stratified_split(labelled_corpus, seed=4)
        assert [t.table_id for t in first.train.tables] == [t.table_id for t in second.train.tables]

    def test_vocabulary_shared_across_splits(self, labelled_corpus):
        splits = stratified_split(labelled_corpus)
        assert splits.train.label_vocabulary == splits.test.label_vocabulary


class TestSubsampleTrain:
    def test_keeps_requested_fraction(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=5)
        reduced = splits.subsample_train(0.5, seed=1)
        assert len(reduced.train) == pytest.approx(len(splits.train) * 0.5, abs=1)

    def test_test_set_untouched(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=5)
        reduced = splits.subsample_train(0.2, seed=1)
        assert [t.table_id for t in reduced.test.tables] == [t.table_id for t in splits.test.tables]

    def test_full_proportion_keeps_everything(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=5)
        assert len(splits.subsample_train(1.0).train) == len(splits.train)

    def test_invalid_proportion_rejected(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=5)
        with pytest.raises(ValueError):
            splits.subsample_train(0.0)
        with pytest.raises(ValueError):
            splits.subsample_train(1.5)

    def test_at_least_one_table_kept(self, labelled_corpus):
        splits = stratified_split(labelled_corpus, seed=5)
        assert len(splits.subsample_train(0.01).train) >= 1
