"""Tests of the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.data.metrics import (
    accuracy_score,
    classification_report,
    evaluate_predictions,
    weighted_f1_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score(["a", "b"], ["b", "a"]) == 0.0

    def test_partial(self):
        assert accuracy_score(["a", "b", "c", "d"], ["a", "b", "x", "y"]) == 0.5

    def test_empty_inputs(self):
        assert accuracy_score([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(["a"], ["a", "b"])


class TestWeightedF1:
    def test_perfect_is_one(self):
        assert weighted_f1_score(["a", "b", "a"], ["a", "b", "a"]) == pytest.approx(1.0)

    def test_all_wrong_is_zero(self):
        assert weighted_f1_score(["a", "a"], ["b", "b"]) == 0.0

    def test_weighted_by_support(self):
        # Class 'a' (3 samples) perfectly predicted, class 'b' (1 sample) missed.
        y_true = ["a", "a", "a", "b"]
        y_pred = ["a", "a", "a", "a"]
        score = weighted_f1_score(y_true, y_pred)
        # F1(a) = 2*1*0.75... precision(a)=3/4, recall=1 -> 6/7; F1(b)=0
        expected = (6 / 7) * (3 / 4)
        assert score == pytest.approx(expected)

    def test_less_than_or_equal_accuracy_not_required_but_bounded(self):
        y_true = ["a", "b", "c"]
        y_pred = ["a", "c", "b"]
        assert 0.0 <= weighted_f1_score(y_true, y_pred) <= 1.0

    def test_empty_inputs(self):
        assert weighted_f1_score([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_f1_score(["a"], [])


class TestClassificationReport:
    def test_contains_all_true_classes(self):
        report = classification_report(["a", "b", "b"], ["a", "b", "a"])
        assert set(report) == {"a", "b"}

    def test_precision_recall_values(self):
        report = classification_report(["a", "b", "b"], ["a", "b", "a"])
        assert report["b"]["recall"] == pytest.approx(0.5)
        assert report["b"]["precision"] == pytest.approx(1.0)
        assert report["a"]["precision"] == pytest.approx(0.5)

    def test_support_counts(self):
        report = classification_report(["a", "a", "b"], ["a", "a", "b"])
        assert report["a"]["support"] == 2.0


class TestEvaluatePredictions:
    def test_percentages(self):
        result = evaluate_predictions(["a", "b"], ["a", "a"])
        assert result.accuracy == pytest.approx(50.0)
        assert 0.0 <= result.weighted_f1 <= 100.0
        assert result.num_columns == 2

    def test_report_included_on_request(self):
        result = evaluate_predictions(["a"], ["a"], include_report=True)
        assert result.per_class["a"]["f1"] == pytest.approx(1.0)

    def test_report_omitted_by_default(self):
        assert evaluate_predictions(["a"], ["a"]).per_class == {}

    def test_as_row(self):
        row = evaluate_predictions(["a"], ["a"]).as_row()
        assert row["accuracy"] == pytest.approx(100.0)
