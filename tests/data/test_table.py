"""Tests of the table data model."""

from __future__ import annotations

import pytest

from repro.data.table import Column, Table
from repro.text.ner import EntitySchema


class TestColumn:
    def test_cells_coerced_to_strings(self):
        column = Column(name="x", cells=[1, 2.5, "a"])
        assert column.cells == ["1", "2.5", "a"]

    def test_length(self):
        assert len(Column(name="x", cells=["a", "b"])) == 2

    def test_source_entity_ids_must_match_length(self):
        with pytest.raises(ValueError):
            Column(name="x", cells=["a", "b"], source_entity_ids=["Q1"])

    def test_numeric_column_detection(self):
        assert Column(name="n", cells=["1", "2.5", "1,000"]).is_numeric()

    def test_mixed_column_not_numeric(self):
        assert not Column(name="n", cells=["1", "abc"]).is_numeric()

    def test_empty_cells_ignored_for_numeric(self):
        assert Column(name="n", cells=["1", "", "3"]).is_numeric()

    def test_all_empty_column_not_numeric(self):
        assert not Column(name="n", cells=["", "  "]).is_numeric()

    def test_date_column_not_numeric(self):
        assert not Column(name="d", cells=["1888-11-24", "1990-01-01"]).is_numeric()

    def test_schema_profile_counts(self):
        column = Column(name="x", cells=["42", "Peter Steele", "1888-11-24"])
        profile = column.schema_profile()
        assert profile[EntitySchema.NUMBER] == 1
        assert profile[EntitySchema.PERSON] == 1
        assert profile[EntitySchema.DATE] == 1

    def test_truncated_keeps_prefix(self):
        column = Column(name="x", cells=["a", "b", "c"], source_entity_ids=["1", "2", "3"])
        short = column.truncated(2)
        assert short.cells == ["a", "b"]
        assert short.source_entity_ids == ["1", "2"]
        assert short.label == column.label


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table(table_id="t", columns=[])

    def test_requires_equal_column_lengths(self):
        with pytest.raises(ValueError):
            Table(table_id="t", columns=[
                Column(name="a", cells=["1"]),
                Column(name="b", cells=["1", "2"]),
            ])

    def test_shape_properties(self, toy_table):
        assert toy_table.n_rows == 3
        assert toy_table.n_columns == 3

    def test_cell_and_row_access(self, toy_table):
        assert toy_table.cell(0, 0) == "James Smith"
        assert toy_table.row(1) == ["Mary Johnson", "1874-02-27", "873"]

    def test_iter_rows(self, toy_table):
        rows = list(toy_table.iter_rows())
        assert len(rows) == 3
        assert rows[2][0] == "John Brown"

    def test_labels_and_names(self, toy_table):
        assert toy_table.labels() == ["Cricketer", "birthDate", "points"]
        assert toy_table.column_names() == ["player", "born", "points"]

    def test_with_rows_subset_and_order(self, toy_table):
        reordered = toy_table.with_rows([2, 0])
        assert reordered.n_rows == 2
        assert reordered.cell(0, 0) == "John Brown"
        assert reordered.cell(1, 0) == "James Smith"

    def test_truncated(self, toy_table):
        assert toy_table.truncated(2).n_rows == 2
        assert toy_table.truncated(10).n_rows == 3

    def test_split_columns_no_split_needed(self, toy_table):
        assert toy_table.split_columns(8) == [toy_table]

    def test_split_columns_chunks(self, toy_table):
        pieces = toy_table.split_columns(2)
        assert len(pieces) == 2
        assert pieces[0].n_columns == 2
        assert pieces[1].n_columns == 1
        assert pieces[0].table_id != pieces[1].table_id

    def test_describe_counts_numeric(self, toy_table):
        summary = toy_table.describe()
        assert summary["numeric_columns"] == 1
        assert summary["n_rows"] == 3
