"""Tests of the synthetic WikiData-style world builder."""

from __future__ import annotations

import pytest

from repro.kg.builder import KGWorldConfig, SyntheticKGBuilder
from repro.kg.graph import Predicates


class TestConfig:
    def test_scaled_multiplies_counts(self):
        config = KGWorldConfig(num_people=100, seed=5).scaled(0.5)
        assert config.num_people == 50
        assert config.seed == 5

    def test_scaled_has_minimum(self):
        config = KGWorldConfig(num_awards=10).scaled(0.01)
        assert config.num_awards >= 5


class TestWorldStructure:
    def test_entity_and_triple_counts_positive(self, world):
        summary = world.graph.describe()
        assert summary["entities"] > 300
        assert summary["triples"] > summary["entities"]

    def test_type_entities_registered(self, world):
        for label in ("Human", "Cricketer", "Film", "City", "Protein"):
            assert label in world.type_entity_ids

    def test_available_types_have_instances(self, world):
        types = world.available_types()
        assert "Cricketer" in types or "Basketball player" in types
        for label in types:
            assert world.instances(label)

    def test_people_are_instances_of_human(self, world):
        human_id = world.type_entity_ids["Human"]
        person = world.instances("Human")[0]
        assert human_id in world.graph.types_of(person)

    def test_fine_type_in_one_hop_not_in_type_attribute(self, world):
        """The type-granularity structure: occupation types are one hop away."""
        graph = world.graph
        cricketers = world.instances("Cricketer")
        if not cricketers:
            pytest.skip("no cricketers at this scale")
        cricketer_type = world.type_entity_ids["Cricketer"]
        entity_id = cricketers[0]
        assert cricketer_type not in graph.types_of(entity_id)
        assert cricketer_type in graph.one_hop_neighbors(entity_id)

    def test_athletes_have_team_membership(self, world):
        graph = world.graph
        for occupation in ("Cricketer", "Basketball player", "Footballer"):
            for entity_id in world.instances(occupation)[:5]:
                predicates = {t.predicate for t in graph.outgoing(entity_id)}
                assert Predicates.MEMBER_OF in predicates

    def test_albums_point_at_performers(self, world):
        graph = world.graph
        album = world.instances("Album")[0]
        predicates = {t.predicate for t in graph.outgoing(album)}
        assert Predicates.PERFORMER in predicates

    def test_people_have_birth_dates(self, world):
        person = world.instances("Human")[0]
        assert world.literal(person, "birth_date")

    def test_literal_default_for_missing(self, world):
        person = world.instances("Human")[0]
        assert world.literal(person, "no_such_attribute", default="x") == "x"

    def test_cities_linked_to_countries(self, world):
        graph = world.graph
        city = world.instances("City")[0]
        predicates = {t.predicate for t in graph.outgoing(city)}
        assert Predicates.COUNTRY in predicates or Predicates.CAPITAL_OF in predicates

    def test_proteins_encoded_by_genes(self, world):
        graph = world.graph
        protein = world.instances("Protein")[0]
        assert any(t.predicate == Predicates.ENCODED_BY for t in graph.outgoing(protein))

    def test_subclass_hierarchy_present(self, world):
        graph = world.graph
        cricketer = world.type_entity_ids["Cricketer"]
        athlete = world.type_entity_ids["Athlete"]
        assert any(
            t.predicate == Predicates.SUBCLASS_OF and t.object == athlete
            for t in graph.outgoing(cricketer)
        )


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = KGWorldConfig(seed=42).scaled(0.1)
        first = SyntheticKGBuilder(config).build()
        second = SyntheticKGBuilder(config).build()
        assert first.graph.describe() == second.graph.describe()
        assert [e.label for e in list(first.graph.entities())[:50]] == [
            e.label for e in list(second.graph.entities())[:50]
        ]

    def test_different_seed_different_world(self):
        first = SyntheticKGBuilder(KGWorldConfig(seed=1).scaled(0.1)).build()
        second = SyntheticKGBuilder(KGWorldConfig(seed=2).scaled(0.1)).build()
        first_labels = [e.label for e in list(first.graph.entities())[:200]]
        second_labels = [e.label for e in list(second.graph.entities())[:200]]
        assert first_labels != second_labels
