"""Parity tests: the vectorized ``search()`` against the scalar ``score()`` oracle.

The compiled-array search path must reproduce the reference implementation
exactly — same scores (to 1e-9; in practice bitwise), same ranking, and the
same deterministic ``(-score, doc_id)`` tie-break — on randomized corpora.

The scalar oracle computes in float64, so the oracle-parity tests pin
``dtype=np.float64`` explicitly (the index default is float32 postings since
the recall-parity flip; float32-vs-oracle closeness is covered by
``tests/kg/test_backends.py::TestBM25Dtype``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.bm25 import BM25Index, BM25Parameters, reference_search


def random_corpus(rng: np.random.Generator, n_docs: int, vocab_size: int = 60,
                  max_len: int = 12) -> list[tuple[str, str]]:
    vocab = [f"w{i}" for i in range(vocab_size)]
    documents = []
    for i in range(n_docs):
        length = int(rng.integers(1, max_len))
        words = rng.choice(vocab, size=length, replace=True)
        documents.append((f"doc{i:04d}", " ".join(words)))
    return documents


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_search_matches_scalar_oracle_on_random_corpora(seed):
    rng = np.random.default_rng(seed)
    index = BM25Index.build(random_corpus(rng, n_docs=120), dtype=np.float64)
    vocab = [f"w{i}" for i in range(70)]  # includes out-of-corpus terms
    for _ in range(25):
        length = int(rng.integers(1, 6))
        query = " ".join(rng.choice(vocab, size=length, replace=True))
        top_k = int(rng.integers(1, 20))
        expected = reference_search(index, query, top_k)
        actual = index.search(query, top_k=top_k)
        assert [hit.doc_id for hit in actual] == [hit.doc_id for hit in expected]
        for got, want in zip(actual, expected, strict=True):
            assert got.score == pytest.approx(want.score, abs=1e-9)


@pytest.mark.parametrize("k1,b", [(1.2, 0.75), (0.0, 0.0), (2.0, 1.0), (0.5, 0.3)])
def test_parity_across_parameter_settings(k1, b):
    rng = np.random.default_rng(7)
    documents = random_corpus(rng, n_docs=60)
    index = BM25Index.build(documents, parameters=BM25Parameters(k1=k1, b=b),
                            dtype=np.float64)
    for query in ("w1 w2 w3", "w10", "w5 w5 w5", "w0 w59 w40 w2"):
        expected = reference_search(index, query, top_k=10)
        actual = index.search(query, top_k=10)
        assert [hit.doc_id for hit in actual] == [hit.doc_id for hit in expected]
        for got, want in zip(actual, expected, strict=True):
            assert got.score == pytest.approx(want.score, abs=1e-9)


def test_duplicate_query_terms_accumulate_like_oracle():
    index = BM25Index.build([
        ("a", "apple banana apple"),
        ("b", "apple cherry"),
        ("c", "banana banana"),
    ], dtype=np.float64)
    query = "apple apple banana"
    expected = reference_search(index, query, top_k=10)
    actual = index.search(query, top_k=10)
    assert [(h.doc_id, h.score) for h in actual] == [
        (h.doc_id, h.score) for h in expected
    ]


def test_tie_break_is_lexicographic_at_the_top_k_boundary():
    # Ten identical documents force exact score ties; insertion order is
    # scrambled so only the (-score, doc_id) sort can produce this ranking.
    ids = [f"d{i}" for i in (5, 2, 9, 0, 7, 1, 8, 3, 6, 4)]
    index = BM25Index.build((doc_id, "same exact text") for doc_id in ids)
    hits = index.search("same text", top_k=4)
    assert [hit.doc_id for hit in hits] == ["d0", "d1", "d2", "d3"]
    assert len({hit.score for hit in hits}) == 1


def test_add_document_invalidates_compiled_index():
    index = BM25Index.build([("a", "apple pie"), ("b", "banana split")])
    assert index.search("apple", top_k=5)[0].doc_id == "a"
    assert index.is_finalized
    index.add_document("c", "apple apple apple")
    assert not index.is_finalized
    hits = index.search("apple", top_k=5)
    assert {hit.doc_id for hit in hits} == {"a", "c"}
    expected = reference_search(index, "apple", top_k=5)
    assert [hit.doc_id for hit in hits] == [hit.doc_id for hit in expected]


def test_search_batch_matches_individual_searches():
    rng = np.random.default_rng(11)
    index = BM25Index.build(random_corpus(rng, n_docs=80))
    queries = ["w1 w2", "w3", "", "w999", "w4 w4 w5"]
    batched = index.search_batch(queries, top_k=6)
    assert len(batched) == len(queries)
    for query, hits in zip(queries, batched, strict=True):
        assert hits == index.search(query, top_k=6)


def test_finalize_is_idempotent_and_optional():
    rng = np.random.default_rng(13)
    index = BM25Index.build(random_corpus(rng, n_docs=40))
    index.finalize()
    index.finalize()
    lazy = BM25Index.build(random_corpus(np.random.default_rng(13), n_docs=40))
    assert index.search("w1 w2 w3") == lazy.search("w1 w2 w3")
