"""Tests of the cell-mention entity linker."""

from __future__ import annotations

import pytest

from repro.kg.graph import KnowledgeGraph, Predicates
from repro.kg.linker import EntityLinker, LinkerConfig
from repro.text.ner import EntitySchema


@pytest.fixture()
def small_graph():
    graph = KnowledgeGraph()
    graph.create_entity("Q1", "Peter Steele", description="a musician",
                        schema=EntitySchema.PERSON)
    graph.create_entity("Q2", "Peter Johnson", description="a cricketer",
                        schema=EntitySchema.PERSON)
    graph.create_entity("Q3", "Riverton Tigers", description="a basketball team")
    graph.create_entity("Q4", "Musician", is_type=True)
    graph.add_triple("Q1", Predicates.OCCUPATION, "Q4")
    return graph


@pytest.fixture()
def small_linker(small_graph):
    return EntityLinker(small_graph, LinkerConfig(max_candidates=5))


class TestLinkerConfig:
    def test_rejects_non_positive_candidates(self):
        with pytest.raises(ValueError):
            LinkerConfig(max_candidates=0)


class TestLinking:
    def test_exact_mention_links_to_entity(self, small_linker):
        links = small_linker.link("Peter Steele")
        assert links and links[0].entity_id == "Q1"

    def test_ambiguous_mention_returns_multiple(self, small_linker):
        links = small_linker.link("Peter")
        assert {link.entity_id for link in links} >= {"Q1", "Q2"}

    def test_numbers_never_linked(self, small_linker):
        assert small_linker.link("1234") == []

    def test_dates_never_linked(self, small_linker):
        assert small_linker.link("1888-11-24") == []

    def test_numbers_linked_when_configured(self, small_graph):
        linker = EntityLinker(small_graph, LinkerConfig(link_numbers_and_dates=True))
        # Still no hits (no numeric entity labels), but the schema filter is off
        # so the call goes through the index rather than short-circuiting.
        assert linker.link("1888-11-24") == []

    def test_empty_and_none_mentions(self, small_linker):
        assert small_linker.link("") == []
        assert small_linker.link(None) == []
        assert small_linker.link("   ") == []

    def test_unknown_mention_returns_empty(self, small_linker):
        assert small_linker.link("zzzz qqqq") == []

    def test_max_candidates_respected(self, small_graph):
        linker = EntityLinker(small_graph, LinkerConfig(max_candidates=1))
        assert len(linker.link("Peter")) == 1

    def test_scores_sorted_descending(self, small_linker):
        links = small_linker.link("Peter Steele musician")
        scores = [link.score for link in links]
        assert scores == sorted(scores, reverse=True)


class TestScores:
    def test_best_link_is_first(self, small_linker):
        best = small_linker.best_link("Riverton Tigers")
        assert best is not None and best.entity_id == "Q3"

    def test_best_link_none_for_numbers(self, small_linker):
        assert small_linker.best_link("42") is None

    def test_linking_score_zero_without_links(self, small_linker):
        assert small_linker.linking_score("42") == 0.0

    def test_linking_score_positive_for_match(self, small_linker):
        assert small_linker.linking_score("Peter Steele") > 0.0

    def test_cache_reused_for_repeated_mentions(self, small_linker):
        small_linker.link("Peter Steele")
        before = small_linker.cache_info().hits
        small_linker.link("Peter Steele")
        assert small_linker.cache_info().hits == before + 1


class TestLinkBatch:
    MENTIONS = [
        "Peter Steele",
        "1234",            # number: never linked
        "Riverton Tigers",
        "",
        None,
        "1888-11-24",      # date: never linked
        "Peter Steele",    # duplicate: one retrieval
        "  Peter Steele  ",  # whitespace normalises to the same key
        "zzzz qqqq",
        "PETER",
    ]

    def test_matches_sequential_link(self, small_graph):
        batch_linker = EntityLinker(small_graph, LinkerConfig(max_candidates=5))
        seq_linker = EntityLinker(small_graph, LinkerConfig(max_candidates=5))
        batched = batch_linker.link_batch(self.MENTIONS)
        sequential = [seq_linker.link(mention) for mention in self.MENTIONS]
        assert batched == sequential

    def test_precomputed_schemas_do_not_change_results(self, small_graph):
        from repro.text.ner import detect_schema

        linker = EntityLinker(small_graph, LinkerConfig(max_candidates=5))
        schemas = [detect_schema(m) for m in self.MENTIONS]
        with_schemas = linker.link_batch(self.MENTIONS, schemas=schemas)
        without = linker.link_batch(self.MENTIONS)
        assert with_schemas == without

    def test_schemas_must_align(self, small_linker):
        with pytest.raises(ValueError):
            small_linker.link_batch(["a", "b"], schemas=[EntitySchema.OTHER])

    def test_duplicates_resolved_through_one_retrieval(self, small_graph):
        linker = EntityLinker(small_graph, LinkerConfig(max_candidates=5))
        linker.link_batch(["Peter Steele"] * 50 + ["PETER STEELE", "  peter steele "])
        # One distinct key -> exactly one cache miss for the whole batch.
        assert linker.cache_info().misses == 1

    def test_empty_batch(self, small_linker):
        assert small_linker.link_batch([]) == []

    def test_batch_shares_cache_with_link(self, small_graph):
        linker = EntityLinker(small_graph, LinkerConfig(max_candidates=5))
        expected = linker.link("Peter Steele")
        hits_before = linker.cache_info().hits
        assert linker.link_batch(["Peter Steele"]) == [expected]
        assert linker.cache_info().hits == hits_before + 1


class TestAgainstSyntheticWorld:
    def test_person_labels_link_to_themselves(self, world, linker):
        # Take a handful of person entities and check self-retrieval quality.
        people = world.instances("Human")[:20]
        hits = 0
        for entity_id in people:
            label = world.graph.entity(entity_id).label
            best = linker.best_link(label)
            if best is not None and best.entity_id == entity_id:
                hits += 1
        assert hits >= len(people) * 0.7

    def test_abbreviated_alias_still_retrieves_candidates(self, world, linker):
        entity_id = world.instances("Human")[0]
        alias = world.graph.entity(entity_id).aliases[0]
        links = linker.link(alias)
        assert links  # the surname should at least produce candidates
