"""Tests of the knowledge-graph triple store."""

from __future__ import annotations

import pytest

from repro.kg.graph import KnowledgeGraph, Predicates
from repro.text.ner import EntitySchema


@pytest.fixture()
def tiny_graph():
    graph = KnowledgeGraph()
    graph.create_entity("Q1", "Human", is_type=True)
    graph.create_entity("Q2", "Cricketer", is_type=True)
    graph.create_entity("Q3", "Peter Steele", aliases=("P. Steele",), schema=EntitySchema.PERSON)
    graph.create_entity("Q4", "Riverton Tigers")
    graph.create_entity("Q5", "Rust")
    graph.add_triple("Q3", Predicates.INSTANCE_OF, "Q1")
    graph.add_triple("Q3", Predicates.OCCUPATION, "Q2")
    graph.add_triple("Q3", Predicates.MEMBER_OF, "Q4")
    graph.add_triple("Q5", Predicates.PERFORMER, "Q3")
    return graph


class TestConstruction:
    def test_duplicate_entity_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.create_entity("Q1", "Duplicate")

    def test_triple_requires_known_subject(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.add_triple("Q99", Predicates.INSTANCE_OF, "Q1")

    def test_triple_requires_known_object(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.add_triple("Q1", Predicates.INSTANCE_OF, "Q99")

    def test_len_and_contains(self, tiny_graph):
        assert len(tiny_graph) == 5
        assert "Q3" in tiny_graph and "Q99" not in tiny_graph

    def test_num_triples(self, tiny_graph):
        assert tiny_graph.num_triples == 4


class TestLookups:
    def test_entity_by_id(self, tiny_graph):
        assert tiny_graph.entity("Q3").label == "Peter Steele"

    def test_unknown_entity_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.entity("Q99")

    def test_entities_by_label_case_insensitive(self, tiny_graph):
        assert [e.entity_id for e in tiny_graph.entities_by_label("peter steele")] == ["Q3"]

    def test_entities_by_alias(self, tiny_graph):
        assert [e.entity_id for e in tiny_graph.entities_by_label("P. Steele")] == ["Q3"]

    def test_type_entities(self, tiny_graph):
        assert {e.entity_id for e in tiny_graph.type_entities()} == {"Q1", "Q2"}

    def test_document_text_includes_aliases(self, tiny_graph):
        assert "P. Steele" in tiny_graph.entity("Q3").document_text()


class TestNeighborhoods:
    def test_outgoing_and_incoming(self, tiny_graph):
        assert len(tiny_graph.outgoing("Q3")) == 3
        assert len(tiny_graph.incoming("Q3")) == 1

    def test_one_hop_includes_both_directions(self, tiny_graph):
        neighbors = tiny_graph.one_hop_neighbors("Q3")
        assert neighbors == {"Q1", "Q2", "Q4", "Q5"}

    def test_one_hop_outgoing_only(self, tiny_graph):
        neighbors = tiny_graph.one_hop_neighbors("Q3", include_incoming=False)
        assert neighbors == {"Q1", "Q2", "Q4"}

    def test_one_hop_excludes_self(self, tiny_graph):
        tiny_graph.add_triple("Q3", Predicates.PART_OF, "Q3")
        assert "Q3" not in tiny_graph.one_hop_neighbors("Q3")

    def test_one_hop_of_set_is_union(self, tiny_graph):
        union = tiny_graph.one_hop_neighbors_of_set(["Q3", "Q5"])
        assert union == tiny_graph.one_hop_neighbors("Q3") | tiny_graph.one_hop_neighbors("Q5")

    def test_neighborhood_with_predicates(self, tiny_graph):
        pairs = tiny_graph.neighborhood_with_predicates("Q3")
        assert (Predicates.OCCUPATION, "Q2") in pairs
        assert (Predicates.PERFORMER, "Q5") in pairs

    def test_types_of_uses_instance_of_only(self, tiny_graph):
        assert tiny_graph.types_of("Q3") == {"Q1"}

    def test_describe_counts(self, tiny_graph):
        summary = tiny_graph.describe()
        assert summary["entities"] == 5
        assert summary["type_entities"] == 2
        assert summary["triples"] == 4
        assert summary["predicates"] == 4
