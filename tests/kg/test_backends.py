"""Shared conformance suite for the pluggable retrieval backends.

Every registered :class:`~repro.kg.backends.RetrievalBackend` implementation
must satisfy the same observable contract: deterministic ``(-score, doc_id)``
ranking, positive-score hits only, batch/sequential agreement, and a
compiled-state round trip that serves identical results without the original
documents.  The suite is parametrised over backend factories so a future
third backend only needs to add itself to ``BACKEND_FACTORIES``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.backends import (
    BM25Index,
    CharNGramIndex,
    RetrievalBackend,
    ShardedBackend,
    create_backend,
    backend_from_documents,
    reference_search,
    restore_backend,
    shard_boundaries,
)
from repro.runtime import create_executor

DOCUMENTS = [
    ("e01", "alpha beta gamma"),
    ("e02", "alpha beta"),
    ("e03", "beta gamma delta"),
    ("e04", "delta epsilon"),
    ("e05", "gamma gamma gamma"),
    ("e06", "zeta eta theta"),
    ("e07", "alpha delta theta"),
    ("e08", "iota kappa"),
]

BACKEND_FACTORIES = {
    "bm25": lambda: BM25Index(),  # float32 postings default
    "bm25_f64": lambda: BM25Index(dtype=np.float64),
    "char_ngram": lambda: CharNGramIndex(),
    "char_ngram_f64": lambda: CharNGramIndex(dtype=np.float64),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request):
    index = BACKEND_FACTORIES[request.param]()
    for doc_id, text in DOCUMENTS:
        index.add_document(doc_id, text)
    return index


class TestConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, RetrievalBackend)

    def test_registered_name_round_trips(self, backend):
        name = type(backend).backend_name
        assert type(create_backend(name)) is type(backend)

    def test_len_and_contains(self, backend):
        assert len(backend) == len(DOCUMENTS)
        assert "e01" in backend
        assert "nope" not in backend

    def test_duplicate_document_rejected(self, backend):
        with pytest.raises(ValueError):
            backend.add_document("e01", "duplicate")

    def test_finalize_idempotent_and_invalidated_by_add(self, backend):
        assert not backend.is_finalized
        backend.finalize()
        assert backend.is_finalized
        backend.finalize()
        assert backend.is_finalized
        backend.add_document("e99", "alpha")
        assert not backend.is_finalized
        assert backend.search("alpha", top_k=20)  # self-finalizes

    def test_empty_query_and_nonpositive_top_k(self, backend):
        assert backend.search("", top_k=5) == []
        assert backend.search("   ", top_k=5) == []
        assert backend.search("alpha", top_k=0) == []
        assert backend.search("alpha", top_k=-3) == []

    def test_no_overlap_returns_no_hits(self, backend):
        assert backend.search("qqqqqq wwwwww", top_k=5) == []

    def test_hits_ranked_by_score_then_doc_id(self, backend):
        hits = backend.search("alpha beta gamma delta", top_k=len(DOCUMENTS))
        assert hits, "query overlaps several documents"
        keys = [(-hit.score, hit.doc_id) for hit in hits]
        assert keys == sorted(keys)
        assert all(hit.score > 0.0 for hit in hits)
        assert len({hit.doc_id for hit in hits}) == len(hits)

    def test_top_k_truncates(self, backend):
        full = backend.search("alpha beta gamma delta", top_k=len(DOCUMENTS))
        assert backend.search("alpha beta gamma delta", top_k=2) == full[:2]

    def test_deterministic(self, backend):
        first = backend.search("alpha gamma", top_k=5)
        assert backend.search("alpha gamma", top_k=5) == first

    def test_exact_ties_break_by_doc_id(self):
        # Fresh index per factory: identical documents must tie exactly and
        # come back in doc-id order regardless of insertion order.
        for name, factory in BACKEND_FACTORIES.items():
            index = factory()
            for doc_id in ("b", "c", "a"):
                index.add_document(doc_id, "same exact text")
            hits = index.search("same exact text", top_k=3)
            assert [hit.doc_id for hit in hits] == ["a", "b", "c"], name
            assert len({hit.score for hit in hits}) == 1, name

    def test_search_batch_matches_sequential(self, backend):
        queries = ["alpha", "beta gamma", "", "delta epsilon", "unknownterm"]
        batched = backend.search_batch(queries, top_k=4)
        assert batched == [backend.search(query, top_k=4) for query in queries]

    def test_export_restore_round_trip(self, backend):
        queries = ["alpha", "beta gamma delta", "gamma", "iota kappa"]
        expected = backend.search_batch(queries, top_k=5)
        state = backend.export_state()
        restored = restore_backend(type(backend).backend_name, state)
        assert len(restored) == len(backend)
        assert "e01" in restored
        assert restored.is_finalized
        assert restored.search_batch(queries, top_k=5) == expected

    def test_restored_backend_is_query_only(self, backend):
        restored = restore_backend(type(backend).backend_name, backend.export_state())
        with pytest.raises(RuntimeError):
            restored.add_document("e99", "text")

    def test_restored_bm25_builder_queries_raise(self):
        # Builder-side statistics have no data on a restored index; they must
        # fail loudly instead of returning silently wrong zeros.
        index = BM25Index.build(DOCUMENTS)
        restored = BM25Index.from_state(index.export_state())
        for call in (lambda: restored.score("alpha", "e01"),
                     lambda: restored.idf("alpha"),
                     lambda: restored.document_frequency("alpha"),
                     lambda: restored.average_document_length):
            with pytest.raises(RuntimeError):
                call()

    def test_export_state_is_plain_arrays(self, backend):
        state = backend.export_state()
        assert state
        for key, value in state.items():
            assert isinstance(key, str)
            assert isinstance(value, np.ndarray), key


class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_backend("no-such-backend")
        with pytest.raises(ValueError):
            restore_backend("no-such-backend", {})

    def test_backend_from_documents_builds_finalized(self):
        backend = backend_from_documents(DOCUMENTS, "char_ngram")
        assert backend.is_finalized
        assert len(backend) == len(DOCUMENTS)


class TestCharNGram:
    def test_typo_tolerance(self):
        index = CharNGramIndex()
        for doc_id, text in DOCUMENTS:
            index.add_document(doc_id, text)
        # "gamm" shares most character n-grams with "gamma"; BM25 would
        # find nothing for this query, the n-gram backend must.
        hits = index.search("gamm", top_k=3)
        assert hits
        assert hits[0].doc_id == "e05"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CharNGramIndex(n=1)
        with pytest.raises(ValueError):
            CharNGramIndex(dim=0)
        with pytest.raises(ValueError):
            CharNGramIndex(dtype=np.int32)


class TestBM25Dtype:
    """The ROADMAP's float32-postings lever: halve memory, keep the tie-break."""

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            BM25Index(dtype=np.int64)

    def test_float32_postings_default_float64_opt_in(self):
        # float32 became the default once recall parity vs float64 was
        # recorded on the full corpus generators (see BENCH_retrieval.json
        # and test_float32_recall_parity_on_generator_corpus below).
        index = BM25Index.build(DOCUMENTS)
        index.finalize()
        assert index._posting_impacts.dtype == np.float32
        assert BM25Index.build(DOCUMENTS, dtype=np.float64).export_state()[
            "posting_impacts"
        ].dtype == np.float64

    def test_float32_scores_close_to_scalar_oracle(self, rng):
        vocab = [f"w{i}" for i in range(40)]
        documents = [
            (f"d{i:03d}", " ".join(rng.choice(vocab, size=rng.integers(3, 9))))
            for i in range(150)
        ]
        f32 = BM25Index.build(documents, dtype=np.float32)
        # float64, bitwise-equal to score()
        oracle = BM25Index.build(documents, dtype=np.float64)
        for query in ["w0 w1", "w5", "w10 w11 w12", "w39 w0"]:
            expected = reference_search(oracle, query, top_k=10)
            got = f32.search(query, top_k=10)
            assert [hit.doc_id for hit in got] == [hit.doc_id for hit in expected]
            np.testing.assert_allclose(
                [hit.score for hit in got],
                [hit.score for hit in expected],
                rtol=1e-6,
            )

    def test_float32_tie_break_stable_against_oracle(self):
        # Exact ties (duplicate documents) produce identical impacts in both
        # dtypes, so the (-score, doc_id) order must match the float64 scalar
        # oracle exactly even at the float32 precision.
        documents = [(f"doc{i:02d}", "tied text here") for i in range(30)]
        documents += [("extra1", "tied text"), ("extra2", "here text")]
        f32 = BM25Index.build(documents, dtype=np.float32)
        oracle = BM25Index.build(documents, dtype=np.float64)
        expected = reference_search(oracle, "tied text here", top_k=12)
        got = f32.search("tied text here", top_k=12)
        assert [hit.doc_id for hit in got] == [hit.doc_id for hit in expected]

    def test_float32_recall_parity_on_generator_corpus(self, graph, semtab_corpus):
        # The measurement that justified flipping the default: index the full
        # synthetic world's entity documents in both dtypes and replay real
        # generator-corpus cell mentions; the float32 top-10 must recall the
        # float64 top-10 (set equality per query, order may differ only
        # within genuine near-ties).  The 12k-doc equivalent is recorded in
        # BENCH_retrieval.json as bm25.float32_recall_at_10.
        documents = [
            (entity.entity_id, entity.document_text())
            for entity in graph.entities()
        ]
        f32 = BM25Index.build(documents, dtype=np.float32)
        f64 = BM25Index.build(documents, dtype=np.float64)
        queries: list[str] = []
        for table in semtab_corpus.tables:
            for column in table.columns:
                queries.extend(cell for cell in column.cells[:3] if cell.strip())
        queries = sorted(set(queries))[:400]
        assert len(queries) >= 100, "generator corpus should supply real mentions"
        overlaps = []
        for query in queries:
            want = {hit.doc_id for hit in f64.search(query, top_k=10)}
            got = {hit.doc_id for hit in f32.search(query, top_k=10)}
            overlaps.append(len(want & got) / len(want) if want else 1.0)
        assert np.mean(overlaps) >= 0.999


class TestShardedConformance:
    """Every registered backend must serve bitwise-identically under shards."""

    QUERIES = [
        "alpha",
        "beta gamma delta",
        "",
        "alpha beta gamma delta epsilon zeta",
        "unknownterm",
        "iota kappa",
    ]

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_bitwise_parity_with_unsharded(self, backend, num_shards):
        expected = backend.search_batch(self.QUERIES, top_k=5)
        sharded = ShardedBackend(backend, num_shards=num_shards)
        assert sharded.search_batch(self.QUERIES, top_k=5) == expected
        for query in self.QUERIES:
            assert sharded.search(query, top_k=5) == backend.search(query, top_k=5)

    @pytest.mark.parametrize("executor_name", ["serial", "thread", "process"])
    def test_parity_under_every_executor(self, backend, executor_name):
        expected = backend.search_batch(self.QUERIES, top_k=4)
        executor = create_executor(executor_name, max_workers=2)
        sharded = ShardedBackend(backend, num_shards=3, executor=executor)
        try:
            assert sharded.search_batch(self.QUERIES, top_k=4) == expected
        finally:
            sharded.close()

    def test_tie_break_stable_across_shard_boundaries(self):
        # Identical documents land in different shards (insertion order is
        # the shard order), so merged ties exercise the cross-shard
        # (-score, doc_id) tie-break, not just a single shard's sort.
        for name, factory in BACKEND_FACTORIES.items():
            index = factory()
            for doc_id in ("f", "b", "d", "a", "e", "c"):
                index.add_document(doc_id, "same exact text")
            sharded = ShardedBackend(index, num_shards=3)
            hits = sharded.search("same exact text", top_k=4)
            assert [hit.doc_id for hit in hits] == ["a", "b", "c", "d"], name
            assert len({hit.score for hit in hits}) == 1, name
            assert hits == index.search("same exact text", top_k=4), name

    def test_more_shards_than_documents(self, backend):
        sharded = ShardedBackend(backend, num_shards=len(DOCUMENTS) + 5)
        assert (sharded.search_batch(self.QUERIES, top_k=3)
                == backend.search_batch(self.QUERIES, top_k=3))

    def test_wrapper_surface(self, backend):
        sharded = ShardedBackend(backend, num_shards=2)
        assert sharded.is_finalized
        assert len(sharded) == len(backend)
        assert "e01" in sharded and "nope" not in sharded
        with pytest.raises(RuntimeError):
            sharded.add_document("e99", "text")
        # export_state hands back the canonical *unsharded* arrays, so a
        # bundle saved from a sharded service round-trips through from_state.
        restored = restore_backend(
            type(backend).backend_name, sharded.export_state()
        )
        assert (restored.search_batch(self.QUERIES, top_k=5)
                == backend.search_batch(self.QUERIES, top_k=5))

    def test_invalid_construction(self, backend):
        with pytest.raises(ValueError):
            ShardedBackend(backend, num_shards=0)
        with pytest.raises(TypeError):
            ShardedBackend(ShardedBackend(backend, num_shards=2), num_shards=2)

    def test_shard_boundaries_partition(self):
        for n_docs in (0, 1, 7, 24):
            for num_shards in (1, 2, 5, 30):
                bounds = shard_boundaries(n_docs, num_shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == n_docs
                assert all(lo <= hi for lo, hi in bounds)
                assert all(bounds[i][1] == bounds[i + 1][0]
                           for i in range(len(bounds) - 1))
        with pytest.raises(ValueError):
            shard_boundaries(10, 0)
