"""Tests of the Okapi BM25 index."""

from __future__ import annotations

import math

import pytest

from repro.kg.bm25 import BM25Index, BM25Parameters


@pytest.fixture()
def index():
    documents = [
        ("d1", "Peter Steele gothic metal musician"),
        ("d2", "Peter Johnson cricketer Riverton"),
        ("d3", "Riverton Tigers basketball team"),
        ("d4", "Rust album by Peter Steele"),
        ("d5", "Stonefield city in Norway"),
    ]
    return BM25Index.build(documents)


class TestParameters:
    def test_defaults(self):
        params = BM25Parameters()
        assert params.k1 == pytest.approx(1.2)
        assert params.b == pytest.approx(0.75)

    def test_invalid_k1(self):
        with pytest.raises(ValueError):
            BM25Parameters(k1=-1.0)

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            BM25Parameters(b=1.5)


class TestIndexing:
    def test_length_and_contains(self, index):
        assert len(index) == 5
        assert "d1" in index and "d9" not in index

    def test_duplicate_document_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document("d1", "again")

    def test_average_document_length(self, index):
        assert index.average_document_length > 0

    def test_empty_index_average_length_zero(self):
        assert BM25Index().average_document_length == 0.0

    def test_document_frequency(self, index):
        assert index.document_frequency("peter") == 3
        assert index.document_frequency("unseen") == 0

    def test_term_statistics_normalized_consistently(self, index):
        # Regression: document_frequency used to lower-case its argument while
        # other entry points consumed raw tokens; normalization now lives in
        # one place so every term-level API agrees on case.
        assert index.document_frequency("PETER") == index.document_frequency("peter")
        assert index.idf("Gothic") == index.idf("gothic")
        assert index.score("PETER STEELE", "d1") == index.score("peter steele", "d1")


class TestScoring:
    def test_idf_formula(self, index):
        n_docs, n_term = 5, 3
        expected = math.log((n_docs - n_term + 0.5) / (n_term + 0.5) + 1.0)
        assert index.idf("peter") == pytest.approx(expected)

    def test_rare_terms_have_higher_idf(self, index):
        assert index.idf("gothic") > index.idf("peter")

    def test_score_zero_for_unindexed_document(self, index):
        assert index.score("peter", "d99") == 0.0

    def test_score_zero_without_term_overlap(self, index):
        assert index.score("zebra", "d1") == 0.0

    def test_exact_match_ranks_first(self, index):
        hits = index.search("Peter Steele")
        assert hits[0].doc_id in ("d1", "d4")

    def test_scores_non_negative_and_sorted(self, index):
        hits = index.search("peter riverton")
        scores = [hit.score for hit in hits]
        assert all(score > 0 for score in scores)
        assert scores == sorted(scores, reverse=True)


class TestSearch:
    def test_top_k_limits_results(self, index):
        assert len(index.search("peter", top_k=2)) == 2

    def test_top_k_zero_returns_empty(self, index):
        assert index.search("peter", top_k=0) == []

    def test_empty_query_returns_empty(self, index):
        assert index.search("") == []
        assert index.search("   ") == []

    def test_unknown_terms_return_empty(self, index):
        assert index.search("xylophone quantum") == []

    def test_case_insensitive(self, index):
        assert index.search("PETER STEELE")[0].doc_id == index.search("peter steele")[0].doc_id

    def test_longer_document_penalised(self):
        index = BM25Index.build([
            ("short", "cricket"),
            ("long", "cricket " + "filler " * 30),
        ])
        hits = {hit.doc_id: hit.score for hit in index.search("cricket")}
        assert hits["short"] > hits["long"]

    def test_ties_broken_deterministically(self):
        index = BM25Index.build([("a", "same text"), ("b", "same text")])
        hits = index.search("same text")
        assert [hit.doc_id for hit in hits] == ["a", "b"]
