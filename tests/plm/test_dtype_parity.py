"""Float32 default vs float64 oracle parity for both PLM variants.

The dtype policy's contract is that the float32 compute dtype (with float64
accumulation in the delicate reductions) stays numerically close to a full
float64 run.  These tests build identically-seeded encoders under both
policies and bound the drift of the forward pass and of one training step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.optim import AdamW
from repro.nn.tensor import FLOAT64_POLICY, dtype_policy, no_grad
from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT, MiniDeBERTa, create_encoder


def _config(relative: bool = False) -> PLMConfig:
    config = PLMConfig(vocab_size=400, hidden_size=32, num_layers=2, num_heads=4,
                       intermediate_size=64, max_position_embeddings=64, seed=11)
    return config.as_deberta() if relative else config


def _forward(encoder_cls, relative: bool) -> np.ndarray:
    encoder = encoder_cls(_config(relative))
    encoder.eval()
    rng = np.random.default_rng(3)
    token_ids = rng.integers(0, 400, size=(2, 40))
    mask = np.ones_like(token_ids, dtype=bool)
    mask[1, 30:] = False
    with no_grad():
        return np.asarray(encoder(token_ids, attention_mask=mask).data, dtype=np.float64)


@pytest.mark.parametrize(
    "encoder_cls,relative",
    [(MiniBERT, False), (MiniDeBERTa, True)],
    ids=["minibert", "minideberta"],
)
class TestForwardParity:
    def test_float32_forward_tracks_float64_oracle(self, encoder_cls, relative):
        hidden32 = _forward(encoder_cls, relative)
        with dtype_policy(FLOAT64_POLICY):
            hidden64 = _forward(encoder_cls, relative)
        assert np.isfinite(hidden32).all()
        # Layer-normed activations are O(1); 1e-3 absolute drift over two
        # encoder layers is the same bound the trainer smoke test uses.
        np.testing.assert_allclose(hidden32, hidden64, atol=1e-3)

    def test_factory_matches_variant(self, encoder_cls, relative):
        encoder = create_encoder(_config(relative))
        assert isinstance(encoder, encoder_cls)
        for param in encoder.parameters():
            assert param.data.dtype == np.float32


class TestTrainStepParity:
    @staticmethod
    def _loss_after_step(relative: bool) -> float:
        encoder = create_encoder(_config(relative))
        optimizer = AdamW(encoder.parameters(), lr=1e-3)
        rng = np.random.default_rng(7)
        token_ids = rng.integers(0, 400, size=(2, 32))
        mask = np.ones_like(token_ids, dtype=bool)
        targets = rng.integers(0, 400, size=(2 * 32,))

        hidden = encoder(token_ids, attention_mask=mask)
        logits = encoder.vocabulary_logits(hidden)
        flat = logits.reshape(-1, 400)
        loss = F.cross_entropy(flat, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return float(loss.data)

    @pytest.mark.parametrize("relative", [False, True], ids=["minibert", "minideberta"])
    def test_training_step_loss_within_tolerance(self, relative):
        loss32 = self._loss_after_step(relative)
        with dtype_policy(FLOAT64_POLICY):
            loss64 = self._loss_after_step(relative)
        assert np.isfinite(loss32)
        assert loss32 == pytest.approx(loss64, rel=1e-3, abs=1e-3)
