"""Tests of the MiniBERT / MiniDeBERTa encoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT, MiniDeBERTa, create_encoder


@pytest.fixture(scope="module")
def config():
    return PLMConfig(vocab_size=120, hidden_size=32, num_layers=2, num_heads=4,
                     intermediate_size=64, max_position_embeddings=40, dropout=0.1, seed=1)


@pytest.fixture(scope="module")
def encoder(config):
    model = MiniBERT(config)
    model.eval()
    return model


class TestPLMConfig:
    def test_hidden_size_divisibility(self):
        with pytest.raises(ValueError):
            PLMConfig(hidden_size=30, num_heads=4)

    def test_invalid_dropout(self):
        with pytest.raises(ValueError):
            PLMConfig(dropout=1.0)

    def test_with_vocab_size(self, config):
        assert config.with_vocab_size(999).vocab_size == 999

    def test_as_deberta(self, config):
        assert config.as_deberta().relative_attention is True


class TestMiniBERT:
    def test_output_shape(self, encoder, config):
        ids = np.zeros((3, 10), dtype=np.int64)
        hidden = encoder(ids)
        assert hidden.shape == (3, 10, config.hidden_size)

    def test_sequence_length_limit_enforced(self, encoder, config):
        ids = np.zeros((1, config.max_position_embeddings + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            encoder(ids)

    def test_deterministic_in_eval_mode(self, encoder, rng):
        ids = rng.integers(0, 100, size=(2, 8))
        first = encoder(ids).data
        second = encoder(ids).data
        np.testing.assert_allclose(first, second)

    def test_padding_mask_isolates_positions(self, encoder, rng):
        ids = rng.integers(0, 100, size=(1, 6))
        mask = np.array([[True, True, True, False, False, False]])
        base = encoder(ids, attention_mask=mask).data
        modified = ids.copy()
        modified[0, 4] = (modified[0, 4] + 7) % 100
        out = encoder(modified, attention_mask=mask).data
        np.testing.assert_allclose(base[0, :3], out[0, :3], atol=1e-8)

    def test_position_embeddings_matter(self, encoder, rng):
        ids = rng.integers(1, 100, size=(1, 5))
        swapped = ids[:, ::-1].copy()
        assert not np.allclose(encoder(ids).data[0, 0], encoder(swapped).data[0, -1])

    def test_pooled_output_shape_and_range(self, encoder, rng):
        hidden = encoder(rng.integers(0, 100, size=(2, 6)))
        pooled = encoder.pooled_output(hidden)
        assert pooled.shape == (2, 32)
        assert np.all(np.abs(pooled.data) <= 1.0)

    def test_vocabulary_logits_shape(self, encoder, config, rng):
        hidden = encoder(rng.integers(0, 100, size=(2, 6)))
        logits = encoder.vocabulary_logits(hidden)
        assert logits.shape == (2, 6, config.vocab_size)

    def test_encode_is_alias_of_forward(self, encoder, rng):
        ids = rng.integers(0, 100, size=(1, 4))
        np.testing.assert_allclose(encoder.encode(ids).data, encoder(ids).data)

    def test_gradients_reach_embeddings(self, config, rng):
        model = MiniBERT(config)
        model.train()
        hidden = model(rng.integers(0, 100, size=(2, 5)))
        hidden.sum().backward()
        assert model.embeddings.token.weight.grad is not None
        assert model.embeddings.position.weight.grad is not None

    def test_parameter_count_positive_and_reported(self, encoder):
        assert encoder.num_parameters() > 10_000
        assert encoder.hidden_size == 32


class TestMiniDeBERTa:
    def test_forces_relative_attention(self, config):
        model = MiniDeBERTa(config)
        assert model.config.relative_attention is True

    def test_output_shape(self, config, rng):
        model = MiniDeBERTa(config)
        model.eval()
        assert model(rng.integers(0, 100, size=(2, 7))).shape == (2, 7, 32)

    def test_differs_from_plain_bert(self, config, rng):
        bert = MiniBERT(config)
        deberta = MiniDeBERTa(config)
        bert.eval()
        deberta.eval()
        ids = rng.integers(0, 100, size=(1, 6))
        assert not np.allclose(bert(ids).data, deberta(ids).data)

    def test_relative_bias_receives_gradients(self, config, rng):
        model = MiniDeBERTa(config)
        model.train()
        model(rng.integers(0, 100, size=(1, 5))).sum().backward()
        assert model.relative_bias.weight.grad is not None

    def test_bias_index_cache_reused_per_length(self, config, rng):
        model = MiniDeBERTa(config)
        model.eval()
        model(rng.integers(0, 100, size=(1, 5)))
        model(rng.integers(0, 100, size=(2, 7)))
        assert set(model._bias_index_cache) == {5, 7}
        first = model._bias_index_cache[5]
        model(rng.integers(0, 100, size=(1, 5)))
        assert model._bias_index_cache[5] is first

    def test_cached_bias_matches_autograd_path(self, config, rng):
        model = MiniDeBERTa(config)
        ids = rng.integers(0, 100, size=(2, 6))
        model.eval()
        from repro.nn.tensor import no_grad

        with no_grad():
            cached = model(ids).data  # realises and reuses the value cache
            warm = model(ids).data
        eager = model(ids).data  # grad path recomputes the lookup
        np.testing.assert_array_equal(cached, warm)
        np.testing.assert_allclose(cached, eager, atol=1e-12)

    def test_bias_value_cache_invalidated_on_weight_change(self, config, rng):
        model = MiniDeBERTa(config)
        model.eval()
        ids = rng.integers(0, 100, size=(1, 6))
        from repro.nn.tensor import no_grad

        with no_grad():
            before = model(ids).data.copy()
            # Simulate an optimiser step: bump the distance-0 bucket only, so
            # the change is non-uniform across scores (softmax-visible).
            model.relative_bias.weight.data[model.config.relative_attention_buckets] += 5.0
            after = model(ids).data
        assert not np.allclose(before, after)


class TestCreateEncoder:
    def test_returns_bert_by_default(self, config):
        assert type(create_encoder(config)) is MiniBERT

    def test_returns_deberta_when_relative(self, config):
        assert isinstance(create_encoder(config.as_deberta()), MiniDeBERTa)
