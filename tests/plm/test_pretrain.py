"""Tests of masked-language-model pre-training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.plm.config import PLMConfig
from repro.plm.pretrain import MLMPretrainer, PretrainConfig, build_pretraining_texts


@pytest.fixture(scope="module")
def plm_config():
    return PLMConfig(vocab_size=600, hidden_size=32, num_layers=1, num_heads=2,
                     intermediate_size=48, max_position_embeddings=64, seed=2)


class TestPretrainConfig:
    def test_invalid_mask_probability(self):
        with pytest.raises(ValueError):
            PretrainConfig(mask_probability=0.0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            PretrainConfig(batch_size=0)


class TestBuildPretrainingTexts:
    def test_one_text_per_entity(self, world):
        texts = build_pretraining_texts(world, max_entities=50)
        assert len(texts) == 50

    def test_texts_mention_labels_and_predicates(self, world):
        texts = build_pretraining_texts(world, max_entities=200)
        joined = " ".join(texts)
        assert "instance of" in joined or "occupation" in joined

    def test_all_entities_by_default(self, world):
        texts = build_pretraining_texts(world)
        assert len(texts) == len(world.graph)


class TestMLMPretrainer:
    def test_tokenizer_and_model_built(self, plm_config):
        pretrainer = MLMPretrainer(plm_config, PretrainConfig(steps=0))
        tokenizer, model, losses = pretrainer.pretrain(
            ["the silver tigers basketball team plays in riverton"] * 10
        )
        assert tokenizer.vocab_size <= plm_config.vocab_size
        assert model.config.vocab_size == tokenizer.vocab_size
        assert losses == []

    def test_loss_recorded_per_step(self, plm_config):
        pretrainer = MLMPretrainer(plm_config, PretrainConfig(steps=5, batch_size=4,
                                                              sequence_length=24, seed=1))
        texts = [
            "peter steele is a gothic metal musician from riverton",
            "the crimson horizon is a drama film directed by maria lopez",
            "university of stonefield is located in stonefield norway",
            "wilfred blackburn played cricket for the riverton tigers",
        ] * 5
        _, _, losses = pretrainer.pretrain(texts)
        assert len(losses) == 5
        assert all(np.isfinite(loss) for loss in losses)

    def test_pretraining_reduces_loss(self, plm_config):
        pretrainer = MLMPretrainer(plm_config, PretrainConfig(steps=40, batch_size=8,
                                                              sequence_length=24, seed=3,
                                                              learning_rate=3e-3))
        texts = [
            "alpha beta gamma delta epsilon zeta",
            "beta gamma delta epsilon zeta eta",
            "gamma delta epsilon zeta eta theta",
        ] * 10
        _, _, losses = pretrainer.pretrain(texts)
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_external_tokenizer_reused(self, plm_config, tokenizer):
        pretrainer = MLMPretrainer(plm_config, PretrainConfig(steps=1, batch_size=2,
                                                              sequence_length=16))
        returned_tokenizer, model, _ = pretrainer.pretrain(
            ["peter steele gothic metal"] * 4, tokenizer=tokenizer
        )
        assert returned_tokenizer is tokenizer
        assert model.config.vocab_size == tokenizer.vocab_size

    def test_model_left_in_eval_mode(self, plm_config):
        pretrainer = MLMPretrainer(plm_config, PretrainConfig(steps=2, batch_size=2,
                                                              sequence_length=16))
        _, model, _ = pretrainer.pretrain(["alpha beta gamma delta"] * 6)
        assert model.training is False
