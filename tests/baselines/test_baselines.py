"""Tests of the baseline annotators."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DoduoAnnotator,
    HNNAnnotator,
    MTabAnnotator,
    PLMBaselineConfig,
    RECAAnnotator,
    SherlockAnnotator,
    SudowoodoAnnotator,
    TaBERTAnnotator,
)
from repro.baselines.hnn import HNNConfig, _character_statistics
from repro.baselines.sherlock import SherlockConfig
from repro.data.corpus import TableCorpus
from repro.data.table import Column


TINY_PLM_CONFIG = PLMBaselineConfig(
    epochs=1, batch_size=4, learning_rate=1e-3, pretrain_steps=3,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    vocab_size=1200, max_position_embeddings=160, max_tokens_per_column=14, max_rows=6,
)


@pytest.fixture(scope="module")
def tiny_splits(semtab_splits):
    train = TableCorpus("train", semtab_splits.train.tables[:12],
                        semtab_splits.train.label_vocabulary)
    test = TableCorpus("test", semtab_splits.test.tables[:5],
                       semtab_splits.train.label_vocabulary)
    return train, test


class TestPLMBaselineConfig:
    def test_plm_config_inherits_sizes(self):
        config = PLMBaselineConfig(hidden_size=48, num_heads=4)
        assert config.plm_config().hidden_size == 48

    def test_training_config_disables_kg_components(self):
        training = PLMBaselineConfig().training_config()
        assert training.use_mask_task is False
        assert training.use_feature_vector is False
        assert training.use_candidate_types is False


@pytest.mark.parametrize("annotator_cls", [DoduoAnnotator, TaBERTAnnotator,
                                           SudowoodoAnnotator, RECAAnnotator])
class TestPLMBaselines:
    def test_fit_predict_evaluate(self, annotator_cls, tiny_splits):
        train, test = tiny_splits
        annotator = annotator_cls(TINY_PLM_CONFIG)
        annotator.fit(train)
        y_true, y_pred = annotator.predict_corpus(test)
        assert len(y_true) == len(y_pred) > 0
        assert set(y_pred) <= set(train.label_vocabulary)
        result = annotator.evaluate(test)
        assert 0.0 <= result.accuracy <= 100.0
        assert annotator.fit_seconds > 0

    def test_predict_before_fit_raises(self, annotator_cls, tiny_splits):
        _, test = tiny_splits
        with pytest.raises(RuntimeError):
            annotator_cls(TINY_PLM_CONFIG).predict_corpus(test)


class TestUnitSerialization:
    def test_doduo_one_unit_per_table(self, tiny_splits):
        train, _ = tiny_splits
        annotator = DoduoAnnotator(TINY_PLM_CONFIG)
        annotator.fit(train)
        table = train.tables[0]
        units = annotator.serialize_units(table)
        assert len(units) == 1
        assert units[0].n_columns == min(table.n_columns, TINY_PLM_CONFIG.max_columns)

    def test_sudowoodo_one_unit_per_column(self, tiny_splits):
        train, _ = tiny_splits
        annotator = SudowoodoAnnotator(TINY_PLM_CONFIG)
        annotator.fit(train)
        table = train.tables[0]
        units = annotator.serialize_units(table)
        assert len(units) == min(table.n_columns, TINY_PLM_CONFIG.max_columns)
        assert all(unit.n_columns == 1 for unit in units)

    def test_tabert_uses_snapshot_rows(self, tiny_splits):
        train, _ = tiny_splits
        annotator = TaBERTAnnotator(TINY_PLM_CONFIG)
        annotator.fit(train)
        units = annotator.serialize_units(train.tables[0])
        assert len(units) == 1

    def test_reca_appends_related_columns(self, tiny_splits):
        train, _ = tiny_splits
        annotator = RECAAnnotator(TINY_PLM_CONFIG, num_related_columns=2)
        annotator.fit(train)
        annotator.prepare_corpus_context(train)
        plain = SudowoodoAnnotator(TINY_PLM_CONFIG)
        plain.tokenizer = annotator.tokenizer
        plain._label_to_index = annotator._label_to_index
        reca_units = annotator.serialize_units(train.tables[0])
        plain_units = plain.serialize_units(train.tables[0])
        # Related columns make RECA's sequences at least as long as the plain ones.
        assert sum(u.sequence_length for u in reca_units) >= sum(
            u.sequence_length for u in plain_units
        )


class TestMTab:
    def test_fit_learns_translation_and_fallback(self, graph, linker, tiny_splits):
        train, test = tiny_splits
        annotator = MTabAnnotator(graph, linker=linker)
        annotator.fit(train)
        assert annotator.fallback_label in train.label_vocabulary
        y_true, y_pred = annotator.predict_corpus(test)
        assert len(y_true) == len(y_pred) > 0

    def test_strong_on_kg_derived_corpus(self, graph, linker, semtab_splits):
        annotator = MTabAnnotator(graph, linker=linker)
        annotator.fit(semtab_splits.train)
        result = annotator.evaluate(semtab_splits.test)
        # SemTab-style labels are KG type labels, so the KG-voting baseline
        # must be well above the majority-class floor.
        assert result.accuracy > 50.0

    def test_predict_before_fit_raises(self, graph, linker, tiny_splits):
        _, test = tiny_splits
        with pytest.raises(RuntimeError):
            MTabAnnotator(graph, linker=linker).predict_corpus(test)


class TestHNN:
    def test_character_statistics_shape(self):
        column = Column(name="x", cells=["abc", "de 12", "F-9"])
        assert _character_statistics(column).shape == (8,)

    def test_character_statistics_empty_column(self):
        assert _character_statistics(Column(name="x", cells=["", ""])).shape == (8,)

    def test_fit_and_predict(self, graph, linker, tiny_splits):
        train, test = tiny_splits
        annotator = HNNAnnotator(graph, HNNConfig(epochs=5), linker=linker)
        annotator.fit(train)
        y_true, y_pred = annotator.predict_corpus(test)
        assert len(y_true) == len(y_pred) > 0
        assert set(y_pred) <= set(train.label_vocabulary)

    def test_predict_before_fit_raises(self, graph, linker, tiny_splits):
        _, test = tiny_splits
        with pytest.raises(RuntimeError):
            HNNAnnotator(graph, linker=linker).predict_corpus(test)


class TestSherlock:
    def test_fit_and_predict(self, tiny_splits):
        train, test = tiny_splits
        annotator = SherlockAnnotator(SherlockConfig(epochs=5, vocabulary_size=100))
        annotator.fit(train)
        result = annotator.evaluate(test)
        assert 0.0 <= result.accuracy <= 100.0

    def test_token_vocabulary_limited(self, tiny_splits):
        train, _ = tiny_splits
        annotator = SherlockAnnotator(SherlockConfig(epochs=1, vocabulary_size=50))
        annotator.fit(train)
        assert len(annotator._token_index) <= 50

    def test_predict_before_fit_raises(self, tiny_splits):
        _, test = tiny_splits
        with pytest.raises(RuntimeError):
            SherlockAnnotator().predict_corpus(test)
