"""Tests of the multi-task trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import KGLinkModel
from repro.core.pipeline import KGCandidateExtractor, Part1Config
from repro.core.serialization import SerializerConfig, TableSerializer
from repro.core.trainer import IGNORE_INDEX, KGLinkTrainer, TrainingConfig
from repro.nn.losses import FixedWeightLoss, UncertaintyWeightedLoss
from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT


@pytest.fixture(scope="module")
def extractor(graph, linker):
    return KGCandidateExtractor(graph, Part1Config(top_k_rows=5), linker=linker)


@pytest.fixture(scope="module")
def processed(extractor, semtab_corpus):
    return [extractor.process_table(table) for table in semtab_corpus.tables[:12]]


@pytest.fixture(scope="module")
def label_vocabulary(semtab_corpus):
    return list(semtab_corpus.label_vocabulary)


def _make_trainer(tokenizer, label_vocabulary, **config_overrides):
    encoder = MiniBERT(PLMConfig(vocab_size=tokenizer.vocab_size, hidden_size=32, num_layers=1,
                                 num_heads=2, intermediate_size=48,
                                 max_position_embeddings=160, seed=6))
    model = KGLinkModel(encoder, num_labels=len(label_vocabulary), seed=6)
    serializer = TableSerializer(tokenizer, SerializerConfig(max_tokens_per_column=14,
                                                             max_columns=6,
                                                             max_feature_tokens=10,
                                                             max_sequence_length=150))
    config_kwargs = {"epochs": 1, "batch_size": 4, "learning_rate": 1e-3, "seed": 6}
    config_kwargs.update(config_overrides)
    config = TrainingConfig(**config_kwargs)
    return KGLinkTrainer(model, serializer, label_vocabulary, config)


class TestTrainingConfig:
    def test_rejects_negative_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=-1)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)


class TestPrepareExamples:
    def test_example_contains_masked_and_ground_truth(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        example = trainer.prepare_example(processed[0])
        assert example.masked is not None
        assert example.ground_truth is not None
        assert len(example.label_indices) == example.masked.n_columns

    def test_ground_truth_omitted_when_mask_task_disabled(self, tokenizer, label_vocabulary,
                                                          processed):
        trainer = _make_trainer(tokenizer, label_vocabulary, use_mask_task=False)
        example = trainer.prepare_example(processed[0])
        assert example.ground_truth is None

    def test_unknown_labels_mapped_to_ignore_index(self, tokenizer, processed):
        trainer = _make_trainer(tokenizer, ["OnlyLabel"])
        example = trainer.prepare_example(processed[0])
        assert set(example.label_indices) <= {0, IGNORE_INDEX}

    def test_prepare_examples_length(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        examples = trainer.prepare_examples(processed)
        assert len(examples) == len(processed)


class TestLossSelection:
    def test_adaptive_loss_by_default(self, tokenizer, label_vocabulary):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        assert isinstance(trainer.combined_loss, UncertaintyWeightedLoss)

    def test_fixed_loss_when_configured(self, tokenizer, label_vocabulary):
        trainer = _make_trainer(tokenizer, label_vocabulary,
                                fixed_log_sigma0_sq=0.4, fixed_log_sigma1_sq=1.0)
        assert isinstance(trainer.combined_loss, FixedWeightLoss)
        assert trainer.combined_loss.sigma_values == (0.4, 1.0)


class TestTrainingLoop:
    def test_training_records_history(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        examples = trainer.prepare_examples(processed)
        history = trainer.train(examples[:8], examples[8:])
        assert history.epochs_completed == 1
        assert len(history.step_losses) == 2  # 8 tables / batch size 4
        assert len(history.sigma0_trajectory) == len(history.step_losses)
        assert len(history.validation_accuracy) == 1
        assert history.training_seconds > 0

    def test_training_requires_examples(self, tokenizer, label_vocabulary):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_dmlm_losses_zero_without_mask_task(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary, use_mask_task=False)
        examples = trainer.prepare_examples(processed[:8])
        history = trainer.train(examples)
        assert all(value == 0.0 for value in history.dmlm_losses)

    def test_dmlm_losses_positive_with_mask_task(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary, use_mask_task=True)
        examples = trainer.prepare_examples(processed[:8])
        history = trainer.train(examples)
        assert any(value > 0.0 for value in history.dmlm_losses)

    def test_loss_decreases_over_epochs(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary, epochs=6, use_mask_task=False)
        examples = trainer.prepare_examples(processed)
        history = trainer.train(examples)
        first = np.mean(history.classification_losses[:3])
        last = np.mean(history.classification_losses[-3:])
        assert last < first

    def test_bucketed_training_groups_batches_by_length(self, tokenizer,
                                                        label_vocabulary,
                                                        processed):
        trainer = _make_trainer(tokenizer, label_vocabulary,
                                length_bucketing=True, batch_size=3)
        examples = trainer.prepare_examples(processed)
        lengths = np.asarray([ex.masked.sequence_length for ex in examples])
        assert len(set(lengths.tolist())) > 1, "fixture tables should be ragged"
        order = trainer._bucketed_training_order(
            trainer.rng.permutation(len(examples)), lengths
        )
        # Same multiset of examples, and a strictly smaller (or equal)
        # padding bill than the identity order.
        assert sorted(order.tolist()) == list(range(len(examples)))
        padded = trainer._padded_tokens(lengths, order, batch_size=3)
        identity = trainer._padded_tokens(
            lengths, np.arange(len(examples)), batch_size=3
        )
        assert padded <= identity

    def test_bucketed_training_runs_and_learns(self, tokenizer, label_vocabulary,
                                               processed):
        trainer = _make_trainer(tokenizer, label_vocabulary, epochs=2,
                                length_bucketing=True, use_mask_task=False)
        examples = trainer.prepare_examples(processed)
        history = trainer.train(examples[:8], examples[8:])
        assert history.epochs_completed == 2
        assert len(history.step_losses) == 4  # 8 tables / batch size 4, 2 epochs

    def test_default_training_path_is_bitwise_stable(self, tokenizer,
                                                     label_vocabulary,
                                                     processed):
        # The bucketing flag defaults off and must not perturb the seeded
        # rng stream: two identical runs stay bitwise-identical.
        first = _make_trainer(tokenizer, label_vocabulary, epochs=2)
        second = _make_trainer(tokenizer, label_vocabulary, epochs=2)
        examples_a = first.prepare_examples(processed[:8])
        examples_b = second.prepare_examples(processed[:8])
        assert first.train(examples_a).step_losses == second.train(
            examples_b
        ).step_losses

    def test_training_updates_parameters(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        before = {name: param.data.copy() for name, param in trainer.model.named_parameters()}
        trainer.train(trainer.prepare_examples(processed[:6]))
        changed = any(
            not np.allclose(before[name], param.data)
            for name, param in trainer.model.named_parameters()
        )
        assert changed


class TestPredictionAndEvaluation:
    def test_predictions_aligned_with_columns(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        examples = trainer.prepare_examples(processed[:5])
        trainer.train(examples)
        predictions = trainer.predict(examples)
        assert len(predictions) == 5
        for example, predicted in zip(examples, predictions, strict=True):
            assert len(predicted) == example.masked.n_columns
            assert all(label in label_vocabulary for label in predicted)

    def test_predict_empty_list(self, tokenizer, label_vocabulary):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        assert trainer.predict([]) == []

    def test_bucketed_predict_preserves_table_order(self, tokenizer, label_vocabulary,
                                                    processed):
        trainer = _make_trainer(tokenizer, label_vocabulary, batch_size=3)
        # Ragged table sizes: sorting by length must not leak into the output order.
        examples = trainer.prepare_examples(processed)
        lengths = [example.masked.sequence_length for example in examples]
        assert len(set(lengths)) > 1, "fixture tables should have ragged lengths"
        bucketed = trainer.predict(examples, length_bucketing=True)
        stats_bucketed = trainer.last_bucket_stats
        plain = trainer.predict(examples, length_bucketing=False)
        stats_plain = trainer.last_bucket_stats
        assert bucketed == plain
        assert stats_bucketed["length_bucketing"] is True
        assert stats_plain["length_bucketing"] is False
        assert stats_bucketed["padded_tokens"] <= stats_bucketed["padded_tokens_unbucketed"]
        assert stats_plain["padded_tokens"] == stats_plain["padded_tokens_unbucketed"]
        assert stats_bucketed["useful_tokens"] <= stats_bucketed["padded_tokens"]

    def test_bucket_stats_reset_on_empty_predict(self, tokenizer, label_vocabulary):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        trainer.predict([])
        assert trainer.last_bucket_stats is None

    def test_feature_vectors_bucketed_matches_full_width(self, tokenizer,
                                                         label_vocabulary):
        from repro.nn.tensor import no_grad

        trainer = _make_trainer(tokenizer, label_vocabulary)
        trainer.model.eval()
        # Ragged feature blocks: every row a different true length, padded to
        # the global width the serializer would emit.
        rng = np.random.default_rng(3)
        n_rows, width = 13, 10
        vocab = trainer.serializer.vocab
        features = np.full((n_rows, width), vocab.pad_id, dtype=np.int64)
        attention = np.zeros((n_rows, width), dtype=bool)
        for row in range(n_rows):
            length = int(rng.integers(1, width + 1))
            features[row, 0] = vocab.cls_id
            if length > 1:
                features[row, 1:length] = rng.integers(
                    5, tokenizer.vocab_size, size=length - 1
                )
            attention[row, :length] = True
        lengths = attention.sum(axis=1)
        assert len(set(lengths.tolist())) > 1
        trainer.FEATURE_BUCKET_SIZE = 4  # force several ragged chunks
        with no_grad():
            full = trainer.model.feature_vectors(features, attention)
            bucketed = trainer._feature_vectors(features, attention)
        assert bucketed.data.shape == full.data.shape
        # Trimming the sequence width changes BLAS blocking, so agreement is
        # up to float32 rounding noise, not bitwise.
        np.testing.assert_allclose(bucketed.data, full.data, rtol=1e-4, atol=1e-6)

    def test_predictions_invariant_to_feature_bucket_size(self, tokenizer,
                                                          label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        examples = trainer.prepare_examples(processed)
        trainer.FEATURE_BUCKET_SIZE = 2
        tiny_buckets = trainer.predict(examples)
        trainer.FEATURE_BUCKET_SIZE = 10_000
        one_bucket = trainer.predict(examples)
        assert tiny_buckets == one_bucket

    def test_feature_vectors_full_width_while_training(self, tokenizer,
                                                       label_vocabulary, processed):
        from repro.nn.tensor import Tensor

        trainer = _make_trainer(tokenizer, label_vocabulary)
        trainer.model.train()
        flat = trainer._flatten_columns(trainer.prepare_examples(processed[:4]))
        out = trainer._feature_vectors(flat["features"], flat["feature_attention"])
        # The training path must return the graph-connected single call (the
        # bucketed path yields a detached constant tensor).
        assert isinstance(out, Tensor)
        assert out.requires_grad
        assert out.data.shape[0] == flat["features"].shape[0]

    def test_evaluate_returns_percentages(self, tokenizer, label_vocabulary, processed):
        trainer = _make_trainer(tokenizer, label_vocabulary)
        examples = trainer.prepare_examples(processed[:5])
        trainer.train(examples)
        result = trainer.evaluate(examples)
        assert 0.0 <= result.accuracy <= 100.0
        assert 0.0 <= result.weighted_f1 <= 100.0
        assert result.num_columns > 0
