"""Tests of the Doduo-style table serialisation for the encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import KGCandidateExtractor, Part1Config
from repro.core.serialization import SerializerConfig, TableSerializer


@pytest.fixture(scope="module")
def extractor(graph, linker):
    return KGCandidateExtractor(graph, Part1Config(top_k_rows=5), linker=linker)


@pytest.fixture(scope="module")
def processed_tables(extractor, semtab_corpus, viznet_corpus):
    tables = semtab_corpus.tables[:3] + viznet_corpus.tables[:3]
    return [extractor.process_table(table) for table in tables]


@pytest.fixture(scope="module")
def serializer(tokenizer):
    return TableSerializer(tokenizer, SerializerConfig(max_tokens_per_column=16,
                                                       max_columns=6,
                                                       max_feature_tokens=12,
                                                       max_sequence_length=128))


class TestSerializerConfig:
    def test_rejects_tiny_column_budget(self):
        with pytest.raises(ValueError):
            SerializerConfig(max_tokens_per_column=2)

    def test_rejects_non_positive_columns(self):
        with pytest.raises(ValueError):
            SerializerConfig(max_columns=0)


class TestMaskedSerialization:
    def test_one_cls_per_column(self, serializer, processed_tables):
        for processed in processed_tables:
            serialized = serializer.serialize(processed)
            expected = min(processed.original.n_columns, serializer.config.max_columns)
            assert serialized.n_columns == expected
            # Every CLS position indeed holds the CLS token.
            cls_id = serializer.vocab.cls_id
            for position in serialized.cls_positions:
                assert serialized.token_ids[position] == cls_id

    def test_mask_token_follows_cls(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0], use_mask_token=True)
        mask_id = serializer.vocab.mask_id
        for cls_pos, mask_pos in zip(serialized.cls_positions, serialized.mask_positions, strict=True):
            assert mask_pos == cls_pos + 1
            assert serialized.token_ids[mask_pos] == mask_id

    def test_no_mask_when_disabled(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0], use_mask_token=False)
        assert all(position == -1 for position in serialized.mask_positions)
        assert serializer.vocab.mask_id not in serialized.token_ids

    def test_sequence_ends_with_sep_or_truncated(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0])
        assert serialized.sequence_length <= serializer.config.max_sequence_length

    def test_column_budget_respected(self, serializer, processed_tables):
        for processed in processed_tables:
            serialized = serializer.serialize(processed)
            positions = serialized.cls_positions + [serialized.sequence_length]
            for index, (start, stop) in enumerate(zip(positions[:-1], positions[1:], strict=True)):
                # The last column's span also contains the trailing [SEP].
                slack = 1 if index == len(positions) - 2 else 0
                assert stop - start <= serializer.config.max_tokens_per_column + slack

    def test_attention_mask_all_true(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0])
        assert serialized.attention_mask.all()

    def test_column_labels_preserved(self, serializer, processed_tables):
        processed = processed_tables[0]
        serialized = serializer.serialize(processed)
        expected = [info.label for info in processed.columns[: serialized.n_columns]]
        assert serialized.column_labels == expected


class TestGroundTruthSerialization:
    def test_label_positions_set(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0], ground_truth=True)
        assert any(position >= 0 for position in serialized.label_positions)
        assert all(position == -1 for position in serialized.mask_positions)

    def test_ground_truth_contains_label_tokens(self, serializer, processed_tables):
        processed = processed_tables[0]
        serialized = serializer.serialize(processed, ground_truth=True)
        label = processed.columns[0].label
        label_ids = serializer.tokenizer.encode(label, max_length=4)
        position = serialized.label_positions[0]
        np.testing.assert_array_equal(
            serialized.token_ids[position : position + len(label_ids)], label_ids
        )

    def test_masked_and_ground_truth_differ_only_near_labels(self, serializer, processed_tables):
        processed = processed_tables[0]
        masked = serializer.serialize(processed, ground_truth=False)
        truth = serializer.serialize(processed, ground_truth=True)
        # Same number of columns, possibly different sequence lengths because a
        # label can tokenise into several pieces.
        assert masked.n_columns == truth.n_columns


class TestCandidateTypeInjection:
    def test_candidate_types_tokens_present(self, serializer, extractor, semtab_corpus, tokenizer):
        processed = extractor.process_table(semtab_corpus.tables[0])
        with_types = serializer.serialize(processed, use_candidate_types=True)
        without_types = serializer.serialize(processed, use_candidate_types=False)
        if any(info.candidate_types for info in processed.columns):
            assert with_types.sequence_length > without_types.sequence_length

    def test_numeric_summary_injected_for_numeric_columns(self, serializer, extractor, toy_table):
        processed = extractor.process_table(toy_table)
        serialized = serializer.serialize(processed, use_candidate_types=True)
        # The numeric column's summary values are numbers; at least one digit
        # token should appear inside that column's block.
        assert serialized.sequence_length > 0


class TestFeatureSerialization:
    def test_feature_block_shapes(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0])
        n_columns = serialized.n_columns
        assert serialized.feature_token_ids.shape == (n_columns,
                                                      serializer.config.max_feature_tokens)
        assert serialized.feature_attention_mask.shape == serialized.feature_token_ids.shape

    def test_empty_feature_sequences_padded(self, serializer, extractor, toy_table):
        processed = extractor.process_table(toy_table)
        serialized = serializer.serialize(processed)
        numeric_index = 2
        assert not serialized.has_feature[numeric_index]
        row = serialized.feature_token_ids[numeric_index]
        assert row[0] == serializer.vocab.cls_id
        assert (row[1:] == serializer.vocab.pad_id).all()

    def test_feature_attention_matches_content(self, serializer, processed_tables):
        serialized = serializer.serialize(processed_tables[0])
        pad_id = serializer.vocab.pad_id
        attended_pads = (serialized.feature_token_ids == pad_id) & serialized.feature_attention_mask
        assert not attended_pads.any()
