"""Tests of the shared bounded LRU cache, including its thread-safety.

The serving layer calls ``get``/``put`` from whatever threads hit
``annotate``; the counters feed telemetry dashboards, so lost increments are
user-visible bugs, not cosmetics.
"""

from __future__ import annotations

import threading

from repro.core.cache import LRUCache


class TestBasics:
    def test_get_put_and_counters(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_eviction_order_is_lru(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.cache_info().evictions == 1

    def test_zero_maxsize_disables(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert len(cache) == 0 and cache.get("a") is None

    def test_reset_counters_keeps_entries(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.reset_counters()
        info = cache.cache_info()
        assert (info.hits, info.misses, info.evictions) == (0, 0, 0)
        assert cache.get("a") == 1  # entry survived the counter reset


class TestThreadSafety:
    def test_counters_lose_no_increments_under_contention(self):
        # Regression test: unlocked `self.hits += 1` drops increments under
        # threads.  Every get() is exactly one hit or one miss, so after N
        # operations the two counters must sum to N — any lost update shows.
        cache: LRUCache[int, int] = LRUCache(maxsize=64)
        n_threads, ops = 8, 2000
        barrier = threading.Barrier(n_threads)

        def worker(seed: int) -> None:
            barrier.wait()
            for i in range(ops):
                key = (seed * 31 + i) % 128  # half the keys overflow maxsize
                value = cache.get(key)
                if value is None:
                    cache.put(key, key)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = cache.cache_info()
        assert info.hits + info.misses == n_threads * ops
        assert info.currsize <= 64
        assert len(cache) <= 64

    def test_recency_list_stays_intact_under_contention(self):
        cache: LRUCache[int, int] = LRUCache(maxsize=8)
        stop = threading.Event()
        failures: list[Exception] = []

        def churn(offset: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    cache.put((offset + i) % 32, i)
                    cache.get((offset + i + 1) % 32)
                    i += 1
            except Exception as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [threading.Thread(target=churn, args=(t * 7,)) for t in range(6)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            assert len(cache) <= 8
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures

    def test_len_and_contains_hold_the_lock(self):
        # Regression test (REP101): `len(cache)` and `key in cache` used to
        # probe the OrderedDict without the lock, racing put()'s relink and
        # eviction loop.  Pin the fix by swapping in a recording lock and
        # asserting both probes acquire it.
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        cache.put("a", 1)

        class RecordingLock:
            def __init__(self, inner: threading.Lock):
                self.inner = inner
                self.acquisitions = 0

            def __enter__(self):
                self.acquisitions += 1
                return self.inner.__enter__()

            def __exit__(self, *exc_info):
                return self.inner.__exit__(*exc_info)

        recorder = RecordingLock(cache._lock)
        cache._lock = recorder  # type: ignore[assignment]
        assert len(cache) == 1
        assert recorder.acquisitions == 1
        assert "a" in cache and "b" not in cache
        assert recorder.acquisitions == 3
