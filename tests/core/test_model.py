"""Tests of the KGLink model heads and composition function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import KGLinkModel
from repro.nn.tensor import Tensor
from repro.plm.config import PLMConfig
from repro.plm.model import MiniBERT


@pytest.fixture(scope="module")
def encoder():
    model = MiniBERT(PLMConfig(vocab_size=80, hidden_size=32, num_layers=1, num_heads=2,
                               intermediate_size=48, max_position_embeddings=64, seed=4))
    model.eval()
    return model


@pytest.fixture(scope="module")
def model(encoder):
    kglink = KGLinkModel(encoder, num_labels=7, use_feature_vector=True, seed=4)
    kglink.eval()
    return kglink


class TestConstruction:
    def test_rejects_non_positive_labels(self, encoder):
        with pytest.raises(ValueError):
            KGLinkModel(encoder, num_labels=0)

    def test_encoder_parameters_included(self, model, encoder):
        assert model.num_parameters() > encoder.num_parameters()


class TestForwardPieces:
    def test_encode_shape(self, model, rng):
        hidden = model.encode(rng.integers(0, 80, size=(2, 10)), np.ones((2, 10), dtype=bool))
        assert hidden.shape == (2, 10, 32)

    def test_gather_positions(self, model, rng):
        hidden = model.encode(rng.integers(0, 80, size=(2, 10)), np.ones((2, 10), dtype=bool))
        gathered = model.gather_positions(hidden, np.array([0, 0, 1]), np.array([0, 3, 5]))
        assert gathered.shape == (3, 32)
        np.testing.assert_allclose(gathered.data[0], hidden.data[0, 0])
        np.testing.assert_allclose(gathered.data[2], hidden.data[1, 5])

    def test_feature_vectors_shape(self, model, rng):
        ids = rng.integers(0, 80, size=(5, 12))
        vectors = model.feature_vectors(ids, np.ones((5, 12), dtype=bool))
        assert vectors.shape == (5, 32)

    def test_compose_with_features_changes_output(self, model, rng):
        cls_vectors = Tensor(rng.normal(size=(4, 32)))
        feature_vectors = Tensor(rng.normal(size=(4, 32)))
        combined = model.compose(cls_vectors, feature_vectors)
        assert combined.shape == (4, 32)
        assert not np.allclose(combined.data, cls_vectors.data)

    def test_compose_identity_without_features(self, encoder, rng):
        plain = KGLinkModel(encoder, num_labels=3, use_feature_vector=False)
        cls_vectors = Tensor(rng.normal(size=(2, 32)))
        combined = plain.compose(cls_vectors, Tensor(rng.normal(size=(2, 32))))
        np.testing.assert_allclose(combined.data, cls_vectors.data)

    def test_compose_handles_none_features(self, model, rng):
        cls_vectors = Tensor(rng.normal(size=(2, 32)))
        np.testing.assert_allclose(model.compose(cls_vectors, None).data, cls_vectors.data)

    def test_classification_logits_shape(self, model, rng):
        logits = model.classification_logits(Tensor(rng.normal(size=(6, 32))))
        assert logits.shape == (6, 7)

    def test_vocabulary_logits_shape(self, model, rng):
        logits = model.vocabulary_logits(Tensor(rng.normal(size=(3, 32))))
        assert logits.shape == (3, 80)


class TestPrediction:
    def test_predict_labels_argmax(self, model):
        logits = Tensor(np.array([[0.1, 5.0, 0.0, 0, 0, 0, 0], [3.0, 0, 0, 0, 0, 0, 0]]))
        np.testing.assert_array_equal(model.predict_labels(logits), [1, 0])

    def test_predict_probabilities_sum_to_one(self, model, rng):
        probabilities = model.predict_probabilities(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(probabilities.sum(axis=-1), np.ones(4), atol=1e-6)
