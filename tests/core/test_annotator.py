"""Tests of the end-to-end KGLink annotator (the public API)."""

from __future__ import annotations

import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.data.corpus import TableCorpus


TINY_CONFIG = dict(
    epochs=2, batch_size=4, learning_rate=1e-3, pretrain_steps=4,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    top_k_rows=6, max_tokens_per_column=14, vocab_size=1200,
    max_position_embeddings=160, max_feature_tokens=10,
)


@pytest.fixture(scope="module")
def tiny_splits(semtab_splits):
    """Down-sized splits so the annotator tests stay fast."""
    train = TableCorpus("train", semtab_splits.train.tables[:14],
                        semtab_splits.train.label_vocabulary)
    valid = TableCorpus("valid", semtab_splits.validation.tables[:3],
                        semtab_splits.train.label_vocabulary)
    test = TableCorpus("test", semtab_splits.test.tables[:6],
                       semtab_splits.train.label_vocabulary)
    return train, valid, test


@pytest.fixture(scope="module")
def fitted_annotator(graph, linker, tiny_splits):
    train, valid, _ = tiny_splits
    annotator = KGLinkAnnotator(graph, KGLinkConfig(**TINY_CONFIG), linker=linker)
    annotator.fit(train, valid if len(valid.tables) else None)
    return annotator


class TestKGLinkConfig:
    def test_part1_config_propagates_switches(self):
        config = KGLinkConfig(use_candidate_types=False, top_k_rows=7)
        part1 = config.part1_config()
        assert part1.top_k_rows == 7
        assert part1.use_candidate_types is False

    def test_plm_config_vocab_override(self):
        config = KGLinkConfig(vocab_size=500)
        assert config.plm_config().vocab_size == 500
        assert config.plm_config(vocab_size=77).vocab_size == 77

    def test_deberta_switch(self):
        assert KGLinkConfig(use_deberta=True).plm_config().relative_attention is True

    def test_training_config_propagates_mask_switch(self):
        assert KGLinkConfig(use_mask_task=False).training_config().use_mask_task is False

    def test_without_kg_disables_both_channels(self):
        config = KGLinkConfig().without_kg()
        assert config.use_candidate_types is False
        assert config.use_feature_vector is False

    def test_serializer_config_budgets(self):
        config = KGLinkConfig(max_tokens_per_column=20, max_columns=5)
        serializer = config.serializer_config()
        assert serializer.max_tokens_per_column == 20
        assert serializer.max_columns == 5


class TestFitAndPredict:
    def test_requires_fit_before_prediction(self, graph, linker, toy_table):
        annotator = KGLinkAnnotator(graph, KGLinkConfig(**TINY_CONFIG), linker=linker)
        with pytest.raises(RuntimeError):
            annotator.annotate(toy_table)

    def test_fit_returns_history(self, fitted_annotator):
        history = fitted_annotator.history
        assert history is not None
        assert history.epochs_completed >= 1
        assert fitted_annotator.fit_seconds > 0
        assert fitted_annotator.part1_seconds > 0

    def test_annotate_single_table(self, fitted_annotator, tiny_splits):
        _, _, test = tiny_splits
        table = test.tables[0]
        predictions = fitted_annotator.annotate(table)
        assert len(predictions) == min(table.n_columns, fitted_annotator.config.max_columns)
        assert all(label in fitted_annotator.label_vocabulary for label in predictions)

    def test_predict_corpus_alignment(self, fitted_annotator, tiny_splits):
        _, _, test = tiny_splits
        y_true, y_pred = fitted_annotator.predict_corpus(test)
        assert len(y_true) == len(y_pred)
        assert len(y_true) > 0

    def test_evaluate_returns_result(self, fitted_annotator, tiny_splits):
        _, _, test = tiny_splits
        result = fitted_annotator.evaluate(test)
        assert 0.0 <= result.accuracy <= 100.0
        assert fitted_annotator.inference_seconds > 0

    def test_link_statistics_shape(self, fitted_annotator, tiny_splits):
        _, _, test = tiny_splits
        stats = fitted_annotator.link_statistics(test)
        assert stats["total_columns"] == sum(t.n_columns for t in test.tables)

    def test_processed_tables_cached(self, fitted_annotator, tiny_splits):
        _, _, test = tiny_splits
        fitted_annotator.predict_corpus(test)
        cached_before = len(fitted_annotator._processed_cache)
        fitted_annotator.predict_corpus(test)
        assert len(fitted_annotator._processed_cache) == cached_before


class TestAblationConfigurations:
    @pytest.mark.parametrize("overrides", [
        {"use_mask_task": False},
        {"use_candidate_types": False, "use_feature_vector": False},
        {"use_feature_vector": False},
    ])
    def test_ablation_variants_fit_and_predict(self, graph, linker, tiny_splits, overrides):
        train, _, test = tiny_splits
        config = KGLinkConfig(**{**TINY_CONFIG, **overrides, "epochs": 1})
        annotator = KGLinkAnnotator(graph, config, linker=linker)
        annotator.fit(train)
        result = annotator.evaluate(test)
        assert 0.0 <= result.accuracy <= 100.0

    def test_deberta_variant_fits(self, graph, linker, tiny_splits):
        train, _, test = tiny_splits
        config = KGLinkConfig(**{**TINY_CONFIG, "use_deberta": True, "epochs": 1})
        annotator = KGLinkAnnotator(graph, config, linker=linker)
        annotator.fit(train)
        assert 0.0 <= annotator.evaluate(test).accuracy <= 100.0

    def test_original_row_filter_variant_fits(self, graph, linker, tiny_splits):
        train, _, test = tiny_splits
        config = KGLinkConfig(**{**TINY_CONFIG, "row_filter": "original", "epochs": 1})
        annotator = KGLinkAnnotator(graph, config, linker=linker)
        annotator.fit(train)
        assert 0.0 <= annotator.evaluate(test).accuracy <= 100.0
