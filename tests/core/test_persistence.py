"""Tests of saving and loading fitted KGLink annotators."""

from __future__ import annotations

import pytest

from repro.core.annotator import KGLinkAnnotator, KGLinkConfig
from repro.core.persistence import load_annotator, save_annotator
from repro.data.corpus import TableCorpus

# These tests exercise the deprecated shims on purpose.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


TINY_CONFIG = KGLinkConfig(
    epochs=1, batch_size=4, learning_rate=1e-3, pretrain_steps=2,
    hidden_size=32, num_layers=1, num_heads=2, intermediate_size=48,
    top_k_rows=5, max_tokens_per_column=12, vocab_size=900,
    max_position_embeddings=140, max_feature_tokens=8,
)


@pytest.fixture(scope="module")
def fitted(graph, linker, semtab_splits):
    train = TableCorpus("train", semtab_splits.train.tables[:10],
                        semtab_splits.train.label_vocabulary)
    annotator = KGLinkAnnotator(graph, TINY_CONFIG, linker=linker)
    annotator.fit(train)
    return annotator


class TestSaveAnnotator:
    def test_unfitted_annotator_rejected(self, graph, tmp_path):
        annotator = KGLinkAnnotator(graph, TINY_CONFIG)
        with pytest.raises(RuntimeError):
            save_annotator(annotator, tmp_path / "model")

    def test_save_writes_manifest_and_weights(self, fitted, tmp_path):
        directory = save_annotator(fitted, tmp_path / "model")
        assert (directory / "manifest.json").exists()
        assert (directory / "model.npz").exists()


class TestLoadAnnotator:
    def test_roundtrip_predictions_identical(self, fitted, graph, linker, semtab_splits,
                                             tmp_path):
        directory = save_annotator(fitted, tmp_path / "model")
        restored = load_annotator(directory, graph, linker=linker)
        test = TableCorpus("test", semtab_splits.test.tables[:4],
                           semtab_splits.train.label_vocabulary)
        _, original_predictions = fitted.predict_corpus(test)
        _, restored_predictions = restored.predict_corpus(test)
        assert original_predictions == restored_predictions

    def test_roundtrip_preserves_config_and_vocabulary(self, fitted, graph, tmp_path):
        directory = save_annotator(fitted, tmp_path / "model")
        restored = load_annotator(directory, graph)
        assert restored.config == fitted.config
        assert restored.label_vocabulary == fitted.label_vocabulary
        assert restored.tokenizer.vocab_size == fitted.tokenizer.vocab_size

    def test_unsupported_format_rejected(self, fitted, graph, tmp_path):
        directory = save_annotator(fitted, tmp_path / "model")
        manifest = directory / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"format_version": 3',
                                                         '"format_version": 99'))
        with pytest.raises(ValueError):
            load_annotator(directory, graph)
