"""Tests of Part 1: knowledge-graph candidate-type extraction."""

from __future__ import annotations

import pytest

from repro.core.pipeline import KGCandidateExtractor, Part1Config
from repro.data.table import Column, Table
from repro.kg.graph import Predicates
from repro.text.ner import EntitySchema


@pytest.fixture(scope="module")
def extractor(graph, linker):
    return KGCandidateExtractor(graph, Part1Config(top_k_rows=5), linker=linker)


@pytest.fixture(scope="module")
def athlete_table(world):
    """A table of real KG athletes with their teams (strong linkage)."""
    graph = world.graph
    athletes = []
    for type_label in ("Cricketer", "Basketball player", "Footballer"):
        athletes.extend(world.instances(type_label))
    athletes = athletes[:8]
    names, teams = [], []
    for entity_id in athletes:
        names.append(graph.entity(entity_id).label)
        team = next(
            (t.object for t in graph.outgoing(entity_id) if t.predicate == Predicates.MEMBER_OF),
            None,
        )
        teams.append(graph.entity(team).label if team else "")
    return Table(
        table_id="athletes",
        columns=[
            Column(name="player", cells=names, label="Athlete"),
            Column(name="team", cells=teams, label="Sports team"),
        ],
    )


class TestPart1Config:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            Part1Config(top_k_rows=0)

    def test_rejects_unknown_row_filter(self):
        with pytest.raises(ValueError):
            Part1Config(row_filter="random")

    def test_rejects_negative_candidate_types(self):
        with pytest.raises(ValueError):
            Part1Config(max_candidate_types=-1)


class TestLinking:
    def test_link_table_shape(self, extractor, toy_table):
        linked = extractor.link_table(toy_table)
        assert len(linked) == toy_table.n_rows
        assert len(linked[0]) == toy_table.n_columns

    def test_numeric_cells_have_no_links(self, extractor, toy_table):
        linked = extractor.link_table(toy_table)
        numeric_column = 2
        assert all(not linked[row][numeric_column].has_links for row in range(toy_table.n_rows))

    def test_date_cells_have_no_links(self, extractor, toy_table):
        linked = extractor.link_table(toy_table)
        assert all(not linked[row][1].has_links for row in range(toy_table.n_rows))

    def test_schema_recorded(self, extractor, toy_table):
        linked = extractor.link_table(toy_table)
        assert linked[0][2].schema == EntitySchema.NUMBER
        assert linked[0][1].schema == EntitySchema.DATE


class TestOverlapFilter:
    def test_candidate_entities_populated(self, extractor, athlete_table):
        linked = extractor.link_table(athlete_table)
        extractor.apply_overlap_filter(linked)
        linked_cells = [cell for row in linked for cell in row if cell.has_links]
        assert linked_cells
        assert any(cell.candidate_entities for cell in linked_cells)

    def test_overlapping_entities_have_positive_scores(self, extractor, athlete_table):
        linked = extractor.link_table(athlete_table)
        extractor.apply_overlap_filter(linked)
        positive = [
            score
            for row in linked for cell in row
            for score in cell.candidate_entities.values()
            if score > 0
        ]
        # Players and their teams are connected, so at least some overlap exists.
        assert positive

    def test_linking_score_zero_for_unlinked_cells(self, extractor, toy_table):
        linked = extractor.link_table(toy_table)
        extractor.apply_overlap_filter(linked)
        assert all(linked[row][2].linking_score == 0.0 for row in range(toy_table.n_rows))

    def test_row_scores_sum_of_cells(self, extractor, athlete_table):
        linked = extractor.link_table(athlete_table)
        extractor.apply_overlap_filter(linked)
        scores = extractor.row_linking_scores(linked)
        assert len(scores) == athlete_table.n_rows
        assert all(score >= 0 for score in scores)

    def test_apply_overlap_filter_keeps_raw_entities_as_fallback(self, extractor, world):
        # A single-column table has no other columns to overlap with: every
        # cell keeps its raw entities with zero overlapping score.
        person = world.graph.entity(world.instances("Human")[0]).label
        table = Table("single", [Column(name="n", cells=[person], label="Human")])
        linked = extractor.link_table(table)
        extractor.apply_overlap_filter(linked)
        cell = linked[0][0]
        assert cell.candidate_entities
        assert all(score == 0.0 for score in cell.candidate_entities.values())
        assert cell.linking_score == 0.0


class TestRowSelection:
    def test_linkage_filter_prefers_high_scores(self, extractor, athlete_table):
        table = athlete_table
        scores = [0.0, 5.0, 1.0, 9.0, 2.0, 0.5, 7.0, 3.0][: table.n_rows]
        extractor_small = KGCandidateExtractor(
            extractor.graph, Part1Config(top_k_rows=3), linker=extractor.linker
        )
        kept = extractor_small.select_rows(table, scores)
        assert len(kept) == 3
        assert set(kept) == {1, 3, 6}

    def test_original_filter_keeps_first_rows(self, extractor, athlete_table):
        extractor_orig = KGCandidateExtractor(
            extractor.graph, Part1Config(top_k_rows=3, row_filter="original"),
            linker=extractor.linker,
        )
        kept = extractor_orig.select_rows(athlete_table, [0.0] * athlete_table.n_rows)
        assert kept == [0, 1, 2]

    def test_k_larger_than_table_keeps_all(self, extractor, toy_table):
        kept = extractor.select_rows(toy_table, [1.0, 2.0, 3.0])
        assert len(kept) == toy_table.n_rows


class TestProcessTable:
    def test_processed_structure(self, extractor, athlete_table):
        processed = extractor.process_table(athlete_table)
        assert processed.original is athlete_table
        assert processed.filtered.n_rows <= extractor.config.top_k_rows
        assert len(processed.columns) == athlete_table.n_columns
        assert len(processed.row_scores) == athlete_table.n_rows

    def test_candidate_types_generated_for_linked_columns(self, extractor, athlete_table):
        processed = extractor.process_table(athlete_table)
        player_info = processed.columns[0]
        assert player_info.has_kg_links
        assert player_info.candidate_types, "athlete column should receive candidate types"

    def test_candidate_types_exclude_person_entities(self, extractor, athlete_table, graph):
        processed = extractor.process_table(athlete_table)
        for info in processed.columns:
            for type_label in info.candidate_types:
                for entity in graph.entities_by_label(type_label):
                    assert entity.schema != EntitySchema.PERSON

    def test_numeric_column_gets_summary_not_types(self, extractor, toy_table):
        processed = extractor.process_table(toy_table)
        numeric_info = processed.columns[2]
        assert numeric_info.is_numeric
        assert numeric_info.candidate_types == []
        assert len(numeric_info.numeric_summary) == 3
        # mean, variance, mean (the paper lists mean, variance and average)
        assert numeric_info.numeric_summary[0] == numeric_info.numeric_summary[2]

    def test_feature_sequence_mentions_entity_and_predicates(self, extractor, athlete_table, graph):
        processed = extractor.process_table(athlete_table)
        feature = processed.columns[0].feature_sequence
        assert feature
        assert "," in feature  # label followed by predicate/neighbor pairs

    def test_feature_sequence_empty_for_numeric(self, extractor, toy_table):
        processed = extractor.process_table(toy_table)
        assert processed.columns[2].feature_sequence == ""

    def test_labels_preserved(self, extractor, athlete_table):
        processed = extractor.process_table(athlete_table)
        assert processed.labels() == ["Athlete", "Sports team"]

    def test_candidate_types_disabled_by_config(self, graph, linker, athlete_table):
        extractor = KGCandidateExtractor(
            graph, Part1Config(use_candidate_types=False), linker=linker
        )
        processed = extractor.process_table(athlete_table)
        assert all(not info.candidate_types for info in processed.columns)

    def test_feature_sequence_disabled_by_config(self, graph, linker, athlete_table):
        extractor = KGCandidateExtractor(
            graph, Part1Config(use_feature_sequence=False), linker=linker
        )
        processed = extractor.process_table(athlete_table)
        assert all(not info.feature_sequence for info in processed.columns)

    def test_max_candidate_types_respected(self, graph, linker, athlete_table):
        extractor = KGCandidateExtractor(
            graph, Part1Config(max_candidate_types=1), linker=linker
        )
        processed = extractor.process_table(athlete_table)
        assert all(len(info.candidate_types) <= 1 for info in processed.columns)


class TestLinkStatistics:
    def test_statistics_totals(self, extractor, semtab_corpus):
        processed = extractor.process_corpus(semtab_corpus.tables[:10])
        stats = extractor.link_statistics(processed)
        assert stats["total_columns"] == sum(t.n_columns for t in semtab_corpus.tables[:10])
        assert stats["numeric_columns"] == 0

    def test_viznet_has_numeric_and_uncovered_columns(self, extractor, viznet_corpus):
        processed = extractor.process_corpus(viznet_corpus.tables[:15])
        stats = extractor.link_statistics(processed)
        assert stats["numeric_columns"] > 0
        assert stats["non_numeric_without_candidate_type"] >= stats["non_numeric_without_feature_vector"]
